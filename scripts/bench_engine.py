#!/usr/bin/env python
"""Engine event-loop microbenchmark: legacy vs current hot path.

Measures events/second through ``repro.sim.engine`` on three synthetic
workloads that isolate the event-loop hot path (no DSA model code):

* ``timeout_chain`` — N processes, each yielding M timeouts.  This is
  the dominant pattern in the simulator (every modelled latency is a
  ``yield env.timeout(...)``).
* ``ping_pong``     — two processes signalling each other through
  plain events (succeed → resume chains).
* ``fanout``        — processes waiting on ``all_of`` conditions over
  timeout fan-outs.

"Before" numbers come from a verbatim copy of the pre-optimization
engine (commit 447e725) embedded below as the ``legacy`` classes, so
the comparison runs both implementations on the same interpreter, same
machine, back to back.  "After" numbers run the installed
``repro.sim.engine``.  Results are written as JSON (default
``BENCH_engine.json``)::

    PYTHONPATH=src python scripts/bench_engine.py --out BENCH_engine.json

Methodology: each (engine, workload) pair runs ``--repeats`` times and
the best run wins (minimum wall time — the standard way to strip
scheduler noise from a CPU-bound microbenchmark).  Events/sec counts
calendar entries actually processed.
"""

from __future__ import annotations

import heapq
import sys
from itertools import count

from _bench_common import base_parser, best_of, gate_exit, geomean, write_json
from repro.sim.engine import Environment

# ---------------------------------------------------------------------------
# Legacy engine: verbatim hot path of src/repro/sim/engine.py @ 447e725
# (per-resume lambda allocations, __init__-chain Timeout construction,
# _schedule indirection, step() call per event).  Only the obs-hook
# lookups in Environment.__init__ are dropped — they run once per
# environment, not per event, so they do not affect events/sec.
# ---------------------------------------------------------------------------

URGENT = 0
NORMAL = 1


class LegacySimulationError(RuntimeError):
    pass


class LegacyEvent:
    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False

    def succeed(self, value=None, delay=0.0):
        if self._triggered:
            raise LegacySimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exception, delay=0.0):
        if self._triggered:
            raise LegacySimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def defuse(self):
        self._defused = True


class LegacyTimeout(LegacyEvent):
    __slots__ = ()

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class LegacyCondition(LegacyEvent):
    __slots__ = ("_events", "_need", "_done")

    def __init__(self, env, events, wait_all):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        self._need = len(self._events) if wait_all else min(1, len(self._events))
        if self._need == 0:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:
                self._collect(ev)
            else:
                ev.callbacks.append(self._collect)

    def _collect(self, ev):
        if self._triggered:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._done += 1
        if self._done >= self._need:
            self.succeed({e: e._value for e in self._events if e._processed and e._ok})


class LegacyProcess(LegacyEvent):
    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator, name=""):
        super().__init__(env)
        self._generator = generator
        self._target = None
        self.name = name or "process"
        boot = LegacyEvent(env)
        boot.callbacks.append(self._resume)
        boot.succeed()

    def _resume(self, event):
        self._target = None
        if event._ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            event.defuse()
            self._step(lambda: self._generator.throw(event._value))

    def _step(self, advance):
        self.env._active_process = self
        try:
            target = advance()
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None
        if not isinstance(target, LegacyEvent):
            self._step(
                lambda: self._generator.throw(
                    LegacySimulationError(f"process yielded non-event {target!r}")
                )
            )
            return
        if target.callbacks is None:
            self._resume(target)
        else:
            self._target = target
            target.callbacks.append(self._resume)


class LegacyEnvironment:
    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._calendar = []
        self._seq = count()
        self._active_process = None

    @property
    def now(self):
        return self._now

    def event(self):
        return LegacyEvent(self)

    def timeout(self, delay, value=None):
        return LegacyTimeout(self, delay, value)

    def process(self, generator, name=""):
        return LegacyProcess(self, generator, name=name)

    def all_of(self, events):
        return LegacyCondition(self, events, wait_all=True)

    def _schedule(self, event, delay=0.0, priority=NORMAL):
        heapq.heappush(self._calendar, (self._now + delay, priority, next(self._seq), event))

    def step(self):
        if not self._calendar:
            raise LegacySimulationError("empty calendar")
        when, _prio, _seq, event = heapq.heappop(self._calendar)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until=None):
        while self._calendar:
            self.step()


# ---------------------------------------------------------------------------
# Workloads — written against the tiny common surface both engines share
# (env.timeout / env.event / env.process / env.all_of / env.run).
# ---------------------------------------------------------------------------


def timeout_chain(env, n_procs=50, n_yields=4000):
    """The dominant pattern: every modelled latency is a yield-timeout."""

    def proc(delay):
        for _ in range(n_yields):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(proc(1.0 + i * 0.01))
    env.run()
    return n_procs * (n_yields + 1)  # +1 boot event per process


def ping_pong(env, n_pairs=20, n_rounds=5000):
    """Event succeed → resume chains between process pairs."""

    done = []

    def player(inbox, outbox):
        for _ in range(n_rounds):
            yield inbox[0]
            inbox[0] = env.event()
            outbox[0].succeed()
        done.append(1)

    for _ in range(n_pairs):
        a, b = [env.event()], [env.event()]
        env.process(player(a, b))
        env.process(player(b, a))
        a[0].succeed()
    env.run()
    assert len(done) == 2 * n_pairs
    return n_pairs * 2 * (n_rounds + 1)


def fanout(env, n_procs=40, n_rounds=400, width=8):
    """all_of conditions over timeout fan-outs."""

    def proc():
        for r in range(n_rounds):
            yield env.all_of([env.timeout(float(w % 3) + 1.0) for w in range(width)])

    for _ in range(n_procs):
        env.process(proc())
    env.run()
    return n_procs * n_rounds * (width + 1)


def high_pending(env, n_timers=1_000_000, qd=16):
    """>=1M concurrent pending timers (paper-scale descriptor counts).

    The full wave schedule (QD-16 completion ties) is armed up front,
    then the calendar drains with a million entries pending.  Reported
    *outside* the geomean gate: at this depth both engines spend their
    time in heapq's C sift code, so the ratio measures allocation
    overhead more than the loop rewrites this bench gates — the
    backend that actually attacks this regime is the timing wheel,
    gated separately in ``scripts/bench_calendar.py``.
    """
    timeout = env.timeout
    when = 0.0
    for wave in range(n_timers // qd):
        when += 1.0 + (wave % 7)
        for _ in range(qd):
            timeout(when)
    env.run()
    return n_timers


WORKLOADS = {
    "timeout_chain": timeout_chain,
    "ping_pong": ping_pong,
    "fanout": fanout,
}

#: Measured and recorded, but kept out of the gated geomean (see the
#: high_pending docstring).  Capped repeats: one run is ~10s of heapq.
EXTRA_WORKLOADS = {
    "high_pending": high_pending,
}


def measure(env_factory, workload, repeats):
    best = best_of(repeats, workload, setup=env_factory)
    return best.rate(), best.value, best.seconds


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_engine.json")
    parser.add_argument("--target", type=float, default=1.3, help="required overall speedup")
    args = parser.parse_args(argv)

    results = {}
    speedups = []
    for name, workload in WORKLOADS.items():
        before_eps, events, before_t = measure(LegacyEnvironment, workload, args.repeats)
        after_eps, _, after_t = measure(Environment, workload, args.repeats)
        speedup = after_eps / before_eps
        speedups.append(speedup)
        results[name] = {
            "events": events,
            "before_events_per_sec": round(before_eps),
            "after_events_per_sec": round(after_eps),
            "before_best_s": round(before_t, 4),
            "after_best_s": round(after_t, 4),
            "speedup": round(speedup, 3),
        }
        print(
            f"{name:14s}  before {before_eps/1e6:6.2f} M ev/s   "
            f"after {after_eps/1e6:6.2f} M ev/s   x{speedup:.2f}"
        )

    for name, workload in EXTRA_WORKLOADS.items():
        repeats = min(args.repeats, 3)
        before_eps, events, before_t = measure(LegacyEnvironment, workload, repeats)
        after_eps, _, after_t = measure(Environment, workload, repeats)
        speedup = after_eps / before_eps
        results[name] = {
            "events": events,
            "before_events_per_sec": round(before_eps),
            "after_events_per_sec": round(after_eps),
            "before_best_s": round(before_t, 4),
            "after_best_s": round(after_t, 4),
            "speedup": round(speedup, 3),
            "in_geomean": False,
        }
        print(
            f"{name:14s}  before {before_eps/1e6:6.2f} M ev/s   "
            f"after {after_eps/1e6:6.2f} M ev/s   x{speedup:.2f}  (ungated)"
        )

    overall = geomean(speedups)
    write_json(
        args.out,
        {
            "benchmark": "repro.sim.engine event loop",
            "repeats": args.repeats,
            "workloads": results,
            "overall_speedup_geomean": round(overall, 3),
            "target": args.target,
            "pass": overall >= args.target,
        },
    )
    print(f"overall geomean x{overall:.2f} (target x{args.target}) -> {args.out}")
    return gate_exit(overall >= args.target, args.require)


if __name__ == "__main__":
    sys.exit(main())
