#!/usr/bin/env python
"""Fair-share link microbenchmark: legacy O(n) link vs virtual-time link.

Measures transfer throughput through ``repro.mem.link.FairShareLink``
on three workloads that isolate the flow-churn hot path every
bandwidth-bound experiment funnels through (Fig 2 sweeps, Fig 6 memory
configs, Fig 10 multi-device, the QD32 Table 1 rows):

* ``high_qd32`` / ``high_qd64`` — one link at queue depth 32/64: each
  completion immediately submits the next transfer, so every event is a
  join + a leave on a crowded link.  This is where the legacy
  implementation paid O(n) rate recomputation per change and left a
  stale version-checked timer behind per reschedule (O(n^2) churn per
  drain).
* ``weighted_qos``    — three §3.4 traffic classes (weights 1:2:4)
  contending on one link.
* ``multi_link``      — a DRAM read + DRAM write + UPI + CXL link mix
  where each logical copy holds flows on two links at once (the
  ``MemorySystem._flow`` composition).

"Before" numbers come from a verbatim copy of the pre-virtual-time link
(commit 9bbaa3c) embedded below as ``LegacyFairShareLink``, run on the
*same* engine — so the comparison isolates the link algorithm, same
interpreter, same machine, back to back.  Both implementations produce
identical completion times on these workloads (the randomized
differential test in ``tests/mem/test_link.py`` pins this), so equal
logical work is compared.  Results are written as JSON (default
``BENCH_link.json``)::

    PYTHONPATH=src python scripts/bench_link.py --out BENCH_link.json

Methodology: each (impl, workload) pair runs ``--repeats`` times and
the best run wins (minimum wall time).  The speedup metric is
transfers/second — completed logical transfers over wall time — and the
JSON also records raw calendar entries scheduled (``events_scheduled``)
so the stale-timer reduction is visible, plus the new implementation's
``cancelled``/``stale_swept`` counters.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from _bench_common import base_parser, best_of, gate_exit, geomean, write_json
from repro.mem.link import FairShareLink
from repro.sim.engine import Environment, Event

# ---------------------------------------------------------------------------
# Legacy link: verbatim src/repro/mem/link.py @ 9bbaa3c (pre virtual-time).
# O(n) _advance + _rates per join/leave, version-checked wake timers that
# are never cancelled.  bytes_completed counted at submit (the bug fixed
# in this PR) does not affect timing.
# ---------------------------------------------------------------------------

_EPSILON = 1e-6


class _LegacyFlow:
    __slots__ = ("remaining", "event", "weight")

    def __init__(self, nbytes: float, event: Event, weight: float = 1.0):
        self.remaining = float(nbytes)
        self.event = event
        self.weight = weight


class LegacyFairShareLink:
    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        name: str = "",
        per_flow_cap: Optional[float] = None,
    ):
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        self.per_flow_cap = per_flow_cap
        self._flows: List[_LegacyFlow] = []
        self._last_update = env.now
        self._timer_version = 0
        self.bytes_completed = 0.0

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        event = Event(self.env)
        if nbytes == 0:
            event.succeed()
            return event
        self._advance()
        self._flows.append(_LegacyFlow(nbytes, event, weight=weight))
        self.bytes_completed += nbytes
        self._reschedule()
        return event

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        for flow, rate in self._rates():
            flow.remaining -= rate * elapsed

    def _rates(self):
        total_weight = sum(flow.weight for flow in self._flows)
        pairs = []
        for flow in self._flows:
            rate = self.bandwidth * flow.weight / total_weight
            if self.per_flow_cap is not None:
                rate = min(rate, self.per_flow_cap)
            pairs.append((flow, rate))
        return pairs

    def _reschedule(self) -> None:
        still_active: List[_LegacyFlow] = []
        for flow in self._flows:
            if flow.remaining <= _EPSILON:
                flow.event.succeed()
            else:
                still_active.append(flow)
        self._flows = still_active
        self._timer_version += 1
        if not self._flows:
            return
        version = self._timer_version
        next_done = min(flow.remaining / rate for flow, rate in self._rates())

        def _wake(_event: Event) -> None:
            if version == self._timer_version:
                self._advance()
                self._reschedule()

        timer = self.env.timeout(next_done)
        timer.callbacks.append(_wake)


# ---------------------------------------------------------------------------
# Workloads — written against the surface both links share
# (link.transfer(nbytes, weight=...)).
# ---------------------------------------------------------------------------


def _sizes(n: int, base: float = 256.0, spread: int = 4093) -> List[float]:
    """Deterministic pseudo-random transfer sizes (no RNG dependency)."""
    return [base + float((i * 7919) % spread) for i in range(n)]


def high_qd(env, link_cls, qd=32, total=6400):
    """Queue-depth-QD closed loop on one link: the churn hot path."""
    link = link_cls(env, bandwidth=64.0)
    sizes = _sizes(total)
    done = [0]

    def submitter(worker: int):
        for i in range(worker, total, qd):
            yield link.transfer(sizes[i])
            done[0] += 1

    for worker in range(qd):
        env.process(submitter(worker))
    env.run()
    assert done[0] == total
    return total


def high_qd32(env, link_cls):
    return high_qd(env, link_cls, qd=32)


def high_qd64(env, link_cls):
    return high_qd(env, link_cls, qd=64)


def weighted_qos(env, link_cls, qd=48, total=4800):
    """Three traffic classes (weights 1:2:4) on one contended link."""
    link = link_cls(env, bandwidth=96.0)
    sizes = _sizes(total, base=512.0)
    done = [0]

    def submitter(worker: int, weight: float):
        for i in range(worker, total, qd):
            yield link.transfer(sizes[i], weight=weight)
            done[0] += 1

    for worker in range(qd):
        env.process(submitter(worker, (1.0, 2.0, 4.0)[worker % 3]))
    env.run()
    assert done[0] == total
    return total


def multi_link(env, link_cls, workers=32, total=4800):
    """DRAM+UPI+CXL composition: each copy holds flows on two links."""
    dram_rd = link_cls(env, bandwidth=100.0, per_flow_cap=30.0)
    dram_wr = link_cls(env, bandwidth=45.0, per_flow_cap=30.0)
    upi = link_cls(env, bandwidth=60.0)
    cxl = link_cls(env, bandwidth=35.0)
    routes = [(dram_rd, dram_wr), (dram_rd, upi), (upi, dram_wr), (dram_rd, cxl)]
    sizes = _sizes(total, base=384.0)
    done = [0]

    def submitter(worker: int):
        for i in range(worker, total, workers):
            first, second = routes[i % len(routes)]
            yield env.all_of([first.transfer(sizes[i]), second.transfer(sizes[i])])
            done[0] += 1

    for worker in range(workers):
        env.process(submitter(worker))
    env.run()
    assert done[0] == total
    return total


WORKLOADS = {
    "high_qd32": high_qd32,
    "high_qd64": high_qd64,
    "weighted_qos": weighted_qos,
    "multi_link": multi_link,
}


def measure(link_cls, workload, repeats):
    best = best_of(repeats, lambda env: workload(env, link_cls), setup=Environment)
    env = best.context  # stats harvested from the exact run reported
    return (
        best.rate(),
        best.value,
        best.seconds,
        env._seq,  # calendar entries scheduled (incl. stale timers)
        env.cancelled_events,
        env.stale_timers,
    )


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_link.json")
    parser.add_argument(
        "--target",
        type=float,
        default=2.0,
        help="soft speedup target recorded in the JSON 'pass' field",
    )
    parser.add_argument(
        "--min",
        dest="min_gate",
        type=float,
        default=1.0,
        help="hard regression gate checked by --require",
    )
    args = parser.parse_args(argv)

    results = {}
    speedups = []
    for name, workload in WORKLOADS.items():
        before_tps, transfers, before_t, before_ev, _, _ = measure(
            LegacyFairShareLink, workload, args.repeats
        )
        after_tps, _, after_t, after_ev, cancelled, stale = measure(
            FairShareLink, workload, args.repeats
        )
        speedup = after_tps / before_tps
        speedups.append(speedup)
        results[name] = {
            "transfers": transfers,
            "before_transfers_per_sec": round(before_tps),
            "after_transfers_per_sec": round(after_tps),
            "before_best_s": round(before_t, 4),
            "after_best_s": round(after_t, 4),
            "before_events_scheduled": before_ev,
            "after_events_scheduled": after_ev,
            "after_cancelled_events": cancelled,
            "after_stale_swept": stale,
            "speedup": round(speedup, 3),
        }
        print(
            f"{name:13s}  before {before_tps/1e3:7.1f} k xfer/s ({before_ev} ev)   "
            f"after {after_tps/1e3:7.1f} k xfer/s ({after_ev} ev)   x{speedup:.2f}"
        )

    overall = geomean(speedups)
    write_json(
        args.out,
        {
            "benchmark": "repro.mem.link FairShareLink (virtual time vs legacy)",
            "repeats": args.repeats,
            "workloads": results,
            "overall_speedup_geomean": round(overall, 3),
            "target": args.target,
            "pass": overall >= args.target,
            "min_gate": args.min_gate,
        },
    )
    print(
        f"overall geomean x{overall:.2f} (soft target x{args.target}, "
        f"gate x{args.min_gate}) -> {args.out}"
    )
    return gate_exit(overall >= args.min_gate, args.require)


if __name__ == "__main__":
    sys.exit(main())
