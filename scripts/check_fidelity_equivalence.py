#!/usr/bin/env python
"""Anchor differential suite: ``--fidelity auto`` vs the default DES.

Runs every registered experiment twice under the same installed seed —
once at the default ``des`` tier (no fidelity policy, the byte-exact
reference) and once under ``--fidelity auto`` (the batched fast path
from ``repro.sim.fidelity``) — and checks that the fast path is
observationally equivalent:

* **anchors** — same checks, same verdicts.  Every paper anchor that
  holds at ``des`` must hold at ``auto`` (and vice versa: the fast
  path must not accidentally "fix" a missed anchor — that would mean
  it changed the physics, not just the execution strategy).
* **series** — same figure lines, same sweep points, every y value
  within ``DECLARED_TOLERANCE`` relative error (plus a small absolute
  slack for values near zero).

Engagement is reported per experiment from the ``fidelity.*`` counters
(regions batched, descriptors synthesized vs simulated, fallbacks), so
a silently-never-engaging fast path is visible rather than trivially
"equivalent".  Exit status is non-zero on any mismatch::

    PYTHONPATH=src python scripts/check_fidelity_equivalence.py           # full suite
    PYTHONPATH=src python scripts/check_fidelity_equivalence.py --quick   # CI-sized
    PYTHONPATH=src python scripts/check_fidelity_equivalence.py fig2 fig11

The full suite covers all EXPERIMENTS.md anchors; ``--quick`` runs the
same experiments at quick sweep resolution (quick runs are
transient-dominated, so expect engagement mostly from sync and
software-baseline sweep points).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiments, run_experiment
from repro.obs import MetricsRegistry, install_metrics, uninstall_metrics
from repro.sim.fidelity import DECLARED_TOLERANCE, fidelity
from repro.sim.rng import DEFAULT_SEED, install_seed, uninstall_seed

#: Absolute slack added to the relative-tolerance comparison so series
#: whose true value is ~0 (e.g. a ratio that rounds to 0.0) do not
#: demand impossible relative precision.
ABS_SLACK = 1e-9

FIDELITY_COUNTERS = (
    "fidelity.regions_batched",
    "fidelity.descriptors_batched",
    "fidelity.descriptors_des",
    "fidelity.fallbacks",
)


def _run(exp_id: str, quick: bool, mode: str) -> Tuple[ExperimentResult, Dict[str, float]]:
    """One experiment run under a fresh seed + metrics registry."""
    registry = MetricsRegistry()
    install_seed(DEFAULT_SEED)
    install_metrics(registry)
    try:
        if mode == "des":
            result = run_experiment(exp_id, quick=quick)
        else:
            with fidelity(mode):
                result = run_experiment(exp_id, quick=quick)
    finally:
        uninstall_metrics()
        uninstall_seed()
    counters = {name: registry.counter(name).value for name in FIDELITY_COUNTERS}
    return result, counters


def _close(a: float, b: float, tolerance: float) -> bool:
    return abs(a - b) <= tolerance * max(abs(a), abs(b)) + ABS_SLACK


def compare(
    des: ExperimentResult, auto: ExperimentResult, tolerance: float
) -> List[str]:
    """Human-readable mismatch list (empty == equivalent)."""
    problems: List[str] = []

    des_anchors = {a.name: a for a in des.anchors}
    auto_anchors = {a.name: a for a in auto.anchors}
    if sorted(des_anchors) != sorted(auto_anchors):
        problems.append(
            f"anchor sets differ: des={sorted(des_anchors)} auto={sorted(auto_anchors)}"
        )
    for name in sorted(set(des_anchors) & set(auto_anchors)):
        if des_anchors[name].holds != auto_anchors[name].holds:
            problems.append(
                f"anchor {name!r}: des holds={des_anchors[name].holds} "
                f"(measured {des_anchors[name].measured}) but auto "
                f"holds={auto_anchors[name].holds} "
                f"(measured {auto_anchors[name].measured})"
            )

    if sorted(des.series) != sorted(auto.series):
        problems.append(
            f"series sets differ: des={sorted(des.series)} auto={sorted(auto.series)}"
        )
    for label in sorted(set(des.series) & set(auto.series)):
        ds, au = des.series[label], auto.series[label]
        if ds.xs != au.xs:
            problems.append(f"series {label!r}: x grids differ")
            continue
        for (x, dy), (_x, ay) in zip(ds.points, au.points):
            if not _close(dy, ay, tolerance):
                problems.append(
                    f"series {label!r} @ x={x:g}: des={dy!r} auto={ay!r} "
                    f"(rel err {abs(dy - ay) / max(abs(dy), abs(ay), ABS_SLACK):.4f} "
                    f"> {tolerance})"
                )
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to check (default: the full registry)",
    )
    parser.add_argument("--quick", action="store_true", help="quick sweep resolution")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DECLARED_TOLERANCE,
        help="relative tolerance for series y values",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=10,
        help="mismatch lines printed per experiment",
    )
    args = parser.parse_args(argv)

    exp_ids = args.experiments or all_experiments()
    failed: List[str] = []
    total_anchors = 0
    for exp_id in exp_ids:
        start = time.perf_counter()
        des, _des_counters = _run(exp_id, args.quick, "des")
        auto, counters = _run(exp_id, args.quick, "auto")
        elapsed = time.perf_counter() - start
        problems = compare(des, auto, args.tolerance)
        total_anchors += len(des.anchors)
        engagement = (
            f"regions={counters['fidelity.regions_batched']:.0f} "
            f"batched={counters['fidelity.descriptors_batched']:.0f} "
            f"des={counters['fidelity.descriptors_des']:.0f} "
            f"fallbacks={counters['fidelity.fallbacks']:.0f}"
        )
        verdict = "PASS" if not problems else "FAIL"
        print(
            f"[{verdict}] {exp_id:10s} anchors={len(des.anchors):2d} "
            f"series={len(des.series):3d} {engagement}  ({elapsed:.1f}s)"
        )
        if problems:
            failed.append(exp_id)
            for line in problems[: args.max_failures]:
                print(f"         {line}")
            if len(problems) > args.max_failures:
                print(f"         ... and {len(problems) - args.max_failures} more")

    print(
        f"\n{len(exp_ids) - len(failed)}/{len(exp_ids)} experiments equivalent, "
        f"{total_anchors} anchors checked at tolerance {args.tolerance}"
    )
    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
