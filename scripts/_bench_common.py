"""Shared A/B harness for the ``scripts/bench_*.py`` family.

Every microbenchmark here follows the same recipe: run each
(implementation, workload) pair ``--repeats`` times with the best run
winning (minimum wall time — the standard way to strip scheduler noise
from a CPU-bound measurement), reduce per-workload speedups with a
geometric mean, write a JSON payload next to the repo root, and exit
non-zero under ``--require`` when a hard gate fails.  This module holds
those pieces once; each script keeps only its workloads and its own
flag semantics (soft targets vs hard gates differ by bench).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional


@dataclass
class BestRun:
    """Outcome of a best-of-N timing loop."""

    seconds: float      # wall time of the fastest repeat
    value: Any          # run() return of the fastest repeat
    context: Any        # setup() product of the fastest repeat (or None)

    def rate(self, count: Optional[float] = None) -> float:
        """``count`` (default: the run's value) per second of best wall."""
        count = self.value if count is None else count
        return count / self.seconds


def best_of(
    repeats: int,
    run: Callable[[Any], Any],
    setup: Optional[Callable[[], Any]] = None,
    teardown: Optional[Callable[[Any], None]] = None,
) -> BestRun:
    """Time ``run`` ``repeats`` times; the minimum wall time wins.

    ``setup`` builds per-repeat state outside the timed region (a fresh
    Environment, a tracer); its product is passed to ``run`` and to
    ``teardown`` (always called, timed out of band).  The best repeat's
    value and context are kept so callers can harvest counters from the
    exact run they report.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1: {repeats}")
    best = BestRun(seconds=float("inf"), value=None, context=None)
    for _ in range(repeats):
        context = setup() if setup is not None else None
        start = time.perf_counter()
        value = run(context)
        elapsed = time.perf_counter() - start
        if elapsed < best.seconds:
            best = BestRun(seconds=elapsed, value=value, context=context)
        if teardown is not None:
            teardown(context)
    return best


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive speedups (1.0 for an empty set)."""
    values = list(values)
    if not values:
        return 1.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean needs positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def base_parser(
    description: str, out_default: str, repeats_default: int = 5
) -> argparse.ArgumentParser:
    """Parser with the flags every bench shares (--out/--repeats/--require)."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--out", default=out_default, help="JSON output path")
    parser.add_argument(
        "--repeats",
        type=int,
        default=repeats_default,
        help="runs per measurement (best wins)",
    )
    parser.add_argument(
        "--require",
        action="store_true",
        help="exit non-zero when a hard gate fails",
    )
    return parser


def write_json(path: str, payload: dict) -> None:
    payload = dict(payload, python=sys.version.split()[0])
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def gate_exit(ok: bool, require: bool) -> int:
    """Exit status for ``sys.exit``: failures only bite under --require."""
    return 1 if (require and not ok) else 0
