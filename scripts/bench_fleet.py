#!/usr/bin/env python
"""Fleet scheduling benchmark: scaling, placement, failover gates.

Measures and gates the ``repro.fleet`` subsystem end to end:

* **scaling sweep** — aggregate 64 KB copy throughput over
  ``sockets x devices_per_socket`` topologies (reported, plus a hard
  monotonicity gate: adding devices must never reduce throughput by
  more than 5%).
* **placement** (hard gate) — NUMA-local placement must meet or beat
  topology-blind round robin at 2x2: a local device avoids the UPI
  crossing and the remote-IOMMU translation serialization, so losing
  to round robin means the cost model or the policy is broken.
* **failover no-loss** (hard gate) — disabling ``dsa0`` while its WQ
  holds descriptors must lose nothing: every offered descriptor
  completes on a surviving device or on the software kernels, with at
  least one descriptor actually re-routed (a vacuous pass where the
  disable aborts nothing does not count).

Results are written as JSON (default ``BENCH_fleet.json``)::

    PYTHONPATH=src python scripts/bench_fleet.py --out BENCH_fleet.json --require
"""

from __future__ import annotations

import sys

from _bench_common import base_parser, best_of, gate_exit, write_json
from repro.fleet import FleetConfig, run_fleet

KB = 1024

TOPOLOGIES = [(1, 1), (1, 2), (2, 1), (2, 2), (2, 4)]


def fleet_config(sockets: int, devices: int, placement: str, **overrides) -> FleetConfig:
    base = dict(
        transfer_size=64 * KB,
        queue_depth=4,
        iterations=24,
        workers_per_socket=2,
    )
    base.update(overrides)
    return FleetConfig(
        sockets=sockets,
        devices_per_socket=devices,
        placement=placement,
        **base,
    )


def bench_scaling(repeats: int) -> dict:
    points = []
    for sockets, devices in TOPOLOGIES:
        best = best_of(
            repeats,
            lambda _ctx, s=sockets, d=devices: run_fleet(
                fleet_config(s, d, "numa-local")
            ),
        )
        result = best.value
        points.append(
            {
                "topology": f"{sockets}x{devices}",
                "devices": sockets * devices,
                "throughput_gbps": round(result.throughput, 3),
                "sim_wall_s": round(best.seconds, 4),
            }
        )
    # Monotone within each socket count: more devices may not cost
    # throughput (5% tolerance for queueing noise at small iteration
    # counts).
    monotone = True
    for sockets in (1, 2):
        curve = [p["throughput_gbps"] for p in points if p["topology"].startswith(f"{sockets}x")]
        monotone &= all(b >= 0.95 * a for a, b in zip(curve, curve[1:]))
    return {"points": points, "monotone": monotone}


def bench_placement(repeats: int) -> dict:
    throughputs = {}
    for placement in ("numa-local", "round-robin", "least-loaded"):
        best = best_of(
            repeats,
            lambda _ctx, p=placement: run_fleet(fleet_config(2, 2, p)),
        )
        throughputs[placement] = round(best.value.throughput, 3)
    return {
        "throughput_gbps": throughputs,
        "numa_local_beats_remote": throughputs["numa-local"]
        >= throughputs["round-robin"],
    }


def bench_failover(repeats: int) -> dict:
    best = best_of(
        repeats,
        lambda _ctx: run_fleet(
            fleet_config(
                2,
                2,
                "numa-local",
                queue_depth=8,
                workers_per_socket=3,
                disable_device="dsa0",
                disable_at_ns=500.0,
            )
        ),
    )
    result = best.value
    rerouted_metric = result.metrics.get("fleet.dsa0.failover.rerouted", 0.0)
    return {
        "offered": result.offered,
        "completed": result.completed,
        "rerouted": result.rerouted,
        "to_software": result.to_software,
        "lost": result.lost,
        "no_loss": result.lost == 0 and result.rerouted > 0,
        "accounting_exact": rerouted_metric == float(result.rerouted),
    }


def main() -> int:
    parser = base_parser(
        "repro.fleet scaling/placement/failover benchmark",
        out_default="BENCH_fleet.json",
        repeats_default=3,
    )
    args = parser.parse_args()

    scaling = bench_scaling(args.repeats)
    placement = bench_placement(args.repeats)
    failover = bench_failover(args.repeats)

    gates = {
        "scaling_monotone": scaling["monotone"],
        "numa_local_beats_remote": placement["numa_local_beats_remote"],
        "failover_no_loss": failover["no_loss"],
        "failover_accounting_exact": failover["accounting_exact"],
    }
    payload = {
        "bench": "fleet",
        "scaling": scaling,
        "placement": placement,
        "failover": failover,
        "gates": gates,
        "ok": all(gates.values()),
    }
    write_json(args.out, payload)
    for name, ok in gates.items():
        print(f"[{'OK' if ok else 'FAIL'}] {name}")
    print(f"wrote {args.out}")
    return gate_exit(payload["ok"], args.require)


if __name__ == "__main__":
    sys.exit(main())
