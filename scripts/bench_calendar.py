#!/usr/bin/env python
"""Calendar backend + pooling microbenchmark: wheel vs heap at 1M pending.

Five million-event workloads run the *same* installed engine under
both calendar backends (``Environment(calendar="heap")`` vs
``"wheel"``), so the comparison isolates the data structure, not
engine drift.  The drain workloads arm their timers in the untimed
setup phase and time ``env.run()`` only — that is the "events/sec at
1M pending" the gate is about.  ``arm_1m`` reports the arming side on
its own, and it is the wheel's honest weak spot: bulk-arming
pre-sorted times is ``heappush``'s best case (a C call that sifts
zero levels) while a wheel push pays Python-level slot bookkeeping,
so a pure preload-then-drain pass is roughly break-even and the wheel
earns its keep where pops dominate or interleave with pushes
(``steady_state_1m``, the serving shape):

* ``tie_drain_1m``     — 1M timers at 62.5k distinct instants (QD-16
  completion waves, the DSA steady state).  **Gated**: the wheel's
  bucket drain must beat the heap's sift-down by ``--target-drain``
  (default 3x) in events/sec.
* ``steady_state_1m``  — 1M preloaded timers, each completion re-arms
  one more (open-loop serving shape): the timed region interleaves 2M
  pops with 1M pushes at ~1M pending.
* ``cancel_churn_1m``  — 1M armed, every other one cancelled before it
  fires; exercises lazy discard + compaction under both backends.
* ``uniform_drain_1m`` — 1M unique instants.  Reported, not gated:
  with no ties every pop pays a full resort either way and the wheel's
  per-bucket ``insort`` loses part of its edge.
* ``arm_1m``           — the arming phase alone: 1M ``timeout()``
  calls, no drain.  Reported, not gated (expected ~1x).

``small_closed_loop`` then runs a tiny closed-loop chain (the default
experiment shape) under ``--calendar auto`` and ``wheel``; **gated**:
auto — which stays on the heap below the promotion threshold — must
keep at least ``--target-small`` (default 0.9x) of heap throughput.

The pooling section measures the allocation-churn work:

* ``timeout_pooling``    — a 200k-yield chain with the Timeout free
  list enabled vs ``timeout_pool=0``.  Fresh Timeout constructions are
  counted by wrapping the engine's allocator; **gated**: the pool must
  eliminate >90% of them.
* ``descriptor_pooling`` — 200k ``clone_range`` churns through a
  ``DescriptorPool`` vs fresh clones; **gated** the same way via the
  pool's reuse counter.
* ``slots_footprint``    — tracemalloc peak for 100k live descriptors
  (four objects each) against a pre-slots, ``__dict__``-backed replica;
  **gated**: the slotted classes must trace below 0.9x the replica.

tracemalloc peaks are reported for the churn loops too; they bound the
*resident* cost (the pool must not grow the live set), while the
construction counters carry the churn-reduction claim — CPython frees
refcount-zero garbage immediately, so churn never shows in a peak.

    PYTHONPATH=src python scripts/bench_calendar.py --out BENCH_calendar.json
"""

from __future__ import annotations

import sys
import tracemalloc

import numpy as np

from _bench_common import base_parser, best_of, gate_exit, write_json
import repro.sim.engine as engine
from repro.dsa.descriptor import DescriptorPool, WorkDescriptor
from repro.dsa.opcodes import Opcode
from repro.sim.engine import Environment

# ---------------------------------------------------------------------------
# Million-event calendar workloads (same engine, different backend).
# ---------------------------------------------------------------------------

N_TIMERS = 1_000_000
WAVE_QD = 16


def wave_times(n=N_TIMERS, seed=7, qd=WAVE_QD):
    """n completion instants in QD-sized ties (DSA completion waves)."""
    rng = np.random.default_rng(seed)
    return np.repeat(np.cumsum(rng.exponential(float(qd), n // qd)), qd).tolist()


def uniform_times(n=N_TIMERS, seed=11):
    """n unique instants, pre-sorted (the heap's best-case arming)."""
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0, n)).tolist()


def preload_drain(times):
    """Arm every timer (setup), then time running the calendar dry."""

    def setup(backend):
        env = Environment(calendar=backend)
        timeout = env.timeout
        for t in times:
            timeout(t)
        return env

    return setup, len(times)


def steady_state(times, gaps):
    """Preload ``times`` (setup); the timed drain re-arms one timer per
    completion while ``gaps`` lasts, holding pending near len(times)."""

    def setup(backend):
        env = Environment(calendar=backend)
        timeout = env.timeout
        state = iter(gaps)

        def rearm(event):
            gap = next(state, None)
            if gap is not None:
                timeout(gap).callbacks.append(rearm)

        for t in times:
            timeout(t).callbacks.append(rearm)
        return env

    return setup, len(times) + len(gaps)


def cancel_churn(times):
    """Arm everything and cancel every other timer (setup); the timed
    drain pays one lazy discard per cancelled entry."""

    def setup(backend):
        env = Environment(calendar=backend)
        timeout = env.timeout
        armed = [timeout(t) for t in times]
        for ev in armed[::2]:
            ev.cancel()
        return env

    return setup, len(times)


def arm_only(times):
    """The arming phase alone: the timed region is 1M timeout() calls."""

    def setup(backend):
        return Environment(calendar=backend)

    def run(env):
        timeout = env.timeout
        for t in times:
            timeout(t)
        return len(times)

    return setup, run


def small_closed_loop(n_procs=20, n_yields=2000):
    """The default experiment shape: low pending count, long chains."""

    def run(env):
        def proc(delay):
            for _ in range(n_yields):
                yield env.timeout(delay)

        for i in range(n_procs):
            env.process(proc(1.0 + i * 0.01))
        env.run()
        return n_procs * (n_yields + 1)

    return run


def measure(backend, spec, repeats):
    """Time one (backend, workload) pair; arming lives in setup."""
    setup, tail = spec
    if callable(tail):  # arm_only: the timed region is the arming loop
        run = tail
    else:
        def run(env, _events=tail):
            env.run()
            return _events

    best = best_of(repeats, run, setup=lambda: setup(backend))
    return best.rate(), best.seconds


def measure_closed(backend, run, repeats):
    best = best_of(repeats, run, setup=lambda: Environment(calendar=backend))
    return best.rate(), best.seconds


# ---------------------------------------------------------------------------
# Pooling: construction counts + tracemalloc footprints.
# ---------------------------------------------------------------------------

CHURN_N = 200_000


def timeout_pooling(repeats):
    """Fresh-Timeout constructions for a 200k-yield chain, pool on/off."""
    chain = small_closed_loop(n_procs=8, n_yields=CHURN_N // 8)
    out = {}
    for label, pool_size in (("unpooled", 0), ("pooled", None)):
        counter = [0]
        orig = engine._new_event

        def counting(cls, _orig=orig, _c=counter):
            _c[0] += 1
            return _orig(cls)

        kwargs = {} if pool_size is None else {"timeout_pool": pool_size}
        engine._new_event = counting
        tracemalloc.start()
        try:
            chain(Environment(**kwargs))
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
            engine._new_event = orig
        allocs = counter[0]
        rate, _ = measure_pool_rate(lambda: Environment(**kwargs), chain, repeats)
        out[label] = {
            "timeout_allocs": allocs,
            "tracemalloc_peak_kib": round(peak / 1024, 1),
            "events_per_sec": round(rate),
        }
    return out


def measure_pool_rate(env_factory, run, repeats):
    best = best_of(repeats, run, setup=env_factory)
    return best.rate(), best.seconds


def descriptor_pooling(repeats):
    """200k clone_range churns: DescriptorPool reuse vs fresh clones."""
    proto = WorkDescriptor(opcode=Opcode.MEMMOVE, src=1 << 20, dst=2 << 20, size=4096)
    out = {}
    for label, make_pool in (("unpooled", lambda: None), ("pooled", DescriptorPool)):

        def churn(pool):
            for _ in range(CHURN_N):
                clone = proto.clone_range(0, proto.size, pool=pool)
                if pool is not None:
                    pool.release(clone)
            return CHURN_N

        pool = make_pool()
        tracemalloc.start()
        try:
            churn(pool)
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        allocs = CHURN_N - (pool.reuses if pool is not None else 0)
        best = best_of(repeats, churn, setup=make_pool)
        out[label] = {
            "descriptor_allocs": allocs,
            "tracemalloc_peak_kib": round(peak / 1024, 1),
            "clones_per_sec": round(best.rate()),
        }
    return out


class _DictCompletion:
    def __init__(self):
        self.status = 0
        self.bytes_completed = 0
        self.result = 0
        self.fault_address = None


class _DictTimestamps:
    def __init__(self):
        self.allocated = None
        self.prepared = None
        self.submitted = None
        self.dispatched = None
        self.completed = None


class _DictDescriptor:
    """Pre-slots replica: same fields, per-instance ``__dict__``."""

    def __init__(self, opcode, size):
        self.opcode = opcode
        self.pasid = 0
        self.flags = 0
        self.src = 0
        self.src2 = 0
        self.dst = 0
        self.dst2 = 0
        self.size = size
        self.pattern = 0
        self.pattern2 = 0
        self.pattern_bytes = 8
        self.dif = None
        self.dif_new = None
        self.delta_max_size = 1 << 17
        self.delta_size = 0
        self.completion = _DictCompletion()
        self.times = _DictTimestamps()
        self.completion_event = None
        self.dispatch_weight = 1.0
        self.trace_track = -1


def slots_footprint(n=100_000):
    """tracemalloc peak of n live descriptors, slotted vs dict-backed."""
    peaks = {}
    for label, factory in (
        ("slots", lambda: WorkDescriptor(opcode=Opcode.MEMMOVE, size=4096)),
        ("dict", lambda: _DictDescriptor(Opcode.MEMMOVE, 4096)),
    ):
        tracemalloc.start()
        try:
            _live = [factory() for _ in range(n)]
            peaks[label] = tracemalloc.get_traced_memory()[1]
        finally:
            del _live
            tracemalloc.stop()
    return {
        "descriptors": n,
        "slots_peak_kib": round(peaks["slots"] / 1024, 1),
        "dict_peak_kib": round(peaks["dict"] / 1024, 1),
        "ratio": round(peaks["slots"] / peaks["dict"], 3),
    }


# ---------------------------------------------------------------------------


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_calendar.json", repeats_default=3)
    parser.add_argument(
        "--target-drain", type=float, default=3.0,
        help="required wheel/heap speedup on the tie-heavy 1M drain",
    )
    parser.add_argument(
        "--target-small", type=float, default=0.9,
        help="minimum auto/heap throughput ratio on small closed loops",
    )
    args = parser.parse_args(argv)

    waves = wave_times()
    rng = np.random.default_rng(13)
    workloads = {
        "tie_drain_1m": preload_drain(waves),
        "steady_state_1m": steady_state(
            waves, rng.exponential(float(WAVE_QD), N_TIMERS).tolist()
        ),
        "cancel_churn_1m": cancel_churn(waves),
        "uniform_drain_1m": preload_drain(uniform_times()),
        "arm_1m": arm_only(waves),
    }

    results = {}
    for name, spec in workloads.items():
        heap_eps, heap_t = measure("heap", spec, args.repeats)
        wheel_eps, wheel_t = measure("wheel", spec, args.repeats)
        speedup = wheel_eps / heap_eps
        results[name] = {
            "heap_events_per_sec": round(heap_eps),
            "wheel_events_per_sec": round(wheel_eps),
            "heap_best_s": round(heap_t, 4),
            "wheel_best_s": round(wheel_t, 4),
            "speedup": round(speedup, 3),
        }
        print(
            f"{name:16s}  heap {heap_eps/1e6:5.2f} M ev/s   "
            f"wheel {wheel_eps/1e6:5.2f} M ev/s   x{speedup:.2f}"
        )

    small = small_closed_loop()
    heap_eps, _ = measure_closed("heap", small, max(args.repeats, 5))
    auto_eps, _ = measure_closed("auto", small, max(args.repeats, 5))
    wheel_eps, _ = measure_closed("wheel", small, max(args.repeats, 5))
    small_ratio = auto_eps / heap_eps
    results["small_closed_loop"] = {
        "heap_events_per_sec": round(heap_eps),
        "auto_events_per_sec": round(auto_eps),
        "wheel_events_per_sec": round(wheel_eps),
        "auto_vs_heap": round(small_ratio, 3),
        "wheel_vs_heap": round(wheel_eps / heap_eps, 3),
    }
    print(
        f"small_closed_loop auto x{small_ratio:.2f} vs heap "
        f"(wheel x{wheel_eps / heap_eps:.2f})"
    )

    pooling = {
        "timeout": timeout_pooling(args.repeats),
        "descriptor": descriptor_pooling(args.repeats),
        "slots_footprint": slots_footprint(),
    }
    t_un = pooling["timeout"]["unpooled"]["timeout_allocs"]
    t_po = pooling["timeout"]["pooled"]["timeout_allocs"]
    d_un = pooling["descriptor"]["unpooled"]["descriptor_allocs"]
    d_po = pooling["descriptor"]["pooled"]["descriptor_allocs"]
    print(
        f"pooling: timeout allocs {t_un} -> {t_po}, descriptor allocs "
        f"{d_un} -> {d_po}, slots footprint x"
        f"{pooling['slots_footprint']['ratio']:.2f} of dict"
    )

    gates = {
        "tie_drain_1m_speedup": {
            "value": results["tie_drain_1m"]["speedup"],
            "target": args.target_drain,
            "pass": results["tie_drain_1m"]["speedup"] >= args.target_drain,
        },
        "small_auto_no_harm": {
            "value": round(small_ratio, 3),
            "target": args.target_small,
            "pass": small_ratio >= args.target_small,
        },
        "timeout_alloc_reduction": {
            "value": t_po,
            "target": t_un // 10,
            "pass": t_po < t_un / 10,
        },
        "descriptor_alloc_reduction": {
            "value": d_po,
            "target": d_un // 10,
            "pass": d_po < d_un / 10,
        },
        "slots_footprint_ratio": {
            "value": pooling["slots_footprint"]["ratio"],
            "target": 0.9,
            "pass": pooling["slots_footprint"]["ratio"] < 0.9,
        },
    }
    ok = all(g["pass"] for g in gates.values())
    write_json(
        args.out,
        {
            "benchmark": "repro.sim calendar backends + object pooling",
            "repeats": args.repeats,
            "pending_timers": N_TIMERS,
            "workloads": results,
            "pooling": pooling,
            "gates": gates,
            "pass": ok,
        },
    )
    status = "PASS" if ok else "FAIL"
    print(f"gates {status} -> {args.out}")
    return gate_exit(ok, args.require)


if __name__ == "__main__":
    sys.exit(main())
