#!/usr/bin/env python
"""Traffic serving-mode benchmark: throughput, accounting exactness, tails.

Measures and gates the ``repro.traffic`` subsystem end to end:

* **loadgen throughput** — requests/second of simulated wall through
  the full path (arrival draw, ENQCMD with retry/backoff, completion,
  SLO accounting).  Reported ungated: raw speed varies by machine.
* **p999 envelope** (hard gate) — per-tenant p99.9 read from the
  constant-memory ``StreamingHistogram`` must sit within its declared
  1% relative-error envelope of the exact percentile, computed from a
  ``shadow_exact`` run that also keeps every raw latency.  This is the
  number docs/TRAFFIC.md tells users to trust for SLO reporting.
* **attribution exactness** (hard gate) — under a retry storm, the
  per-source ``<wq>.source.<tenant>.enqcmd_retries`` / ``.rejected``
  counters must sum *exactly* to the WQ aggregates: every retry is
  booked to a tenant, none double-booked.
* **conservation** (hard gate) — offered == completed + dropped on
  every workload; a lost request is an accounting bug, not noise.

Results are written as JSON (default ``BENCH_traffic.json``)::

    PYTHONPATH=src python scripts/bench_traffic.py --out BENCH_traffic.json
"""

from __future__ import annotations

import sys

from _bench_common import base_parser, best_of, gate_exit, write_json
from repro.dsa.config import DeviceConfig, WqMode
from repro.obs.streaming import DEFAULT_RELATIVE_ERROR
from repro.sim.stats import Histogram as ExactHistogram
from repro.traffic import (
    SizeDist,
    TrafficProfile,
    drive_profile,
    dsa_capacity,
    make_tenants,
)

KB = 1024
#: Finite-sample slack on top of the histogram's per-value guarantee:
#: exact and streaming percentiles interpolate the same ranks from
#: slightly different supports, so a hair over the bucket bound is
#: measurement granularity, not a broken envelope.
ENVELOPE_SLACK = 0.002


def envelope_profile(tenants: int) -> TrafficProfile:
    """Moderate-load lognormal tenants — a dense, well-sampled tail."""
    return TrafficProfile(
        name="bench-envelope",
        tenants=make_tenants(
            "t",
            tenants,
            0.7 * dsa_capacity(16 * KB),
            sizes=SizeDist(kind="lognormal", size=8 * KB, sigma=0.7),
        ),
    )


def storm_profile(tenants: int) -> TrafficProfile:
    """Overloaded bursty tenants on a small SWQ — a retry storm."""
    return TrafficProfile(
        name="bench-storm",
        tenants=make_tenants(
            "t",
            tenants,
            1.25 * dsa_capacity(8 * KB),
            arrival="bursty",
            cv2=9.0,
            sizes=SizeDist(kind="fixed", size=8 * KB),
        ),
    )


def bench_throughput(requests: int, tenants: int, repeats: int) -> dict:
    best = best_of(
        repeats,
        lambda _: drive_profile(envelope_profile(tenants), requests),
    )
    return {
        "requests": requests,
        "tenants": tenants,
        "best_s": round(best.seconds, 4),
        "requests_per_sec": round(requests / best.seconds),
    }


def bench_envelope(requests: int, tenants: int) -> dict:
    """Streaming vs exact p999 per tenant, worst relative error."""
    generator, totals = drive_profile(
        envelope_profile(tenants), requests, shadow_exact=True
    )
    worst = 0.0
    measured = 0
    for spec in generator.profile.tenants:
        account = generator.accountant.account(spec.name)
        samples = account.shadow_samples
        # p999 needs a populated tail to be a meaningful comparison.
        if samples is None or len(samples) < 1000:
            continue
        exact = ExactHistogram()
        exact.extend(samples)
        reference = exact.percentile(99.9)
        error = abs(account.percentile(99.9) - reference) / abs(reference)
        worst = max(worst, error)
        measured += 1
    return {
        "requests": requests,
        "tenants": tenants,
        "tenants_measured": measured,
        "completed": totals["completed"],
        "worst_p999_rel_error": round(worst, 6),
        "bound": DEFAULT_RELATIVE_ERROR + ENVELOPE_SLACK,
        "pass": measured > 0 and worst <= DEFAULT_RELATIVE_ERROR + ENVELOPE_SLACK,
    }


def bench_attribution(requests: int, tenants: int) -> dict:
    """Per-source retry/reject counters must sum exactly to aggregates."""
    generator, totals = drive_profile(
        storm_profile(tenants),
        requests,
        device_config=DeviceConfig.single(
            wq_size=16, n_engines=4, mode=WqMode.SHARED
        ),
    )
    snapshot = generator.platform.metrics_snapshot()

    def family(suffix: str) -> tuple:
        aggregate = snapshot.get(f"dsa0.wq0.{suffix}", 0.0)
        per_source = sum(
            value
            for name, value in snapshot.items()
            if name.startswith("dsa0.wq0.source.") and name.endswith(f".{suffix}")
        )
        return aggregate, per_source

    retries_agg, retries_src = family("enqcmd_retries")
    rejected_agg, rejected_src = family("rejected")
    ok = (
        retries_agg > 0
        and retries_src == retries_agg
        and rejected_src == rejected_agg
        and totals["offered"] == totals["completed"] + totals["dropped"]
    )
    return {
        "requests": requests,
        "tenants": tenants,
        "aggregate_retries": retries_agg,
        "per_source_retries": retries_src,
        "aggregate_rejected": rejected_agg,
        "per_source_rejected": rejected_src,
        "offered": totals["offered"],
        "completed": totals["completed"],
        "dropped": totals["dropped"],
        "pass": ok,
    }


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_traffic.json", repeats_default=3)
    parser.add_argument(
        "--requests", type=int, default=30_000, help="requests per workload run"
    )
    parser.add_argument(
        "--tenants", type=int, default=16, help="tenant fan-in per workload"
    )
    args = parser.parse_args(argv)

    throughput = bench_throughput(
        min(args.requests, 10_000), args.tenants, args.repeats
    )
    envelope = bench_envelope(args.requests, args.tenants)
    attribution = bench_attribution(args.requests, args.tenants)

    print(f"loadgen   {throughput['requests_per_sec']:,d} req/s (best of {args.repeats})")
    print(
        f"envelope  worst p999 rel error {envelope['worst_p999_rel_error']:.5f} "
        f"over {envelope['tenants_measured']} tenants (bound {envelope['bound']:.3f})"
    )
    print(
        f"attribution  {attribution['per_source_retries']:.0f} per-source vs "
        f"{attribution['aggregate_retries']:.0f} aggregate retries; "
        f"{attribution['dropped']} dropped of {attribution['offered']} offered"
    )

    ok = envelope["pass"] and attribution["pass"]
    payload = {
        "benchmark": "repro.traffic open-loop serving mode",
        "repeats": args.repeats,
        "throughput": throughput,
        "envelope": envelope,
        "attribution": attribution,
        "pass": ok,
    }
    write_json(args.out, payload)
    print(f"{'PASS' if ok else 'FAIL'} -> {args.out}")
    return gate_exit(ok, args.require)


if __name__ == "__main__":
    sys.exit(main())
