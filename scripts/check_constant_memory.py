#!/usr/bin/env python
"""CI smoke: streaming observability runs in constant memory.

Drives the full streaming stack — a ``RingTracer`` (bounded ring,
spill-to-disk), a ``streaming``-backend ``HistogramMetric``, and a
``ResultSink`` — through a synthetic descriptor workload at two sizes
(default 1e5 and 1e6 records+samples) and compares the tracemalloc
peaks.  If memory is genuinely O(capacity + buckets) rather than
O(records), a 10x larger run must not grow the peak by more than
``--tolerance`` (default 10%): the ring, the bucket map, and the sink's
line buffer are all full well before the small run finishes.

Exits 0 when the peak is flat, 1 when it grew — wire it into CI as a
regression tripwire for accidental unbounded accumulation anywhere on
the record path (e.g. a forgotten list.append in the tracer, a
per-sample side list in the histogram, or the sink buffering lines).

    PYTHONPATH=src python scripts/check_constant_memory.py
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
import tempfile
import tracemalloc

from repro.obs import MetricsRegistry, ResultSink, RingTracer

RING_CAPACITY = 1 << 13


def drive(n, workdir):
    """Emit ``n`` trace records, ``n`` histogram samples, n/1000 sink lines."""
    tracer = RingTracer(capacity=RING_CAPACITY, spill_dir=str(workdir / "spill"))
    registry = MetricsRegistry()
    hist = registry.histogram("smoke.lat", backend="streaming")
    sink = ResultSink(workdir / "results.jsonl")
    rng = random.Random(13)
    complete = tracer.complete
    add = hist.add
    try:
        for i in range(n):
            complete(float(i), 2.0, "memmove", "execute", "eng0", 1, {"bytes": 4096})
            add(rng.lognormvariate(3.0, 1.2))
            if not i % 1000:
                sink.series("smoke", "lat", [(i, hist.percentile(50))])
        registry.counter("smoke.records").add(n)
    finally:
        sink.close()
        tracer.cleanup()
    return len(hist.samples)


def measure(n, workdir):
    tracemalloc.start()
    tracemalloc.reset_peak()
    drive(n, workdir)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", type=int, default=100_000, help="baseline record count")
    parser.add_argument("--big", type=int, default=1_000_000, help="scaled record count")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional peak growth from --small to --big",
    )
    args = parser.parse_args(argv)
    if args.big <= args.small:
        parser.error("--big must exceed --small")

    import pathlib

    root = pathlib.Path(tempfile.mkdtemp(prefix="const_mem_"))
    try:
        drive(min(args.small, 10_000), root / "warmup")  # stabilize allocator caches
        small_peak = measure(args.small, root / "small")
        big_peak = measure(args.big, root / "big")
    finally:
        shutil.rmtree(root, ignore_errors=True)

    growth = big_peak / small_peak - 1.0
    scale = args.big / args.small
    print(
        f"peak @ {args.small:>9,d} records: {small_peak/1024:10.1f} KiB\n"
        f"peak @ {args.big:>9,d} records: {big_peak/1024:10.1f} KiB\n"
        f"growth {growth:+.1%} across a {scale:.0f}x workload "
        f"(tolerance {args.tolerance:.0%})"
    )
    if growth > args.tolerance:
        print("FAIL: peak memory scales with record count")
        return 1
    print("PASS: constant-memory envelope holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
