#!/usr/bin/env python
"""CI smoke: streaming observability runs in constant memory.

Drives the full streaming stack — a ``RingTracer`` (bounded ring,
spill-to-disk), a ``streaming``-backend ``HistogramMetric``, and a
``ResultSink`` — through a synthetic descriptor workload at two sizes
(default 1e5 and 1e6 records+samples) and compares the tracemalloc
peaks.  If memory is genuinely O(capacity + buckets) rather than
O(records), a 10x larger run must not grow the peak by more than
``--tolerance`` (default 10%): the ring, the bucket map, and the sink's
line buffer are all full well before the small run finishes.

Exits 0 when the peak is flat, 1 when it grew — wire it into CI as a
regression tripwire for accidental unbounded accumulation anywhere on
the record path (e.g. a forgotten list.append in the tracer, a
per-sample side list in the histogram, or the sink buffering lines).

    PYTHONPATH=src python scripts/check_constant_memory.py

``--traffic`` switches the workload to the real serving mode: a
64-tenant overloaded ``LoadGenerator`` profile (retries, drops, SLO
windows, per-source attribution all active) driven end to end at the
two request counts.  That is the constant-memory claim docs/TRAFFIC.md
makes for the large tier — request lifetime is bounded (bounded
retries, bounded queues), per-tenant accounting is streaming, so peak
memory must not scale with request count:

    PYTHONPATH=src python scripts/check_constant_memory.py \\
        --traffic --small 20000 --big 200000
"""

from __future__ import annotations

import argparse
import random
import shutil
import sys
import tempfile
import tracemalloc

from repro.obs import MetricsRegistry, ResultSink, RingTracer

RING_CAPACITY = 1 << 13


def drive(n, workdir):
    """Emit ``n`` trace records, ``n`` histogram samples, n/1000 sink lines."""
    tracer = RingTracer(capacity=RING_CAPACITY, spill_dir=str(workdir / "spill"))
    registry = MetricsRegistry()
    hist = registry.histogram("smoke.lat", backend="streaming")
    sink = ResultSink(workdir / "results.jsonl")
    rng = random.Random(13)
    complete = tracer.complete
    add = hist.add
    try:
        for i in range(n):
            complete(float(i), 2.0, "memmove", "execute", "eng0", 1, {"bytes": 4096})
            add(rng.lognormvariate(3.0, 1.2))
            if not i % 1000:
                sink.series("smoke", "lat", [(i, hist.percentile(50))])
        registry.counter("smoke.records").add(n)
    finally:
        sink.close()
        tracer.cleanup()
    return len(hist.samples)


def drive_traffic(requests, workdir):
    """Run the serving mode end to end: 64 overloaded bursty tenants.

    ``workdir`` is unused (the traffic path holds no spill files); the
    signature matches :func:`drive` so :func:`measure` can run either.
    Aggregate load is 1.15x the device's planning capacity on a small
    SWQ, so retries, drops, SLO-violation windows, and per-source
    attribution counters are all live — the full accounting surface.
    """
    from repro.dsa.config import DeviceConfig, WqMode
    from repro.traffic import (
        SizeDist,
        TrafficProfile,
        drive_profile,
        dsa_capacity,
        make_tenants,
    )

    profile = TrafficProfile(
        name="const-mem",
        tenants=make_tenants(
            "t",
            64,
            1.15 * dsa_capacity(8192, engines=4),
            arrival="bursty",
            cv2=4.0,
            sizes=SizeDist(kind="fixed", size=8192),
        ),
    )
    drive_profile(
        profile,
        requests,
        device_config=DeviceConfig.single(wq_size=32, n_engines=4, mode=WqMode.SHARED),
    )


def measure(n, workdir, workload=drive):
    tracemalloc.start()
    tracemalloc.reset_peak()
    workload(n, workdir)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", type=int, default=100_000, help="baseline record count")
    parser.add_argument("--big", type=int, default=1_000_000, help="scaled record count")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional peak growth from --small to --big",
    )
    parser.add_argument(
        "--traffic",
        action="store_true",
        help="drive the repro.traffic serving mode (open-loop multi-tenant "
        "LoadGenerator under overload) instead of the synthetic record "
        "workload; counts are requests",
    )
    args = parser.parse_args(argv)
    if args.big <= args.small:
        parser.error("--big must exceed --small")
    workload = drive_traffic if args.traffic else drive

    import pathlib

    root = pathlib.Path(tempfile.mkdtemp(prefix="const_mem_"))
    try:
        # Warm-up run stabilizes allocator/import caches before measuring.
        workload(min(args.small, 10_000), root / "warmup")
        small_peak = measure(args.small, root / "small", workload)
        big_peak = measure(args.big, root / "big", workload)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    growth = big_peak / small_peak - 1.0
    scale = args.big / args.small
    print(
        f"peak @ {args.small:>9,d} records: {small_peak/1024:10.1f} KiB\n"
        f"peak @ {args.big:>9,d} records: {big_peak/1024:10.1f} KiB\n"
        f"growth {growth:+.1%} across a {scale:.0f}x workload "
        f"(tolerance {args.tolerance:.0%})"
    )
    if growth > args.tolerance:
        print("FAIL: peak memory scales with record count")
        return 1
    print("PASS: constant-memory envelope holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
