#!/usr/bin/env python
"""Fidelity-tier benchmark: batched fast path vs full per-event DES.

Measures descriptors/second through ``repro.workloads.microbench`` with
the default ``des`` tier versus ``--fidelity auto`` (the cross-validated
batched fast path from ``repro.sim.fidelity`` / ``repro.sim.batch``) on
two arms:

* ``large_homogeneous`` — long closed-loop sweeps (thousands of
  iterations per worker, the regime the ROADMAP's datacenter-traffic
  item lives in).  Steady state dominates, the pilot is amortized away,
  and the batched tier must deliver **>= 10x** (hard gate, geomean).
* ``quick_equivalent`` — the closed-loop shapes ``run all --quick``
  executes (sync QD1 DSA sweeps, table-1 operations, the software
  baseline arm) at quick's modal measurement length of 30 iterations.
  Here the pilot is a large fraction of the run, so the honest ceiling
  is ``iterations / pilot`` (~2.3x at 30); the gate is **>= 2x**
  (geomean over shapes where a pilot plan exists).  Quick's *async*
  QD32 shapes are shorter than one completion wave, so the planner
  refuses them and they run full DES — that fallback is gated too, at
  **>= 0.9x** (refusal must cost nothing; it short-circuits before any
  pilot work).

Every (shape, tier) pair also cross-checks accuracy: auto must match
des throughput, mean latency, and p99 latency within
``DECLARED_TOLERANCE`` (the same bound the anchor differential suite
``scripts/check_fidelity_equivalence.py`` enforces), and the default
``des`` tier is byte-identical by construction (it never consults the
fidelity module).  Results are written as JSON (default
``BENCH_fidelity.json``)::

    PYTHONPATH=src python scripts/bench_fidelity.py --out BENCH_fidelity.json

Methodology: each (shape, tier) pair runs ``--repeats`` times with a
freshly installed default seed and the best run wins (minimum wall
time); descriptors/sec counts completed work descriptors (batch members
included) over wall time, identical logical work on both arms.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

from _bench_common import base_parser, best_of, gate_exit, geomean, write_json
from repro.dsa.opcodes import Opcode
from repro.sim.fidelity import DECLARED_TOLERANCE, FidelityPolicy, fidelity, plan_closed_loop
from repro.sim.rng import DEFAULT_SEED, install_seed, uninstall_seed
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024

#: (name, runner kind, config, inner sweep count).  ``inner`` repeats
#: the run back-to-back inside the timed region — quick mode executes
#: dozens of such points per figure, and a multi-millisecond timed
#: region is what makes the sub-millisecond shapes measurable.
#: ``large_homogeneous`` is the >=10x arm; ``quick_equivalent``
#: mirrors the run-all-quick closed-loop shapes at quick's modal 30
#: iterations (see module docstring).
ARMS = {
    "large_homogeneous": [
        ("sync_memmove_64k", "dsa", MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=4000), 1),
        ("async_memmove_64k_qd32", "dsa", MicrobenchConfig(transfer_size=64 * KB, queue_depth=32, iterations=4000), 1),
        ("async_memmove_4k_qd32", "dsa", MicrobenchConfig(transfer_size=4 * KB, queue_depth=32, iterations=4000), 1),
    ],
    "quick_equivalent": [
        ("sync_memmove_64k", "dsa", MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=30), 8),
        ("sync_memmove_4k", "dsa", MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=30), 8),
        ("sync_crcgen_4k", "dsa", MicrobenchConfig(opcode=Opcode.CRCGEN, transfer_size=4 * KB, queue_depth=1, iterations=30), 8),
        ("sync_fill_4k", "dsa", MicrobenchConfig(opcode=Opcode.FILL, transfer_size=4 * KB, queue_depth=1, iterations=30), 8),
        ("sync_compare_4k", "dsa", MicrobenchConfig(opcode=Opcode.COMPARE, transfer_size=4 * KB, queue_depth=1, iterations=30), 8),
        ("software_memmove_64k", "sw", MicrobenchConfig(transfer_size=64 * KB, queue_depth=1, iterations=30), 100),
        ("async_memmove_64k_qd32", "dsa", MicrobenchConfig(transfer_size=64 * KB, queue_depth=32, iterations=30), 4),
    ],
}

_RUNNERS = {"dsa": run_dsa_microbench, "sw": run_software_microbench}


def _measure(kind: str, cfg: MicrobenchConfig, mode: Optional[str], repeats: int, inner: int):
    """Best-of-N wall time for one (shape, tier); returns (BestRun, result).

    The timed region runs ``inner`` identically-seeded sweeps
    back-to-back; the reported result is the last sweep's (all are
    deterministic replicas).
    """
    runner = _RUNNERS[kind]

    def run(_context) -> object:
        result = None
        for _ in range(inner):
            install_seed(DEFAULT_SEED)
            if mode is None:
                result = runner(cfg)
            else:
                with fidelity(mode):
                    result = runner(cfg)
        return result

    best = best_of(repeats, run, teardown=lambda _context: uninstall_seed())
    return best, best.value


def _rel(after: float, before: float) -> float:
    if before == 0.0:
        return abs(after)
    return abs(after - before) / abs(before)


def _accuracy(des, auto) -> Tuple[dict, float]:
    """Relative auto-vs-des error on the headline result metrics."""
    errors = {
        "throughput": _rel(auto.throughput, des.throughput),
        "mean_latency": _rel(auto.mean_latency_ns, des.mean_latency_ns),
        "p99_latency": _rel(auto.latency.percentile(99.0), des.latency.percentile(99.0)),
    }
    return {k: round(v, 6) for k, v in errors.items()}, max(errors.values())


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_fidelity.json", repeats_default=3)
    parser.add_argument(
        "--target-large", type=float, default=10.0, help="hard geomean gate, large arm"
    )
    parser.add_argument(
        "--target-quick",
        type=float,
        default=2.0,
        help="hard geomean gate, quick arm (shapes where a pilot plan exists)",
    )
    parser.add_argument(
        "--min-fallback",
        type=float,
        default=0.9,
        help="hard per-shape gate for shapes the planner refuses (no-harm)",
    )
    args = parser.parse_args(argv)

    policy = FidelityPolicy.for_mode("auto")
    arms = {}
    worst_error = 0.0
    gates = {}
    for arm_name, shapes in ARMS.items():
        rows = {}
        engaged_speedups = []
        fallback_ok = True
        for name, kind, cfg, inner in shapes:
            planned = kind == "sw" or (
                plan_closed_loop(cfg.iterations, cfg.queue_depth, policy) is not None
            )
            des_best, des_result = _measure(kind, cfg, None, args.repeats, inner)
            auto_best, auto_result = _measure(kind, cfg, "auto", args.repeats, inner)
            des_dps = des_result.operations * inner / des_best.seconds
            auto_dps = auto_result.operations * inner / auto_best.seconds
            speedup = auto_dps / des_dps
            errors, worst = _accuracy(des_result, auto_result)
            worst_error = max(worst_error, worst)
            if planned:
                engaged_speedups.append(speedup)
            else:
                fallback_ok = fallback_ok and speedup >= args.min_fallback
            rows[name] = {
                "descriptors": des_result.operations,
                "iterations": cfg.iterations,
                "queue_depth": cfg.queue_depth,
                "planned": planned,
                "des_descriptors_per_sec": round(des_dps),
                "auto_descriptors_per_sec": round(auto_dps),
                "des_best_s": round(des_best.seconds, 4),
                "auto_best_s": round(auto_best.seconds, 4),
                "speedup": round(speedup, 3),
                "rel_errors": errors,
            }
            print(
                f"{arm_name:17s} {name:24s} des {des_dps/1e3:8.1f} k desc/s   "
                f"auto {auto_dps/1e3:8.1f} k desc/s   x{speedup:7.2f}"
                f"{'' if planned else '  (fallback)'}   err {worst:.4f}"
            )
        overall = geomean(engaged_speedups)
        target = args.target_large if arm_name == "large_homogeneous" else args.target_quick
        gates[arm_name] = overall >= target and fallback_ok
        arms[arm_name] = {
            "shapes": rows,
            "speedup_geomean": round(overall, 3),
            "target": target,
            "fallback_no_harm": fallback_ok,
        }
        print(f"{arm_name}: geomean x{overall:.2f} (target x{target})")

    accuracy_ok = worst_error <= DECLARED_TOLERANCE
    ok = all(gates.values()) and accuracy_ok
    write_json(
        args.out,
        {
            "benchmark": "repro.sim fidelity tiers (auto batched fast path vs full DES)",
            "repeats": args.repeats,
            "arms": arms,
            "worst_rel_error": round(worst_error, 6),
            "declared_tolerance": DECLARED_TOLERANCE,
            "accuracy_pass": accuracy_ok,
            "min_fallback": args.min_fallback,
            "pass": ok,
        },
    )
    print(
        f"{'PASS' if ok else 'FAIL'}  worst rel error {worst_error:.5f} "
        f"(tolerance {DECLARED_TOLERANCE}) -> {args.out}"
    )
    return gate_exit(ok, args.require)


if __name__ == "__main__":
    sys.exit(main())
