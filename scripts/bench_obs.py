#!/usr/bin/env python
"""Observability microbenchmark: tracer and histogram cost envelopes.

Measures the cost of the observability layer introduced for streaming,
constant-memory runs, answering three questions a calibration user has
before turning instrumentation on for a long sweep:

* **record throughput** — events/second into the disabled
  ``NULL_TRACER`` (the hot-path floor every simulation pays), the
  unbounded in-memory ``Tracer``, and the bounded ``RingTracer``
  (ring + spill-to-disk);
* **histogram throughput and accuracy** — samples/second into the
  ``exact`` backend (stores every value) vs the ``streaming``
  log-bucket backend, plus the streaming backend's worst observed
  relative error on p50/p99/p99.9 against exact over seeded lognormal
  and bimodal sample sets;
* **memory envelope** — tracemalloc peak while recording the same
  workload through the unbounded tracer vs the ring, and through the
  exact vs streaming histograms.  These ratios are the point of the
  subsystem, so ``--require`` gates on them (memory ratios are stable
  across machines; raw throughput is not).

Results are written as JSON (default ``BENCH_obs.json``)::

    PYTHONPATH=src python scripts/bench_obs.py --out BENCH_obs.json

Methodology: throughput runs ``--repeats`` times, best run wins
(minimum wall time); memory peaks are measured once per configuration
under tracemalloc with the workload generator's own allocations
identical across arms.
"""

from __future__ import annotations

import random
import shutil
import sys
import tempfile
import tracemalloc

from _bench_common import base_parser, best_of, gate_exit, write_json
from repro.obs import NULL_TRACER, DEFAULT_RELATIVE_ERROR, RingTracer, StreamingHistogram, Tracer
from repro.sim.stats import Histogram as ExactHistogram

RING_CAPACITY = 1 << 14

ACCURACY_SHAPES = {
    "lognormal": lambda rng: rng.lognormvariate(3.0, 1.2),
    "bimodal": lambda rng: rng.gauss(10.0, 1.0) if rng.random() < 0.9 else rng.gauss(500.0, 25.0),
}


def _drive_tracer(tracer, n):
    complete = tracer.complete
    instant = tracer.instant
    for i in range(n):
        complete(float(i), 1.5, "memmove", "execute", "eng0", 1, {"bytes": 4096})
        if not i % 64:
            instant(float(i), "poll", "wait", "core0", 0)


def _tracer_factories(spill_root):
    return {
        "null": lambda: NULL_TRACER,
        "plain": lambda: Tracer(),
        "ring": lambda: RingTracer(
            capacity=RING_CAPACITY, spill_dir=tempfile.mkdtemp(dir=spill_root)
        ),
    }


def _cleanup(tracer):
    if isinstance(tracer, RingTracer):
        tracer.cleanup()
    elif isinstance(tracer, Tracer):
        tracer.clear()


def bench_tracers(records, repeats, spill_root):
    out = {}
    for name, make in _tracer_factories(spill_root).items():
        best = best_of(
            repeats,
            lambda tracer: _drive_tracer(tracer, records),
            setup=make,
            teardown=_cleanup,
        )
        out[name] = {
            "records": records,
            "best_s": round(best.seconds, 4),
            "records_per_sec": round(records / best.seconds),
        }
    return out


def bench_histograms(samples, repeats):
    out = {}

    def fill(hist):
        rng = random.Random(7)
        add = hist.add
        for _ in range(samples):
            add(rng.lognormvariate(3.0, 1.2))

    for name, make in (("exact", ExactHistogram), ("streaming", StreamingHistogram)):
        best = best_of(repeats, fill, setup=make)
        out[name] = {
            "samples": samples,
            "best_s": round(best.seconds, 4),
            "samples_per_sec": round(samples / best.seconds),
        }
    return out


def _peak_bytes(workload):
    tracemalloc.start()
    tracemalloc.reset_peak()
    workload()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def bench_memory(records, spill_root):
    peaks = {}
    for name, make in _tracer_factories(spill_root).items():
        if name == "null":
            continue
        tracer = make()
        peaks[f"tracer_{name}_peak_kb"] = round(
            _peak_bytes(lambda: _drive_tracer(tracer, records)) / 1024
        )
        _cleanup(tracer)

    for name, make in (("exact", ExactHistogram), ("streaming", StreamingHistogram)):
        hist = make()
        rng = random.Random(7)

        def fill():
            for _ in range(records):
                hist.add(rng.lognormvariate(3.0, 1.2))

        peaks[f"hist_{name}_peak_kb"] = round(_peak_bytes(fill) / 1024)

    peaks["tracer_ring_over_plain"] = round(
        peaks["tracer_ring_peak_kb"] / peaks["tracer_plain_peak_kb"], 4
    )
    peaks["hist_streaming_over_exact"] = round(
        peaks["hist_streaming_peak_kb"] / peaks["hist_exact_peak_kb"], 4
    )
    return peaks


def bench_accuracy(samples):
    out = {}
    worst = 0.0
    for shape, draw in ACCURACY_SHAPES.items():
        rng = random.Random(11)
        exact, streaming = ExactHistogram(), StreamingHistogram()
        for _ in range(samples):
            value = draw(rng)
            exact.add(value)
            streaming.add(value)
        errors = {}
        for pct in (50.0, 99.0, 99.9):
            reference = exact.percentile(pct)
            error = abs(streaming.percentile(pct) - reference) / abs(reference)
            errors[f"p{pct:g}_rel_error"] = round(error, 6)
            worst = max(worst, error)
        errors["buckets"] = streaming.bucket_count
        out[shape] = errors
    out["worst_rel_error"] = round(worst, 6)
    return out


def main(argv=None):
    parser = base_parser(__doc__.splitlines()[0], "BENCH_obs.json", repeats_default=3)
    parser.add_argument("--records", type=int, default=200_000, help="trace records per run")
    parser.add_argument("--samples", type=int, default=200_000, help="histogram samples per run")
    parser.add_argument(
        "--max-mem-ratio",
        type=float,
        default=0.5,
        help="gate: bounded/unbounded peak memory must stay below this",
    )
    args = parser.parse_args(argv)

    spill_root = tempfile.mkdtemp(prefix="bench_obs_")
    try:
        tracers = bench_tracers(args.records, args.repeats, spill_root)
        histograms = bench_histograms(args.samples, args.repeats)
        memory = bench_memory(args.records, spill_root)
    finally:
        shutil.rmtree(spill_root, ignore_errors=True)
    accuracy = bench_accuracy(args.samples)

    for name, row in tracers.items():
        print(f"tracer {name:6s}  {row['records_per_sec']/1e6:6.2f} M rec/s")
    for name, row in histograms.items():
        print(f"hist {name:9s}  {row['samples_per_sec']/1e6:6.2f} M samp/s")
    print(
        f"memory  ring/plain {memory['tracer_ring_over_plain']:.3f}   "
        f"streaming/exact {memory['hist_streaming_over_exact']:.3f}"
    )
    print(
        f"accuracy  worst rel error {accuracy['worst_rel_error']:.5f} "
        f"(bound {DEFAULT_RELATIVE_ERROR})"
    )

    ok = (
        memory["tracer_ring_over_plain"] < args.max_mem_ratio
        and memory["hist_streaming_over_exact"] < args.max_mem_ratio
        and accuracy["worst_rel_error"] <= DEFAULT_RELATIVE_ERROR
    )
    payload = {
        "benchmark": "repro.obs streaming observability (ring tracer + streaming histogram)",
        "repeats": args.repeats,
        "ring_capacity": RING_CAPACITY,
        "tracers": tracers,
        "histograms": histograms,
        "memory": memory,
        "accuracy": accuracy,
        "max_mem_ratio": args.max_mem_ratio,
        "rel_error_bound": DEFAULT_RELATIVE_ERROR,
        "pass": ok,
    }
    write_json(args.out, payload)
    print(f"{'PASS' if ok else 'FAIL'} -> {args.out}")
    return gate_exit(ok, args.require)


if __name__ == "__main__":
    sys.exit(main())
