"""Deterministic random-number helpers.

Every stochastic element in the reproduction draws from a
:class:`numpy.random.Generator` created here, so a whole experiment is
reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Project-wide default seed: experiments pass this unless overridden.
DEFAULT_SEED = 0xD5A  # "DSA"

#: Session-wide override for ``make_rng(None)``; see :func:`install_seed`.
_installed_seed: Optional[int] = None


def install_seed(seed: Optional[int]) -> None:
    """Make ``seed`` the default for every ``make_rng(None)`` call site.

    The parallel runner (``repro.exec``) installs the run's seed in each
    worker process before an experiment starts, so a ``--jobs N`` run
    draws exactly the same streams as a serial one and ``--seed`` needs
    no threading through every experiment signature.  ``None`` restores
    :data:`DEFAULT_SEED`.
    """
    global _installed_seed
    if seed is not None and not isinstance(seed, int):
        raise TypeError(f"seed must be an int or None, got {type(seed).__name__}")
    _installed_seed = seed


def uninstall_seed() -> None:
    install_seed(None)


def installed_seed() -> int:
    """The seed ``make_rng(None)`` resolves to right now."""
    return DEFAULT_SEED if _installed_seed is None else _installed_seed


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a seeded generator.

    Accepts ``None`` (use the installed seed, normally
    :data:`DEFAULT_SEED`), an ``int`` seed, or an existing generator
    (returned unchanged, so call sites can thread one generator through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(installed_seed() if seed is None else seed)


def derive(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Fork an independent child stream, stable for a given ``stream`` id."""
    if stream < 0:
        raise ValueError(f"stream id must be non-negative, got {stream}")
    return np.random.default_rng(rng.integers(0, 2**63) + stream)
