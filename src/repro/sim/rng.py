"""Deterministic random-number helpers.

Every stochastic element in the reproduction draws from a
:class:`numpy.random.Generator` created here, so a whole experiment is
reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Project-wide default seed: experiments pass this unless overridden.
DEFAULT_SEED = 0xD5A  # "DSA"

#: Session-wide override for ``make_rng(None)``; see :func:`install_seed`.
_installed_seed: Optional[int] = None


def install_seed(seed: Optional[int]) -> None:
    """Make ``seed`` the default for every ``make_rng(None)`` call site.

    The parallel runner (``repro.exec``) installs the run's seed in each
    worker process before an experiment starts, so a ``--jobs N`` run
    draws exactly the same streams as a serial one and ``--seed`` needs
    no threading through every experiment signature.  ``None`` restores
    :data:`DEFAULT_SEED`.
    """
    global _installed_seed
    if seed is not None and not isinstance(seed, int):
        raise TypeError(f"seed must be an int or None, got {type(seed).__name__}")
    _installed_seed = seed


def uninstall_seed() -> None:
    install_seed(None)


def installed_seed() -> int:
    """The seed ``make_rng(None)`` resolves to right now."""
    return DEFAULT_SEED if _installed_seed is None else _installed_seed


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a seeded generator.

    Accepts ``None`` (use the installed seed, normally
    :data:`DEFAULT_SEED`), an ``int`` seed, or an existing generator
    (returned unchanged, so call sites can thread one generator through
    a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(installed_seed() if seed is None else seed)


def derive(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Fork an independent child stream, stable for a given ``stream`` id."""
    if stream < 0:
        raise ValueError(f"stream id must be non-negative, got {stream}")
    return np.random.default_rng(rng.integers(0, 2**63) + stream)


#: Default refill size for :class:`BatchedStream`: large enough that the
#: numpy call overhead amortizes to noise, small enough that an abandoned
#: stream wastes only a few KiB of floats.
DEFAULT_BATCH = 4096


class BatchedStream:
    """Amortized-O(1) scalar draws backed by vectorized refills.

    Pulling interarrival gaps one ``rng.exponential()`` call at a time
    costs a full numpy dispatch per event; drawing them ``batch`` at a
    time and handing out scalars from the array brings the per-draw cost
    down to an index increment.

    Determinism is preserved exactly: numpy ``Generator`` distributions
    consume the underlying bit stream identically whether drawn as one
    ``size=n`` array or any concatenation of smaller arrays, so a
    batched stream yields the very same values as unbatched scalar draws
    from the same generator — regardless of batch size, and therefore
    identically under ``--jobs N`` workers and serial runs (pinned by
    ``tests/sim/test_rng.py``).

    ``draw(fn)`` refills by calling ``fn(rng, size)``; the two common
    distributions have dedicated helpers::

        stream = BatchedStream(derive(rng, 3))
        gap = stream.exponential(scale=250.0)   # one scalar
        arr = stream.exponential_array(1000, scale=250.0)  # bulk

    A stream caches per-distribution buffers keyed by the distribution's
    parameters, so interleaving differently-parameterized draws never
    mixes buffers (each key keeps its own cursor); note that *within*
    one generator, interleaving keys changes which bit-stream segment
    each key sees (as scalar interleaving also would).
    """

    __slots__ = ("rng", "batch", "_buffers")

    def __init__(self, rng: np.random.Generator, batch: int = DEFAULT_BATCH):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.rng = rng
        self.batch = batch
        self._buffers: dict = {}

    def draw(self, key, fill) -> float:
        """One scalar from the buffer for ``key``, refilling via
        ``fill(rng, size) -> ndarray`` when it runs dry."""
        state = self._buffers.get(key)
        if state is None or state[1] >= len(state[0]):
            state = [fill(self.rng, self.batch), 0]
            self._buffers[key] = state
        value = state[0][state[1]]
        state[1] += 1
        return float(value)

    def exponential(self, scale: float) -> float:
        """One exponential variate with mean ``scale``."""
        return self.draw(
            ("exp", scale), lambda rng, n: rng.exponential(scale, size=n)
        )

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform variate on ``[low, high)``."""
        return self.draw(
            ("uni", low, high), lambda rng, n: rng.uniform(low, high, size=n)
        )

    def exponential_array(self, n: int, scale: float) -> np.ndarray:
        """``n`` exponential variates in one vectorized call.

        Bulk draws bypass the scalar buffers entirely (they are their
        own batch); mixing bulk and scalar draws on one stream is fine
        but the interleaving order defines the bit-stream split.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return self.rng.exponential(scale, size=n)
