"""Deterministic random-number helpers.

Every stochastic element in the reproduction draws from a
:class:`numpy.random.Generator` created here, so a whole experiment is
reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Project-wide default seed: experiments pass this unless overridden.
DEFAULT_SEED = 0xD5A  # "DSA"


def make_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Return a seeded generator.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an ``int`` seed, or an
    existing generator (returned unchanged, so call sites can thread one
    generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Fork an independent child stream, stable for a given ``stream`` id."""
    if stream < 0:
        raise ValueError(f"stream id must be non-negative, got {stream}")
    return np.random.default_rng(rng.integers(0, 2**63) + stream)
