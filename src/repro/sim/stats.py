"""Measurement utilities shared by all models and experiments."""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence


class OnlineStat:
    """Streaming mean / variance / min / max (Welford's algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)


class TimeWeightedStat:
    """Time-weighted average of a piecewise-constant signal.

    Used for e.g. average queue depth and LLC occupancy: call
    :meth:`update` whenever the level changes; the mean weights each
    level by how long it was held.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0):
        self._last_time = start_time
        self._level = initial
        self._area = 0.0
        self._origin = start_time
        self.maximum = initial

    @property
    def level(self) -> float:
        return self._level

    @property
    def last_time(self) -> float:
        """Timestamp of the most recent :meth:`update` (or epoch start)."""
        return self._last_time

    @property
    def elapsed(self) -> float:
        """Observed span of the current averaging epoch."""
        return self._last_time - self._origin

    def update(self, now: float, level: float) -> None:
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        if level > self.maximum:
            self.maximum = level

    def restart_epoch(self, now: float) -> None:
        """Restart averaging at ``now``; the level and maximum carry over.

        This is the supported way to reuse one stat across successive
        simulations whose clocks restart at zero (a shared metrics
        registry sees exactly that): the accumulated area and origin are
        discarded, the current level keeps being held from ``now``, and
        the maximum additionally remembers the level that was live when
        the epoch ended.
        """
        if self._level > self.maximum:
            self.maximum = self._level
        self._last_time = now
        self._origin = now
        self._area = 0.0

    def mean(self, now: Optional[float] = None) -> float:
        end = self._last_time if now is None else now
        span = end - self._origin
        if span <= 0:
            return self._level
        area = self._area + self._level * (end - self._last_time)
        return area / span

    def state(self) -> Dict[str, float]:
        """Serializable snapshot, invertible via :meth:`from_state`."""
        return {
            "last_time": self._last_time,
            "level": self._level,
            "area": self._area,
            "origin": self._origin,
            "maximum": self.maximum,
        }

    @classmethod
    def from_state(cls, state: Dict[str, float]) -> "TimeWeightedStat":
        stat = cls(start_time=state["origin"], initial=state["level"])
        stat._area = state["area"]
        stat._last_time = state["last_time"]
        stat.maximum = state["maximum"]
        return stat


class Histogram:
    """Exact-percentile sample container (lazy sort).

    Samples are appended in O(1) and sorted only when a read needs
    order (percentiles, min/max, ``count_below``); a dirty flag makes
    repeated reads free.  This keeps exact percentiles — which matters
    for the paper's p99.999 claims (Fig 19) — without the O(n²) cost
    per run that sorted insertion had for large sample counts.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._dirty = False
        self._sum = 0.0

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._dirty = True
        self._sum += value

    def extend(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def add_repeated(self, value: float, count: int) -> None:
        """Add ``count`` copies of ``value`` in one O(count) append.

        Bulk entry point for synthesized sample streams (the fidelity
        batch tier, closed-form software runs) — one multiply for the
        sum instead of ``count`` accumulations.
        """
        if count < 0:
            raise ValueError(f"negative repeat count: {count}")
        if count == 0:
            return
        self._samples.extend([value] * count)
        self._dirty = True
        self._sum += value * count

    def _ordered(self) -> List[float]:
        if self._dirty:
            # Timsort is O(n) when only a tail of new samples is unsorted.
            self._samples.sort()
            self._dirty = False
        return self._samples

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def values(self) -> List[float]:
        """All samples in sorted order (a copy; safe to mutate)."""
        return list(self._ordered())

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else 0.0

    @property
    def minimum(self) -> float:
        return self._ordered()[0] if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return self._ordered()[-1] if self._samples else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100].

        Raises :class:`ValueError` on an empty histogram: a percentile
        of nothing is not 0.0 (a silent zero once leaked into a latency
        table as a perfect p99), and callers that can legitimately see
        an empty histogram should branch on ``len(hist)`` — or use
        :meth:`summary`, which reports the empty state explicitly.
        """
        if not self._samples:
            raise ValueError("percentile() of an empty histogram is undefined")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = self._ordered()
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def count_below(self, threshold: float) -> int:
        return bisect_right(self._ordered(), threshold)

    def merge(self, other: "Histogram") -> None:
        """Fold another exact histogram's samples in (exact merge)."""
        if other._samples:
            self._samples.extend(other._samples)
            self._sum += other._sum
            self._dirty = True

    def summary(self) -> Dict[str, float]:
        if not self._samples:  # empty is reportable, all-zero by contract
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": float(len(self._samples)),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }
