"""Queueing primitives built on the event kernel.

* :class:`Resource` — counted resource with FIFO request queue (models
  work-queue slots, DMA channels, lock ownership, ...).
* :class:`Store` — FIFO buffer of Python objects with optional capacity
  (models descriptor queues, rings, mailboxes).
* :class:`PriorityStore` — like :class:`Store` but items pop in
  priority order (models the group arbiter's WQ priority).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, List, Optional, Tuple

from repro.sim.engine import Environment, Event


class Request(Event):
    """Pending acquisition of one resource slot (yieldable)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """``capacity`` interchangeable slots with a FIFO waiter queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Request] = []

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Request:
        """Return an event that triggers once a slot is held."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(self)
        else:
            self._waiters.append(req)
        return req

    def release(self) -> None:
        """Free one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a held slot")
        if self._waiters:
            self._waiters.pop(0).succeed(self)
        else:
            self._in_use -= 1

    def cancel(self, request: Request) -> None:
        """Withdraw a not-yet-granted request from the waiter queue."""
        try:
            self._waiters.remove(request)
        except ValueError:
            pass


class Store:
    """FIFO object buffer.  ``put``/``get`` return yieldable events."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[Tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        if self._getters:
            self._getters.pop(0).succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.pop(0).succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.pop(0))
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.pop(0)
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self._items) < self.capacity):
            ev, item = self._putters.pop(0)
            self._items.append(item)
            ev.succeed()


class PriorityStore(Store):
    """Store whose :meth:`get` pops the lowest ``(priority, fifo)`` item.

    Items are pushed via ``put((priority, item))`` — or any object; a
    plain object gets priority 0.  Ties break FIFO.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        super().__init__(env, capacity)
        self._heap: List[Tuple[float, int, Any]] = []
        self._tick = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[Any]:
        return [entry[2] for entry in sorted(self._heap)]

    def put(self, item: Any, priority: float = 0.0) -> Event:
        ev = Event(self.env)
        if self._getters:
            self._getters.pop(0).succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self._heap) < self.capacity:
            heapq.heappush(self._heap, (priority, next(self._tick), item))
            ev.succeed()
        else:
            self._putters.append((ev, (priority, item)))
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        if self._heap:
            ev.succeed(heapq.heappop(self._heap)[2])
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Tuple[bool, Any]:
        if self._heap:
            item = heapq.heappop(self._heap)[2]
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None or len(self._heap) < self.capacity):
            ev, (priority, item) = self._putters.pop(0)
            heapq.heappush(self._heap, (priority, next(self._tick), item))
            ev.succeed()
