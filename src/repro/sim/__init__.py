"""Discrete-event simulation kernel.

This subpackage provides the event-driven substrate on which every
hardware model in :mod:`repro` runs: a simulated clock, generator-based
processes, and queueing resources.  It is intentionally a small,
self-contained engine in the style of SimPy, implemented from scratch so
the reproduction has no external simulation dependency.

Typical usage::

    from repro.sim import Environment

    env = Environment()

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    ...
    env.run()

Timers are cancellable: any scheduled event (most usefully a
``Timeout``) supports ``event.cancel()`` — its callbacks never run, the
calendar entry is discarded lazily (bulk-compacted past
``engine.CALENDAR_COMPACT_THRESHOLD``), and a later ``succeed``/``fail``
on a cancelled pending event raises :class:`SimulationError`.  The
environment counts the churn as ``env.cancelled_events`` /
``env.stale_timers`` and publishes the pair to the metrics registry as
``sim.cancelled_events`` / ``sim.stale_timers`` when ``run()`` returns.
Model code that re-arms a wake timer on every state change (see
:class:`repro.mem.link.FairShareLink`) cancels the stale timer instead
of letting it fire into a version-check no-op.
"""

from repro.sim.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
    open_loop,
)
from repro.sim.calendar import (
    AUTO_PROMOTE_THRESHOLD,
    CALENDAR_BACKENDS,
    TimingWheel,
    default_calendar,
    set_default_calendar,
)
from repro.sim.engine import (
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.fidelity import (
    DECLARED_TOLERANCE,
    FidelityMode,
    FidelityPolicy,
    active_fidelity,
    fidelity,
    install_fidelity,
    uninstall_fidelity,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.stats import Histogram, OnlineStat, TimeWeightedStat
from repro.sim.rng import (
    DEFAULT_SEED,
    BatchedStream,
    install_seed,
    installed_seed,
    make_rng,
    uninstall_seed,
)

__all__ = [
    "DEFAULT_SEED",
    "BatchedStream",
    "install_seed",
    "installed_seed",
    "uninstall_seed",
    "AUTO_PROMOTE_THRESHOLD",
    "CALENDAR_BACKENDS",
    "TimingWheel",
    "default_calendar",
    "set_default_calendar",
    "ArrivalProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "PoissonProcess",
    "open_loop",
    "Condition",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Resource",
    "Store",
    "PriorityStore",
    "Histogram",
    "OnlineStat",
    "TimeWeightedStat",
    "make_rng",
    "DECLARED_TOLERANCE",
    "FidelityMode",
    "FidelityPolicy",
    "active_fidelity",
    "fidelity",
    "install_fidelity",
    "uninstall_fidelity",
]
