"""Discrete-event simulation kernel.

This subpackage provides the event-driven substrate on which every
hardware model in :mod:`repro` runs: a simulated clock, generator-based
processes, and queueing resources.  It is intentionally a small,
self-contained engine in the style of SimPy, implemented from scratch so
the reproduction has no external simulation dependency.

Typical usage::

    from repro.sim import Environment

    env = Environment()

    def producer(env, store):
        for i in range(3):
            yield env.timeout(1.0)
            yield store.put(i)

    ...
    env.run()
"""

from repro.sim.engine import Environment, Event, Interrupt, Process, SimulationError
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.stats import Histogram, OnlineStat, TimeWeightedStat
from repro.sim.rng import DEFAULT_SEED, install_seed, installed_seed, make_rng, uninstall_seed

__all__ = [
    "DEFAULT_SEED",
    "install_seed",
    "installed_seed",
    "uninstall_seed",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Resource",
    "Store",
    "PriorityStore",
    "Histogram",
    "OnlineStat",
    "TimeWeightedStat",
    "make_rng",
]
