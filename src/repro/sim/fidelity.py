"""Fidelity tiers: policy, steady-state detection, and analytical bounds.

At millions of descriptors, per-event simulation is the wall (see
ROADMAP.md).  This module provides the *decision* layer of the tiered
executor: a :class:`FidelityPolicy` selects between full per-event DES
(``des``, the default — byte-identical to not having this module at
all), a cross-validated batched fast path (``auto``), and an aggressive
analytical mode (``analytical``).

The fast path never replaces the DES wholesale.  A closed-loop
microbench run is split into

* a **pilot** region simulated event-by-event — ramp-up (queue fill,
  cold ATC), one steady **window**, and a drain **guard** so the window
  is never contaminated by the tail where refill has stopped — and
* a **batched** region: the remaining homogeneous iterations, advanced
  in one analytical step from the window's measured per-completion gap
  (see :mod:`repro.sim.batch`).

Steady state is *detected*, not assumed: :class:`SteadyStateDetector`
records every pilot completion and the window qualifies only when
completion rate and latency are stable across **two consecutive
windows**.  Alignment matters: at queue depth Q the fair-share port
drains completions in periodic waves of Q (a decelerating cascade that
repeats exactly per refill), so per-gap CV — and even a half-window
split that cuts mid-wave — reports huge drift in perfect steady state.
A window that is an integer multiple of Q compares like with like and
sees the true wave-to-wave drift.  WQ occupancy stability falls out of
the same check: in a closed loop the queue level is a function of the
completion rate, so a drifting occupancy shows up as rate drift.  The extrapolated rate is
additionally cross-checked against :func:`analytical_rate_bound`, a
closed-form upper bound from the bottleneck resource (engine serial
stage, fabric port bandwidth); a measured rate above the bound means
the window was not what we thought, and the caller falls back to full
DES.

Transients always take the DES: fault injection installed, shared
platforms (another workload may perturb steady state), too few
iterations to amortize a pilot.  Install pattern mirrors
``repro.faults.inject``: the runner installs per worker so serial and
``--jobs N`` runs tier identically.
"""

from __future__ import annotations

import contextlib
import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platform imports sim)
    from repro.dsa.opcodes import Opcode
    from repro.platform import Platform

#: Relative tolerance the batched tier is validated to versus full DES
#: (throughput, mean/percentile latency, elapsed time).  The anchor
#: differential suite (``scripts/check_fidelity_equivalence.py``) and
#: ``scripts/bench_fidelity.py`` both gate on this value.
DECLARED_TOLERANCE = 0.05


class FidelityMode(enum.Enum):
    """How aggressively the executor may leave per-event simulation."""

    #: Full per-event DES.  Byte-identical to builds without the tier.
    DES = "des"
    #: Batch steady-state regions, cross-validated: strict drift and
    #: rate-bound gates, fall back to DES whenever they fail.
    AUTO = "auto"
    #: Loose gates + closed-form paths where available; best-effort
    #: accuracy for interactive exploration, never used for anchors.
    ANALYTICAL = "analytical"


@dataclass(frozen=True)
class FidelityPolicy:
    """Frozen knob set for one fidelity mode (see :meth:`for_mode`)."""

    mode: FidelityMode = FidelityMode.DES
    #: Completions to discard before the measurement window (at least
    #: this many; the plan widens it to the queue depth so the pipeline
    #: and ATC are warm).  Deliberately small: a ramp that turns out
    #: too short makes the windows disagree, which the drift gates
    #: catch — the cost of optimism is a fallback, never a wrong batch.
    min_ramp: int = 2
    #: Window bounds: the plan rounds ``min_window`` up to a multiple
    #: of the queue depth (completion waves have period Q — see module
    #: docstring) and refuses to batch past ``window_cap``.
    min_window: int = 3
    window_cap: int = 128
    #: Minimum iterations the batch must replace for the pilot to pay.
    min_batched: int = 8
    #: Max relative drift of the completion rate between the two
    #: consecutive measurement windows for them to count as steady.
    max_rate_drift: float = 0.05
    #: Same for mean latency.
    max_latency_drift: float = 0.10
    #: Max *mean* elementwise gap disagreement between the two windows,
    #: relative to the mean gap.  Window *means* alias when the true
    #: completion period is a multiple kQ of the queue depth (k > 1):
    #: two adjacent Q-sized windows can agree on their sum while both
    #: sample an unrepresentative phase of the longer wave.  Comparing
    #: the wave *shape* gap-by-gap rejects exactly those streams.
    max_wave_drift: float = 0.05
    #: Measured rate may exceed the closed-form bound by at most this
    #: factor (covers the bound's own approximations) before the
    #: window is rejected.
    rate_guard: float = 1.25

    @classmethod
    def for_mode(cls, mode: "FidelityMode | str") -> "FidelityPolicy":
        """Default policy for a mode (accepts the CLI string)."""
        mode = FidelityMode(mode)
        if mode is FidelityMode.ANALYTICAL:
            return cls(
                mode=mode,
                min_ramp=2,
                min_window=2,
                min_batched=4,
                max_rate_drift=0.50,
                max_latency_drift=1.00,
                max_wave_drift=1.00,
                rate_guard=2.0,
            )
        return cls(mode=mode)

    @property
    def batching_enabled(self) -> bool:
        return self.mode is not FidelityMode.DES


# -- closed-loop pilot planning -----------------------------------------------


@dataclass(frozen=True)
class ClosedLoopPlan:
    """Split of one closed-loop run into pilot-DES + batched regions.

    The pilot measures **two** consecutive windows of ``window``
    completions each (drift is their disagreement), so it simulates
    ``ramp + 2·window + guard`` iterations.
    """

    ramp: int     # completions discarded before the windows
    window: int   # completions per measurement window (two are taken)
    guard: int    # trailing completions kept so the windows precede drain
    batched: int  # iterations advanced analytically

    @property
    def pilot_iterations(self) -> int:
        return self.ramp + 2 * self.window + self.guard

    @property
    def window_start(self) -> int:
        """First completion index (0-based) inside the first window."""
        return self.ramp


def plan_closed_loop(
    iterations: int, queue_depth: int, policy: FidelityPolicy
) -> Optional[ClosedLoopPlan]:
    """Plan the pilot/batched split, or None when batching cannot pay.

    The window is ``min_window`` rounded up to a whole number of
    completion waves (period = queue depth); a depth beyond
    ``window_cap`` is not batched at all.  The guard equals the queue
    depth: once fewer than ``queue_depth`` iterations remain, refill
    stops and the loop is draining, so the windows must end at least
    ``queue_depth`` completions before the pilot's last one to measure
    genuine steady state.
    """
    if not policy.batching_enabled:
        return None
    ramp = max(policy.min_ramp, queue_depth)
    waves = max(1, -(-policy.min_window // queue_depth))
    window = queue_depth * waves
    if window > policy.window_cap:
        return None
    guard = queue_depth
    batched = iterations - (ramp + 2 * window + guard)
    if batched < policy.min_batched:
        return None
    return ClosedLoopPlan(ramp=ramp, window=window, guard=guard, batched=batched)


# -- steady-state detection ---------------------------------------------------


@dataclass(frozen=True)
class WorkerWindow:
    """Measured steady region (two windows) of one completion stream."""

    gap_ns: float               # mean inter-completion gap over both windows
    latencies: List[float]      # both windows' per-unit latency samples
    rate_drift: float           # |window-1 gap - window-2 gap| / gap
    latency_drift: float        # |window-1 mean - window-2 mean| / mean
    wave_drift: float           # mean elementwise gap disagreement / gap

    def is_steady(self, policy: FidelityPolicy) -> bool:
        return (
            self.rate_drift <= policy.max_rate_drift
            and self.latency_drift <= policy.max_latency_drift
            and self.wave_drift <= policy.max_wave_drift
        )


class SteadyStateDetector:
    """Per-worker completion recorder for a pilot run.

    The workload's completion path calls :meth:`on_complete` once per
    unit; :meth:`window_of` then extracts the planned window and its
    drift statistics.  Pilots are small (tens of completions per
    worker), so recording everything is cheaper than being clever.
    """

    def __init__(self, n_workers: int):
        self.n_workers = n_workers
        self._times: List[List[float]] = [[] for _ in range(n_workers)]
        self._latencies: List[List[float]] = [[] for _ in range(n_workers)]

    def on_complete(self, worker: int, now: float, latency: float) -> None:
        self._times[worker].append(now)
        self._latencies[worker].append(latency)

    def completions(self, worker: int) -> int:
        return len(self._times[worker])

    def window_of(self, worker: int, start: int, window: int) -> Optional[WorkerWindow]:
        """Stats over two consecutive windows, or None if unformable.

        Compares window ``[start, start+window)`` against
        ``[start+window, start+2·window)``.  Gaps need a timestamp
        *before* the first window completion, so ``start`` must be
        >= 1 (the plan's ramp guarantees it).
        """
        times = self._times[worker]
        lats = self._latencies[worker]
        mid = start + window
        end = start + 2 * window
        if start < 1 or window < 1 or end > len(times):
            return None
        span = times[end - 1] - times[start - 1]
        if span <= 0.0:
            return None
        gap = span / (2 * window)
        first = (times[mid - 1] - times[start - 1]) / window
        second = (times[end - 1] - times[mid - 1]) / window
        rate_drift = abs(first - second) / gap
        # Wave-shape agreement: gap i of window 1 vs gap i of window 2,
        # averaged over the window (the mean, not the max: single-gap
        # jitter within a genuinely periodic cascade is harmless, while
        # a stream periodic at k·Q (k > 1) disagrees on *most* gaps
        # even when the window means alias to equality).
        wave_drift = sum(
            abs((times[start + i] - times[start + i - 1]) - (times[mid + i] - times[mid + i - 1]))
            for i in range(window)
        ) / (window * gap)
        region_lats = lats[start:end]
        mean_lat = sum(region_lats) / len(region_lats)
        if mean_lat > 0.0:
            first_lat = sum(region_lats[:window]) / window
            second_lat = sum(region_lats[window:]) / window
            latency_drift = abs(first_lat - second_lat) / mean_lat
        else:
            latency_drift = 0.0
        return WorkerWindow(
            gap_ns=gap,
            latencies=region_lats,
            rate_drift=rate_drift,
            latency_drift=latency_drift,
            wave_drift=wave_drift,
        )


# -- closed-form bounds -------------------------------------------------------


def estimated_port_bytes(opcode: "Opcode", size: int) -> int:
    """Fabric-port demand of one descriptor (max of the two directions).

    Mirrors :func:`repro.dsa.engine.io_demand` shape-wise without
    resolving buffers; used only for the rate-bound cross-check, never
    for accounting.
    """
    from repro.dsa.opcodes import Opcode

    reads = size if opcode.reads_source else 0
    if opcode.dual_source:
        reads += size
    writes = size if opcode.writes_destination else 0
    if opcode is Opcode.DUALCAST:
        writes += size
    return max(reads, writes)


def analytical_rate_bound(platform: "Platform", opcode: "Opcode", size: int) -> float:
    """Upper bound on aggregate descriptors/ns from the bottleneck resource.

    Two candidate bottlenecks, the binding one wins:

    * the serial per-descriptor stage (arbiter dispatch + PE descriptor
      unit), parallel across all configured engines;
    * the per-device fabric port, shared fairly, at the descriptor's
      port-byte demand.

    It deliberately ignores ATC misses, IOMMU walks, and memory-tier
    latency — those only slow descriptors down, so the true rate can
    only be *below* this bound.  Returns ``inf`` when no device is
    registered (nothing to bound).
    """
    serial_rate = 0.0
    port_rate = 0.0
    port_bytes = estimated_port_bytes(opcode, size)
    devices = platform.driver.devices.values()
    for device in devices:
        timing = device.timing
        n_engines = sum(len(group.engines) for group in device.groups.values())
        serial_ns = timing.dispatch_ns + timing.pe_setup_ns
        if serial_ns > 0:
            serial_rate += n_engines / serial_ns
        if port_bytes > 0:
            port_rate += timing.fabric_bandwidth / port_bytes
    if not serial_rate:
        return float("inf")
    if port_bytes > 0:
        return min(serial_rate, port_rate)
    return serial_rate


# -- install pattern ----------------------------------------------------------

#: Session-wide policy; see :func:`install_fidelity`.
_installed: Optional[FidelityPolicy] = None


def install_fidelity(policy_or_mode: "FidelityPolicy | FidelityMode | str") -> FidelityPolicy:
    """Make a fidelity policy active for subsequent model runs.

    Accepts a :class:`FidelityPolicy`, a :class:`FidelityMode`, or the
    CLI mode string.  Mirrors ``faults.install_injector``: the parallel
    runner re-installs per worker, so serial and ``--jobs N`` runs tier
    identically.  Installing ``des`` is allowed and explicit — it
    disables batching even if a caller later checks only for presence.
    """
    global _installed
    if isinstance(policy_or_mode, FidelityPolicy):
        policy = policy_or_mode
    elif isinstance(policy_or_mode, (FidelityMode, str)):
        policy = FidelityPolicy.for_mode(policy_or_mode)
    else:
        raise TypeError(
            "install_fidelity takes a FidelityPolicy, FidelityMode, or mode "
            f"string, got {type(policy_or_mode).__name__}"
        )
    _installed = policy
    return policy


def uninstall_fidelity() -> None:
    global _installed
    _installed = None


def active_fidelity() -> Optional[FidelityPolicy]:
    """The policy workloads should consult, or None when batching is off.

    Returns ``None`` both when nothing is installed and when the
    installed mode is ``des``, so call sites need a single check and
    the default stays byte-identical to a build without the tier.
    """
    if _installed is None or not _installed.batching_enabled:
        return None
    return _installed


@contextlib.contextmanager
def fidelity(policy_or_mode: "FidelityPolicy | FidelityMode | str") -> Iterator[FidelityPolicy]:
    """Scoped install: restores whatever was active before on exit."""
    global _installed
    previous = _installed
    policy = install_fidelity(policy_or_mode)
    try:
        yield policy
    finally:
        _installed = previous
