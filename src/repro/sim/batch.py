"""Analytical bulk advance of a detected steady-state region.

Given a pilot run's :class:`~repro.sim.fidelity.SteadyStateDetector`
record and a :class:`~repro.sim.fidelity.ClosedLoopPlan`, this module
decides whether the batched region may be advanced in one step and, if
so, with what synthesized observables:

* each worker's remaining iterations complete at the window's measured
  per-completion gap — the region's elapsed time is the slowest
  worker's ``batched × gap``;
* latency samples are the window's *actual observed values cycled*, not
  a fitted distribution — every synthesized sample is one the DES
  really produced, so exact-histogram percentiles land inside the
  window's own spread and a :class:`~repro.obs.streaming.StreamingHistogram`
  fed the same stream keeps its 1% envelope;
* the caller scales core cycle accounting and device counters by the
  same completion ratio (see ``workloads.microbench``).

Rejection is the common, safe outcome: any worker whose window is
missing or drifting, or an aggregate rate above the closed-form bound,
returns ``None`` and the caller re-runs the full DES.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.fidelity import ClosedLoopPlan, FidelityPolicy, SteadyStateDetector


@dataclass(frozen=True)
class WorkerExtrapolation:
    """One worker's share of the batched region."""

    worker: int
    units: int                   # closed-loop units advanced analytically
    gap_ns: float                # steady per-completion gap
    latencies: List[float]       # window samples to cycle for synthesis

    @property
    def elapsed_ns(self) -> float:
        return self.units * self.gap_ns


@dataclass(frozen=True)
class BatchAdvance:
    """The whole batched region, ready to apply to a pilot result."""

    workers: List[WorkerExtrapolation]
    #: Wall advance of the region: the slowest worker finishes last.
    extra_elapsed_ns: float

    @property
    def synthesized_units(self) -> int:
        return sum(w.units for w in self.workers)


def cycle_samples(samples: Sequence[float], count: int) -> List[float]:
    """``count`` values cycled from ``samples`` in order.

    Cycling (rather than repeating the mean) preserves the window's
    spread, so min/max/percentiles of the synthesized stream stay
    within the observed envelope.
    """
    if not samples:
        return []
    n = len(samples)
    repeats, tail = divmod(count, n)
    return list(samples) * repeats + list(samples[:tail])


def extrapolate_closed_loop(
    plan: ClosedLoopPlan,
    detector: SteadyStateDetector,
    policy: FidelityPolicy,
    rate_bound: Optional[float] = None,
) -> Optional[BatchAdvance]:
    """Extrapolate the batched region, or None when any gate fails.

    Gates (every worker must pass):

    * the window exists and spans positive time;
    * rate and latency drift within the policy's thresholds;
    * aggregate measured rate ≤ ``rate_bound × policy.rate_guard``
      (when a bound is supplied) — a window "faster than physics"
      means the detector measured something other than steady state.
    """
    workers: List[WorkerExtrapolation] = []
    total_rate = 0.0
    for worker in range(detector.n_workers):
        window = detector.window_of(worker, plan.window_start, plan.window)
        if window is None or not window.is_steady(policy):
            return None
        workers.append(
            WorkerExtrapolation(
                worker=worker,
                units=plan.batched,
                gap_ns=window.gap_ns,
                latencies=window.latencies,
            )
        )
        total_rate += 1.0 / window.gap_ns
    if not workers:
        return None
    if rate_bound is not None and total_rate > rate_bound * policy.rate_guard:
        return None
    return BatchAdvance(
        workers=workers,
        extra_elapsed_ns=max(w.elapsed_ns for w in workers),
    )
