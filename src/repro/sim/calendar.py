"""Hierarchical timing-wheel calendar: the engine's high-pending-count backend.

The engine's default calendar is a binary heap of ``(when, priority,
seq, event)`` entries — optimal at the few-thousand pending timers of a
closed-loop microbench, but every push and pop costs ``O(log n)`` tuple
comparisons, and at the millions of *concurrent* pending timers of an
open-loop traffic run the log factor plus per-comparison interpreter
overhead dominates the whole simulation.

:class:`TimingWheel` replaces the heap with a two-level timing wheel
plus a far-future overflow, giving amortized O(1) schedule and pop:

* **Level 0 (fine)** — buckets of width ``tick`` simulated nanoseconds,
  keyed by absolute slot index ``floor(when / tick)``.  A push is a
  dict lookup and a list append; a pop drains the minimum-slot bucket
  in fully sorted ``(when, priority, seq)`` order, so the wheel pops in
  *exactly* the order the heap would (FIFO tie-break included).
* **Level 1 (coarse)** — buckets of ``SLOTS_PER_LEVEL`` fine ticks.
  When the fine level drains past a coarse boundary, the next coarse
  bucket cascades: its entries are re-binned into fine slots in one
  O(bucket) pass.  Each entry cascades at most once.
* **Far overflow** — entries beyond the coarse horizon (``SLOTS_PER_
  LEVEL**2`` ticks ahead) wait in a flat list and re-bin lazily as the
  horizon advances.  With a calibrated tick this level is almost never
  touched.

Non-empty slots are tracked in per-level min-heaps of slot *indices* —
integers, and at most one entry per occupied slot — so finding the
next bucket never scans empty slots and never approaches the size of
the event heap it replaces.

The tick is calibrated from the first observed entries (span divided
by pending count times a target bucket occupancy), which matches the
two ways a wheel comes to exist: built empty by ``--calendar wheel``
(calibrates on the first pop, usually after the experiment preloaded
its arrival schedule) or promoted from a heap by ``--calendar auto``
(calibrates over the tens of thousands of entries that triggered the
promotion).

Backend selection lives here too (:func:`set_default_calendar`), so the
CLI and the parallel runner can install a process-wide default exactly
like the histogram backend — ``heap`` (the byte-identical default),
``wheel``, or ``auto`` (start on the heap, promote past
:data:`AUTO_PROMOTE_THRESHOLD` pending entries).
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

#: Calendar backends selectable via ``--calendar`` / ``Environment(calendar=)``.
CALENDAR_BACKENDS = ("heap", "wheel", "auto")

#: ``auto`` promotes a heap calendar to a wheel once this many entries
#: are pending at once.  Closed-loop experiment sweeps stay far below
#: it (they run at queue-depth pending counts), so ``auto`` is a no-op
#: for the paper's figures; open-loop arrival preloads blow past it.
AUTO_PROMOTE_THRESHOLD = 65536

#: Fine slots per coarse slot.  Deliberately huge: with a calibrated
#: tick the fine level alone covers ~``SLOTS_PER_LEVEL * TARGET_
#: OCCUPANCY`` pending entries (tens of millions), so the coarse and
#: far levels are a safety valve against pathological spans (a handful
#: of timers parked eons ahead of a dense cluster), not a tax on the
#: common case — a cascade touches every entry a second time, and the
#: wheel wins precisely by touching each entry once.
SLOTS_PER_LEVEL = 1 << 20

#: Tick calibration aims for this many entries per fine bucket.
TARGET_OCCUPANCY = 16.0

#: Entries buffered before the tick self-calibrates (a pop calibrates
#: earlier regardless, with whatever has been seen).
CALIBRATE_AT = 8192

_default_backend = "heap"


def set_default_calendar(backend: str) -> None:
    """Install the process-wide default for ``Environment(calendar=None)``.

    The CLI applies ``--calendar`` here in the parent, and the parallel
    runner re-applies it inside every worker process (module globals do
    not cross the fork/spawn boundary).
    """
    global _default_backend
    if backend not in CALENDAR_BACKENDS:
        raise ValueError(
            f"unknown calendar backend {backend!r}; choose from {CALENDAR_BACKENDS}"
        )
    _default_backend = backend


def default_calendar() -> str:
    """The backend ``Environment(calendar=None)`` resolves to right now."""
    return _default_backend


#: Calendar entry shape shared with the engine's heap path.
Entry = Tuple[float, int, int, object]


class TimingWheel:
    """Two-level timing wheel with far overflow; pops in heap order.

    Entries are the engine's ``(when, priority, seq, event)`` tuples.
    ``push`` is amortized O(1); ``pop_due`` returns entries in exact
    ``(when, priority, seq)`` order, the same total order a binary heap
    of the same tuples produces.  Cancelled-entry discard stays the
    engine's job — the wheel only stores and orders.
    """

    __slots__ = (
        "_tick",
        "_inv_tick",
        "_target",
        "_pre",
        "_count",
        "_fine",
        "_fine_slots",
        "_coarse",
        "_coarse_slots",
        "_far",
        "_coarse_base",
        "_far_base",
        "_cur_bucket",
        "_cur_pos",
        "_cur_slot",
    )

    def __init__(self, tick: Optional[float] = None, target_occupancy: float = TARGET_OCCUPANCY):
        if tick is not None and tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if target_occupancy <= 0:
            raise ValueError(f"target occupancy must be positive, got {target_occupancy}")
        self._tick = tick
        # Slot indexing multiplies by the cached reciprocal instead of
        # dividing — same monotone when->slot map as long as every site
        # uses it, and measurably cheaper in the per-push hot path.
        self._inv_tick = (1.0 / tick) if tick is not None else None
        self._target = target_occupancy
        #: Entries buffered before calibration picks a tick.
        self._pre: List[Entry] = []
        self._count = 0
        #: Level 0: absolute fine slot -> unsorted entry list.
        self._fine: dict = {}
        self._fine_slots: List[int] = []  # min-heap of occupied fine slots
        #: Level 1: absolute coarse slot -> unsorted entry list.
        self._coarse: dict = {}
        self._coarse_slots: List[int] = []
        #: Beyond the coarse horizon; re-binned lazily.
        self._far: List[Entry] = []
        #: Fine slots < _coarse_base live at level 0; coarse slots <
        #: _far_base live at level 1.  Both advance monotonically.  An
        #: explicit tick skips calibration entirely, so set the windows
        #: the way _calibrate would at base 0.
        if tick is not None:
            self._coarse_base = SLOTS_PER_LEVEL
            self._far_base = SLOTS_PER_LEVEL + 1
        else:
            self._coarse_base = 0
            self._far_base = 0
        #: The bucket currently being drained, sorted, consumed by index
        #: (popped positions are cleared to drop the tuple reference).
        self._cur_bucket: Optional[List] = None
        self._cur_pos = 0
        self._cur_slot = -1

    def __len__(self) -> int:
        return self._count

    @property
    def tick(self) -> Optional[float]:
        """Calibrated bucket width in simulated time (None before use)."""
        return self._tick

    # -- calibration -----------------------------------------------------
    def _calibrate(self) -> None:
        """Pick a tick from the buffered entries and bin them."""
        entries = self._pre
        if self._tick is None:
            if entries:
                times = [entry[0] for entry in entries]
                span = max(times) - min(times)
                buckets = max(1.0, len(entries) / self._target)
                self._tick = (span / buckets) if span > 0 else 1.0
            else:
                self._tick = 1.0
        self._inv_tick = 1.0 / self._tick
        inv = self._inv_tick
        if entries:
            base = int(min(entry[0] for entry in entries) * inv)
        else:
            base = 0
        # First window: everything within SLOTS_PER_LEVEL ticks of the
        # earliest entry is fine-binned; the horizon advances by whole
        # coarse slots from there.
        self._coarse_base = (base // SLOTS_PER_LEVEL + 1) * SLOTS_PER_LEVEL
        self._far_base = self._coarse_base // SLOTS_PER_LEVEL + SLOTS_PER_LEVEL
        self._pre = []
        for entry in entries:
            self._place(entry)

    def _place(self, entry: Entry) -> None:
        """Bin one entry into the correct level (tick already set)."""
        slot = int(entry[0] * self._inv_tick)
        if slot < self._coarse_base:
            bucket = self._fine.get(slot)
            if bucket is None:
                self._fine[slot] = [entry]
                heappush(self._fine_slots, slot)
            else:
                bucket.append(entry)
            return
        coarse = slot // SLOTS_PER_LEVEL
        if coarse < self._far_base:
            bucket = self._coarse.get(coarse)
            if bucket is None:
                self._coarse[coarse] = [entry]
                heappush(self._coarse_slots, coarse)
            else:
                bucket.append(entry)
            return
        self._far.append(entry)

    # -- writes ----------------------------------------------------------
    def push(self, entry: Entry) -> None:
        """Add one entry; amortized O(1).

        The body is flat on purpose — this is one of the two per-event
        costs of the whole backend.  ``_inv_tick is None`` doubles as
        the not-yet-calibrated sentinel, the common fine-level bin is
        inlined, and only coarse/far routing drops to :meth:`_place`.
        """
        self._count += 1
        inv = self._inv_tick
        if inv is None:
            self._pre.append(entry)
            if len(self._pre) >= CALIBRATE_AT:
                self._calibrate()
            return
        slot = int(entry[0] * inv)
        if slot == self._cur_slot:
            # Scheduling into the bucket being drained (a delay-zero
            # event, a same-tick re-arm): insert in sorted position at
            # or after the drain cursor.  Entries behind the cursor were
            # already popped and compare no greater than this one, so
            # ``lo=_cur_pos`` is both safe and required — the slots
            # behind the cursor are cleared to None.  (``_cur_slot`` is
            # -1 whenever no bucket is being drained, and real slots are
            # never negative, so no bucket check is needed.)
            insort(self._cur_bucket, entry, lo=self._cur_pos)
            return
        if slot < self._coarse_base:
            bucket = self._fine.get(slot)
            if bucket is None:
                self._fine[slot] = [entry]
                heappush(self._fine_slots, slot)
            else:
                bucket.append(entry)
            return
        self._place(entry)

    # -- reads -----------------------------------------------------------
    def _materialize_next(self) -> bool:
        """Sort the next non-empty bucket as the current one.

        Returns False when the wheel is empty.  Cascades coarse and far
        levels down as their boundaries are reached.
        """
        while True:
            slots = self._fine_slots
            fine = self._fine
            if slots:
                slot = heappop(slots)
                bucket = fine.pop(slot)
                bucket.sort()
                self._cur_slot = slot
                self._cur_bucket = bucket
                self._cur_pos = 0
                return True
            if self._coarse_slots:
                # Cascade one coarse bucket into fine slots.  The fine
                # window advances to this coarse span; pushes landing
                # before it (delay-zero events at the current time)
                # still fine-bin correctly because routing compares
                # against _coarse_base, not a window start.
                coarse = heappop(self._coarse_slots)
                bucket = self._coarse.pop(coarse)
                self._coarse_base = (coarse + 1) * SLOTS_PER_LEVEL
                for entry in bucket:
                    self._place(entry)
                continue
            if self._far:
                # Advance the far horizon one level-1 span and re-bin
                # what fell inside it; repeat if the far list was
                # entirely beyond even that.
                far = self._far
                inv = self._inv_tick
                base = min(int(e[0] * inv) // SLOTS_PER_LEVEL for e in far)
                self._far_base = base + SLOTS_PER_LEVEL
                self._coarse_base = base * SLOTS_PER_LEVEL
                self._far = []
                for entry in far:
                    self._place(entry)
                continue
            self._cur_bucket = None
            self._cur_slot = -1
            return False

    def peek(self) -> Optional[Entry]:
        """The next entry in pop order, without consuming it."""
        bucket = self._cur_bucket
        if bucket is None or self._cur_pos >= len(bucket):
            if self._tick is None:
                self._calibrate()
            if not self._materialize_next():
                return None
            bucket = self._cur_bucket
        return bucket[self._cur_pos]

    def pop_due(self, limit: float) -> Optional[Entry]:
        """Consume and return the next entry if its time is <= ``limit``.

        Returns None when the wheel is empty or the head entry (live or
        cancelled — the engine's ``run(until=...)`` contract inspects
        the head regardless) lies beyond ``limit``.
        """
        bucket = self._cur_bucket
        pos = self._cur_pos
        if bucket is None or pos >= len(bucket):
            if self._tick is None:
                self._calibrate()
            if not self._materialize_next():
                return None
            bucket = self._cur_bucket
            pos = 0
        entry = bucket[pos]
        if entry[0] > limit:
            return None
        # Clear the consumed slot so the entry tuple (and through it the
        # event) drops its last calendar reference — the engine's
        # timeout free-list relies on refcounts to prove reusability.
        bucket[pos] = None
        self._cur_pos = pos + 1
        self._count -= 1
        return entry

    # -- maintenance -----------------------------------------------------
    def compact(self, is_dead: Callable[[Entry], bool]) -> int:
        """Drop every entry for which ``is_dead`` holds; returns count.

        One O(n) pass over every level, mirroring the heap backend's
        compaction: bucket lists are filtered in place, emptied slots
        leave the slot heaps lazily (checked on materialize), and the
        current drain bucket keeps its consumed prefix untouched.
        """
        removed = 0
        if self._pre:
            live = [entry for entry in self._pre if not is_dead(entry)]
            removed += len(self._pre) - len(live)
            self._pre = live
        for level in (self._fine, self._coarse):
            for slot in list(level):
                bucket = level[slot]
                live = [entry for entry in bucket if not is_dead(entry)]
                if len(live) != len(bucket):
                    removed += len(bucket) - len(live)
                    if live:
                        level[slot] = live
                    else:
                        del level[slot]
        if self._fine_slots:
            self._fine_slots = [s for s in self._fine_slots if s in self._fine]
            self._fine_slots.sort()
        if self._coarse_slots:
            self._coarse_slots = [s for s in self._coarse_slots if s in self._coarse]
            self._coarse_slots.sort()
        if self._far:
            live = [entry for entry in self._far if not is_dead(entry)]
            removed += len(self._far) - len(live)
            self._far = live
        bucket = self._cur_bucket
        if bucket is not None:
            pos = self._cur_pos
            tail = [entry for entry in bucket[pos:] if not is_dead(entry)]
            removed += (len(bucket) - pos) - len(tail)
            del bucket[pos:]
            bucket.extend(tail)
        self._count -= removed
        return removed
