"""Vectorized open-loop arrival generators.

Closed-loop experiments (the paper's figures) re-submit the moment a
descriptor completes, so they never have more than queue-depth timers
pending.  Open-loop traffic — the ROADMAP's datacenter serving mode —
instead schedules work at instants drawn from an arrival process,
independent of completions, which is exactly the millions-of-pending-
timers regime the timing-wheel calendar exists for.

Two processes are provided, both parameterized by ``rate`` in events
per simulated nanosecond (the repo-wide time unit):

* :class:`PoissonProcess` — exponential interarrival gaps, the
  memoryless baseline.
* :class:`BurstyProcess` — two-phase hyperexponential (H2) gaps fit by
  the balanced-means rule to a target squared coefficient of variation
  ``cv2 > 1``: same mean rate, heavy bursts interleaved with long idle
  gaps.  ``cv2 == 1`` delegates to the exact Poisson gap stream (same
  derived generator, same draws — no H2 fit round-off).
* :class:`DiurnalProcess` — a Poisson process under a sinusoidal rate
  envelope: unit-exponential draws scaled by the instantaneous rate,
  for tenants whose load breathes over a period (day/night traffic).

Gaps are drawn in vectorized numpy batches from streams ``derive``\\ d
off the installed seed, and handed out as scalars with an index
increment (amortized O(1) per arrival, like
:class:`~repro.sim.rng.BatchedStream`).  Draws are *batch-size
invariant*: each distribution pulls from its own derived child stream,
so ``times(1_000_000)`` in one call, the same million via ``next_gap``
one at a time, or any mix, produce identical instants — which is what
makes serial and ``--jobs N`` runs draw-for-draw identical.

:func:`open_loop` is the driver: a process that walks an arrival
process and invokes a handler per arrival, keeping exactly one pending
timer regardless of horizon length.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Environment, Interrupt, Process
from repro.sim.rng import DEFAULT_BATCH, derive, make_rng

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "open_loop",
]


class ArrivalProcess:
    """Base class: batched gap generation + scalar hand-out.

    Subclasses implement :meth:`gaps`, drawing ``n`` interarrival gaps
    in one vectorized pass; the base class provides the scalar cursor
    (:meth:`next_gap`) and absolute-instant helper (:meth:`times`).
    """

    __slots__ = ("rate", "batch", "_buf", "_pos")

    def __init__(self, rate: float, batch: int = DEFAULT_BATCH):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.rate = rate
        self.batch = batch
        self._buf: Optional[np.ndarray] = None
        self._pos = 0

    def gaps(self, n: int) -> np.ndarray:
        """``n`` interarrival gaps (ns), vectorized."""
        raise NotImplementedError

    def next_gap(self) -> float:
        """One scalar gap; refills from :meth:`gaps` in batches."""
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            buf = self._buf = self.gaps(self.batch)
            self._pos = 0
        value = buf[self._pos]
        self._pos += 1
        return float(value)

    def times(self, n: int, start: float = 0.0) -> np.ndarray:
        """``n`` absolute arrival instants from ``start`` (exclusive).

        Continues the stream: instants follow any gaps already handed
        out, so mixing ``times`` and ``next_gap`` never replays or
        skips a draw.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        buf = self._buf
        leftover = 0 if buf is None else len(buf) - self._pos
        if leftover >= n:
            take = buf[self._pos : self._pos + n]
            self._pos += n
        else:
            fresh = self.gaps(n - leftover)
            take = fresh if leftover == 0 else np.concatenate([buf[self._pos :], fresh])
            self._buf = None
            self._pos = 0
        return start + np.cumsum(take)


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    __slots__ = ("_rng",)

    def __init__(self, rate: float, rng=None, stream: int = 0, batch: int = DEFAULT_BATCH):
        super().__init__(rate, batch)
        self._rng = derive(make_rng(rng), stream)

    def gaps(self, n: int) -> np.ndarray:
        return self._rng.exponential(1.0 / self.rate, size=n)


class BurstyProcess(ArrivalProcess):
    """Hyperexponential (H2) arrivals: same mean rate, bursty gaps.

    Balanced-means fit for a target squared coefficient of variation
    ``cv2 >= 1``::

        p  = (1 + sqrt((cv2 - 1) / (cv2 + 1))) / 2
        l1 = 2 p rate          # the fast (burst) phase
        l2 = 2 (1 - p) rate    # the slow (idle) phase

    Each gap picks the fast phase with probability ``p``; the mean is
    exactly ``1/rate`` and the variance hits the requested ``cv2``.
    The phase selector and the two exponentials each draw from their
    own derived child stream, which is what keeps the generator
    batch-size invariant (one ``where`` over three aligned arrays).

    ``cv2 == 1`` degenerates to Poisson *exactly*: the root stream
    itself draws plain exponential gaps, producing the very same values
    as ``PoissonProcess(rate, rng, stream)`` rather than an H2 fit that
    merely matches the first two moments.  ``cv2 < 1`` (including NaN)
    raises — the balanced-means fit would produce phase probabilities
    outside [0, 1].
    """

    __slots__ = ("cv2", "_p", "_scale_fast", "_scale_slow", "_rng_u", "_rng_fast", "_rng_slow")

    def __init__(
        self,
        rate: float,
        cv2: float = 4.0,
        rng=None,
        stream: int = 0,
        batch: int = DEFAULT_BATCH,
    ):
        super().__init__(rate, batch)
        # "not >=" (rather than "<") so NaN fails loudly too instead of
        # flowing into sqrt and producing NaN phase probabilities.
        if not cv2 >= 1.0:
            raise ValueError(f"H2 requires cv2 >= 1 (got {cv2}); use PoissonProcess below that")
        self.cv2 = cv2
        root = derive(make_rng(rng), stream)
        if cv2 == 1.0:
            # Exact Poisson delegation: same root generator, same draws
            # as PoissonProcess — the fast/slow children stay unused.
            self._p = 1.0
            self._scale_fast = self._scale_slow = 1.0 / rate
            self._rng_u = root
            self._rng_fast = self._rng_slow = None
            return
        p = 0.5 * (1.0 + np.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        self._p = p
        self._scale_fast = 1.0 / (2.0 * p * rate)
        self._scale_slow = 1.0 / (2.0 * (1.0 - p) * rate)
        self._rng_u = derive(root, 0)
        self._rng_fast = derive(root, 1)
        self._rng_slow = derive(root, 2)

    def gaps(self, n: int) -> np.ndarray:
        if self._rng_fast is None:  # cv2 == 1: the exact Poisson stream
            return self._rng_u.exponential(self._scale_fast, size=n)
        u = self._rng_u.uniform(size=n)
        fast = self._rng_fast.exponential(self._scale_fast, size=n)
        slow = self._rng_slow.exponential(self._scale_slow, size=n)
        return np.where(u < self._p, fast, slow)


class DiurnalProcess(ArrivalProcess):
    """Poisson arrivals under a sinusoidal rate envelope.

    The instantaneous rate is::

        r(t) = rate * (1 + amplitude * sin(2*pi*t/period_ns + phase))

    Gaps are unit exponentials scaled by ``1/r(t)`` at the cursor — the
    standard scaled-gap approximation to an inhomogeneous Poisson
    process, exact in the limit of gaps short against the period (the
    serving-mode regime: microsecond gaps, millisecond-plus periods).

    ``amplitude`` must stay below 1 so the rate never reaches zero.
    Batch-size invariance holds because the unit draws come from one
    derived stream in order and the envelope cursor advances once per
    gap regardless of how the draws are batched.
    """

    __slots__ = ("period_ns", "amplitude", "phase", "_cursor", "_rng")

    def __init__(
        self,
        rate: float,
        period_ns: float,
        amplitude: float = 0.5,
        phase: float = 0.0,
        rng=None,
        stream: int = 0,
        batch: int = DEFAULT_BATCH,
    ):
        super().__init__(rate, batch)
        if period_ns <= 0:
            raise ValueError(f"period_ns must be positive, got {period_ns}")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1) so the rate stays positive, got {amplitude}"
            )
        self.period_ns = period_ns
        self.amplitude = amplitude
        self.phase = phase
        self._cursor = 0.0
        self._rng = derive(make_rng(rng), stream)

    def rate_at(self, t: float) -> float:
        """The envelope's instantaneous rate at absolute time ``t``."""
        return self.rate * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * t / self.period_ns + self.phase)
        )

    def gaps(self, n: int) -> np.ndarray:
        units = self._rng.exponential(1.0, size=n)
        out = np.empty(n)
        cursor = self._cursor
        two_pi_over_period = 2.0 * np.pi / self.period_ns
        rate, amplitude, phase = self.rate, self.amplitude, self.phase
        for i in range(n):
            r = rate * (1.0 + amplitude * np.sin(two_pi_over_period * cursor + phase))
            gap = units[i] / r
            out[i] = gap
            cursor += gap
        self._cursor = cursor
        return out


def open_loop(
    env: Environment,
    source: ArrivalProcess,
    handler: Callable[[int, float], object],
    count: Optional[int] = None,
    until: Optional[float] = None,
    start: float = 0.0,
) -> Process:
    """Drive ``handler(index, now)`` at each arrival instant.

    Runs as an engine process holding exactly one pending timer, so an
    arbitrarily long horizon costs O(1) calendar space from the driver
    itself (the *handled* work is what piles up — that is the model's
    business).  Stops after ``count`` arrivals, or at the first arrival
    strictly past ``until`` (an arrival landing *exactly* on ``until``
    is still delivered), whichever comes first; the process event's
    value is the number of arrivals delivered.

    Interrupting the driver (:meth:`~repro.sim.engine.Process.interrupt`,
    e.g. from a handler that decides to stop the flood mid-run) is a
    clean stop, not a failure: the pending timer is abandoned and the
    process finishes with the arrivals delivered so far.
    """
    if count is None and until is None:
        raise ValueError("open_loop needs a stopping rule: count and/or until")

    def _driver():
        delivered = 0
        try:
            if start > 0.0:
                yield env.timeout(start)
            while count is None or delivered < count:
                gap = source.next_gap()
                if until is not None and env.now + gap > until:
                    break
                yield env.timeout(gap)
                handler(delivered, env.now)
                delivered += 1
        except Interrupt:
            pass
        return delivered

    return env.process(_driver(), name="open_loop")
