"""Vectorized open-loop arrival generators.

Closed-loop experiments (the paper's figures) re-submit the moment a
descriptor completes, so they never have more than queue-depth timers
pending.  Open-loop traffic — the ROADMAP's datacenter serving mode —
instead schedules work at instants drawn from an arrival process,
independent of completions, which is exactly the millions-of-pending-
timers regime the timing-wheel calendar exists for.

Two processes are provided, both parameterized by ``rate`` in events
per simulated nanosecond (the repo-wide time unit):

* :class:`PoissonProcess` — exponential interarrival gaps, the
  memoryless baseline.
* :class:`BurstyProcess` — two-phase hyperexponential (H2) gaps fit by
  the balanced-means rule to a target squared coefficient of variation
  ``cv2 > 1``: same mean rate, heavy bursts interleaved with long idle
  gaps.  ``cv2 == 1`` degenerates to Poisson.

Gaps are drawn in vectorized numpy batches from streams ``derive``\\ d
off the installed seed, and handed out as scalars with an index
increment (amortized O(1) per arrival, like
:class:`~repro.sim.rng.BatchedStream`).  Draws are *batch-size
invariant*: each distribution pulls from its own derived child stream,
so ``times(1_000_000)`` in one call, the same million via ``next_gap``
one at a time, or any mix, produce identical instants — which is what
makes serial and ``--jobs N`` runs draw-for-draw identical.

:func:`open_loop` is the driver: a process that walks an arrival
process and invokes a handler per arrival, keeping exactly one pending
timer regardless of horizon length.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Environment, Process
from repro.sim.rng import DEFAULT_BATCH, derive, make_rng

__all__ = ["ArrivalProcess", "PoissonProcess", "BurstyProcess", "open_loop"]


class ArrivalProcess:
    """Base class: batched gap generation + scalar hand-out.

    Subclasses implement :meth:`gaps`, drawing ``n`` interarrival gaps
    in one vectorized pass; the base class provides the scalar cursor
    (:meth:`next_gap`) and absolute-instant helper (:meth:`times`).
    """

    __slots__ = ("rate", "batch", "_buf", "_pos")

    def __init__(self, rate: float, batch: int = DEFAULT_BATCH):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.rate = rate
        self.batch = batch
        self._buf: Optional[np.ndarray] = None
        self._pos = 0

    def gaps(self, n: int) -> np.ndarray:
        """``n`` interarrival gaps (ns), vectorized."""
        raise NotImplementedError

    def next_gap(self) -> float:
        """One scalar gap; refills from :meth:`gaps` in batches."""
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            buf = self._buf = self.gaps(self.batch)
            self._pos = 0
        value = buf[self._pos]
        self._pos += 1
        return float(value)

    def times(self, n: int, start: float = 0.0) -> np.ndarray:
        """``n`` absolute arrival instants from ``start`` (exclusive).

        Continues the stream: instants follow any gaps already handed
        out, so mixing ``times`` and ``next_gap`` never replays or
        skips a draw.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        buf = self._buf
        leftover = 0 if buf is None else len(buf) - self._pos
        if leftover >= n:
            take = buf[self._pos : self._pos + n]
            self._pos += n
        else:
            fresh = self.gaps(n - leftover)
            take = fresh if leftover == 0 else np.concatenate([buf[self._pos :], fresh])
            self._buf = None
            self._pos = 0
        return start + np.cumsum(take)


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    __slots__ = ("_rng",)

    def __init__(self, rate: float, rng=None, stream: int = 0, batch: int = DEFAULT_BATCH):
        super().__init__(rate, batch)
        self._rng = derive(make_rng(rng), stream)

    def gaps(self, n: int) -> np.ndarray:
        return self._rng.exponential(1.0 / self.rate, size=n)


class BurstyProcess(ArrivalProcess):
    """Hyperexponential (H2) arrivals: same mean rate, bursty gaps.

    Balanced-means fit for a target squared coefficient of variation
    ``cv2 >= 1``::

        p  = (1 + sqrt((cv2 - 1) / (cv2 + 1))) / 2
        l1 = 2 p rate          # the fast (burst) phase
        l2 = 2 (1 - p) rate    # the slow (idle) phase

    Each gap picks the fast phase with probability ``p``; the mean is
    exactly ``1/rate`` and the variance hits the requested ``cv2``.
    The phase selector and the two exponentials each draw from their
    own derived child stream, which is what keeps the generator
    batch-size invariant (one ``where`` over three aligned arrays).
    """

    __slots__ = ("cv2", "_p", "_scale_fast", "_scale_slow", "_rng_u", "_rng_fast", "_rng_slow")

    def __init__(
        self,
        rate: float,
        cv2: float = 4.0,
        rng=None,
        stream: int = 0,
        batch: int = DEFAULT_BATCH,
    ):
        super().__init__(rate, batch)
        if cv2 < 1.0:
            raise ValueError(f"H2 requires cv2 >= 1 (got {cv2}); use PoissonProcess below that")
        self.cv2 = cv2
        p = 0.5 * (1.0 + np.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        self._p = p
        self._scale_fast = 1.0 / (2.0 * p * rate)
        self._scale_slow = 1.0 / (2.0 * (1.0 - p) * rate)
        root = derive(make_rng(rng), stream)
        self._rng_u = derive(root, 0)
        self._rng_fast = derive(root, 1)
        self._rng_slow = derive(root, 2)

    def gaps(self, n: int) -> np.ndarray:
        u = self._rng_u.uniform(size=n)
        fast = self._rng_fast.exponential(self._scale_fast, size=n)
        slow = self._rng_slow.exponential(self._scale_slow, size=n)
        return np.where(u < self._p, fast, slow)


def open_loop(
    env: Environment,
    source: ArrivalProcess,
    handler: Callable[[int, float], object],
    count: Optional[int] = None,
    until: Optional[float] = None,
    start: float = 0.0,
) -> Process:
    """Drive ``handler(index, now)`` at each arrival instant.

    Runs as an engine process holding exactly one pending timer, so an
    arbitrarily long horizon costs O(1) calendar space from the driver
    itself (the *handled* work is what piles up — that is the model's
    business).  Stops after ``count`` arrivals, or at the first arrival
    strictly past ``until``, whichever comes first; the process event's
    value is the number of arrivals delivered.
    """
    if count is None and until is None:
        raise ValueError("open_loop needs a stopping rule: count and/or until")

    def _driver():
        if start > 0.0:
            yield env.timeout(start)
        delivered = 0
        while count is None or delivered < count:
            gap = source.next_gap()
            if until is not None and env.now + gap > until:
                break
            yield env.timeout(gap)
            handler(delivered, env.now)
            delivered += 1
        return delivered

    return env.process(_driver(), name="open_loop")
