"""Core event loop: simulated clock, events, and generator processes.

The engine follows the classic event-calendar design: a calendar of
``(time, priority, sequence, event)`` entries, popped in order.  Model
code is written as generator functions ("processes") that ``yield``
events; when a yielded event triggers, the process is resumed with the
event's value.

The calendar has two interchangeable backends (``Environment(calendar=
...)``, CLI ``--calendar``): the default binary heap, byte-identical to
every prior build, and the :class:`~repro.sim.calendar.TimingWheel` for
runs with millions of *concurrent* pending timers, where the heap's
O(log n) per-event tuple comparisons dominate.  ``auto`` starts on the
heap and promotes one-way to a wheel past
:data:`~repro.sim.calendar.AUTO_PROMOTE_THRESHOLD` pending entries.
Both backends pop in the identical ``(when, priority, seq)`` total
order, so a model never observes which one is underneath.

The engine also recycles :class:`Timeout` objects through a bounded
free list (``Environment(timeout_pool=...)``): ``yield env.timeout()``
is the dominant allocation of every model loop, and after a timeout's
callbacks run the run loop proves via refcount that nobody else holds
it, then resets it in place for the next ``timeout()`` call instead of
letting it churn the allocator.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional, TYPE_CHECKING

from repro.sim.calendar import AUTO_PROMOTE_THRESHOLD, CALENDAR_BACKENDS, TimingWheel
from repro.sim.calendar import default_calendar as _default_calendar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs uses sim.stats)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: Bound once: ``Environment.timeout`` allocates events without running
#: the ``__init__`` chain (see its docstring).
_new_event = object.__new__

#: Bound once: a module-global load is one opcode cheaper than
#: ``heapq.heappush`` (global + attribute) in the scheduling hot paths.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Scheduling priorities (lower runs first at equal timestamps).
URGENT = 0
NORMAL = 1

#: Calendar compaction: when more than this many cancelled entries sit
#: in the calendar *and* they outnumber the live entries, the calendar
#: is rebuilt without them (one O(n) pass instead of n O(log n) pops).
CALENDAR_COMPACT_THRESHOLD = 64

#: Default capacity of the per-environment :class:`Timeout` free list.
#: Deep enough to absorb a large fan-out's worth of simultaneously
#: retiring timers; 0 disables pooling entirely (every ``timeout()``
#: allocates, as in pre-pool builds).
DEFAULT_TIMEOUT_POOL = 1024


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation calendar.

    An event starts *pending*, becomes *triggered* when given a value via
    :meth:`succeed` or :meth:`fail`, and *processed* once its callbacks
    have run.  Processes wait on events by yielding them.

    A scheduled event can also be *cancelled* (:meth:`cancel`): its
    callbacks will never run and its calendar entry is discarded lazily
    — the primary use is killing a speculative timer (a link wake, a
    wait deadline) the moment it becomes stale, instead of letting it
    fire and version-check itself into a no-op.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_defused",
        "_cancelled",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event has no outcome yet")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has no value yet")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``.

        The calendar insert is inlined (rather than calling
        ``env._schedule``) because succeed is the scheduling path of
        every process completion and ping-pong style handoff.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if self._cancelled:
            raise SimulationError("event was cancelled")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        if env._fast:
            _heappush(env._calendar, (env._now + delay, NORMAL, env._seq, self))
        else:
            env._insert_slow((env._now + delay, NORMAL, env._seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiting processes see the exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if self._cancelled:
            raise SimulationError("event was cancelled")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self, delay)
        return self

    def cancel(self) -> bool:
        """Cancel the event: its callbacks will never run.

        Contract (see ``docs/PERFORMANCE.md``):

        * Cancelling a *scheduled* event (triggered but not yet
          processed — e.g. a pending :class:`Timeout`) discards its
          calendar entry lazily: the entry is skipped when popped, or
          swept in bulk once cancelled entries dominate the calendar
          (:data:`CALENDAR_COMPACT_THRESHOLD`).  The simulated clock
          never advances *because of* a cancelled entry.
        * Cancelling a *pending* event makes a later ``succeed()`` /
          ``fail()`` raise :class:`SimulationError`.
        * Cancelling an already-processed or already-cancelled event is
          a no-op.  Returns True only when this call did the cancel.
        * A process must not yield an event that may be cancelled — the
          process would never resume.  Cancellation is for timers whose
          owner re-arms elsewhere (links, wait deadlines).
        """
        if self._processed or self._cancelled:
            return False
        self._cancelled = True
        env = self.env
        env._cancelled_events += 1
        if self._triggered:  # a live calendar entry exists for it
            env._dead_entries += 1
            wheel = env._wheel
            pending = len(env._calendar) if wheel is None else len(wheel)
            if (
                env._dead_entries > CALENDAR_COMPACT_THRESHOLD
                and env._dead_entries * 2 > pending
            ):
                env._compact()
        return True

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """Event that triggers after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Condition(Event):
    """Waits for all (or any) of a set of events.

    The value of a condition is a dict mapping each triggered source
    event to its value.
    """

    __slots__ = ("_events", "_need", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event], wait_all: bool):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        self._need = len(self._events) if wait_all else min(1, len(self._events))
        if self._need == 0:
            self.succeed({})
            return
        for ev in self._events:
            if ev.callbacks is None:  # already processed
                self._collect(ev)
            else:
                ev.callbacks.append(self._collect)

    def _collect(self, ev: Event) -> None:
        if self._triggered or self._cancelled:
            return
        if not ev._ok:
            ev.defuse()
            self.fail(ev._value)
            return
        self._done += 1
        if self._done >= self._need:
            # Only events that actually fired (processed) contribute a
            # value — a pending Timeout is scheduled but hasn't happened.
            self.succeed({e: e._value for e in self._events if e._processed and e._ok})


class Process(Event):
    """A running generator; also an event that triggers when it returns.

    The generator yields :class:`Event` instances.  ``return value``
    (or ``StopIteration(value)``) becomes the process event's value.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {type(generator).__name__}")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def cancel(self) -> bool:
        """Processes cannot be cancelled — use :meth:`interrupt`.

        A cancelled process event would make the generator's final
        ``succeed`` blow up long after the caller moved on; interrupt
        delivers a catchable exception at a defined point instead.
        """
        raise SimulationError(f"cannot cancel process {self.name!r}; use interrupt()")

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a documented no-op: an
        interrupter and its victim's completion can legitimately race
        at the same timestamp (e.g. a watchdog firing just as the
        watched transfer completes), and the interrupt may also land
        after the process triggered between scheduling and delivery of
        the kicker event.  Both orderings simply deliver nothing.
        """
        if self._triggered:
            return
        kicker = Event(self.env)
        kicker.callbacks.append(lambda ev: self._throw(Interrupt(cause)))
        kicker.succeed(delay=0.0)

    def _throw(self, exc: BaseException) -> None:
        if self._triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(None, exc)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, None)
        else:
            event.defuse()
            self._step(None, event._value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        """Advance the generator once: ``send(value)``, or ``throw(exc)``
        when ``exc`` is not None.

        Hot path: this used to take an ``advance`` closure, which cost a
        fresh lambda allocation per resume.  Passing the send-value /
        throw-exception pair directly removes that allocation, and the
        loop (rather than recursion) keeps chains of already-processed
        targets off the Python stack.
        """
        env = self.env
        generator = self._generator
        while True:
            env._active_process = self
            try:
                if exc is None:
                    target = generator.send(value)
                else:
                    target = generator.throw(exc)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as caught:
                env._active_process = None
                self.fail(caught)
                return
            env._active_process = None
            if isinstance(target, Event):
                callbacks = target.callbacks
                if callbacks is not None:
                    self._target = target
                    callbacks.append(self._resume)
                    return
                # Already processed: resume immediately (synchronously).
                if target._ok:
                    value, exc = target._value, None
                else:
                    target.defuse()
                    value, exc = None, target._value
            else:
                value, exc = None, SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )


class Environment:
    """The simulation world: clock, calendar, and process factory.

    Every environment carries two observability hooks (see
    ``docs/OBSERVABILITY.md``):

    * ``tracer`` — span/instant event recorder.  Defaults to the
      installed tracer (the no-op :data:`~repro.obs.tracer.NULL_TRACER`
      unless the CLI or a test installed a live one), so hot paths pay
      one attribute check when tracing is off.
    * ``metrics`` — registry of named counters/gauges/histograms that
      components update as they run.  Defaults to the installed shared
      registry, or a private one per environment.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        calendar: Optional[str] = None,
        timeout_pool: int = DEFAULT_TIMEOUT_POOL,
    ):
        # Imported here, not at module level: repro.obs depends on
        # repro.sim.stats, so a top-level import would be circular.
        from repro.obs.metrics import MetricsRegistry, installed_metrics
        from repro.obs.tracer import installed_tracer

        backend = calendar if calendar is not None else _default_calendar()
        if backend not in CALENDAR_BACKENDS:
            raise ValueError(
                f"unknown calendar backend {backend!r}; choose from {CALENDAR_BACKENDS}"
            )
        self._now = float(initial_time)
        self._calendar: List = []
        self._backend = backend
        self._wheel: Optional[TimingWheel] = TimingWheel() if backend == "wheel" else None
        # One flag, not two: the heap fast path tests a single slot
        # attribute per insert; wheel and auto(-promotion) inserts go
        # through _insert_slow.
        self._fast = backend == "heap"
        if timeout_pool < 0:
            raise ValueError(f"timeout_pool must be >= 0, got {timeout_pool}")
        self._timeout_pool: List[Timeout] = []
        self._pool_limit = timeout_pool
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Cancellation bookkeeping: totals are exposed as properties and
        # flushed into the metrics registry when run() returns, so the
        # hot path pays integer increments only.
        self._cancelled_events = 0  # Event.cancel() calls
        self._stale_timers = 0  # cancelled calendar entries swept
        self._dead_entries = 0  # cancelled entries still in the heap
        self._cancelled_flushed = 0
        self._stale_flushed = 0
        self.tracer = tracer if tracer is not None else installed_tracer()
        if metrics is None:
            # Explicit None checks: an empty registry is falsy (len 0).
            metrics = installed_metrics()
            if metrics is None:
                metrics = MetricsRegistry()
        self.metrics = metrics

    @property
    def now(self) -> float:
        """Current simulated time (nanoseconds by convention in repro)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    @property
    def calendar_backend(self) -> str:
        """The backend this environment was built with (heap/wheel/auto)."""
        return self._backend

    @property
    def using_wheel(self) -> bool:
        """True once events are ordered by a timing wheel (wheel, or auto
        after promotion)."""
        return self._wheel is not None


    # -- event factories ------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A pre-triggered event that fires after ``delay``.

        This is the engine's dominant allocation (``yield
        env.timeout(...)`` inside every model loop), so it bypasses the
        ``Timeout.__init__`` / ``Event.__init__`` / ``_schedule`` call
        chain and builds the object and its calendar entry inline —
        or skips the allocation entirely by reusing a retired timeout
        from the free list (the run loop returns them once their
        refcount proves no one else holds them).
        """
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev._value = value
        else:
            ev = _new_event(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev._triggered = True
            ev._processed = False
            ev._defused = False
            ev._cancelled = False
        self._seq += 1
        if self._fast:
            _heappush(self._calendar, (self._now + delay, NORMAL, self._seq, ev))
        else:
            self._insert_slow((self._now + delay, NORMAL, self._seq, ev))
        return ev

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, wait_all=True)

    def any_of(self, events: Iterable[Event]) -> Condition:
        return Condition(self, events, wait_all=False)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        # No auto-promotion check here: pending-count growth into the
        # millions is always timeout-driven (``timeout()`` checks), and
        # keeping this non-pooled path two branches shorter matters for
        # succeed/fail-heavy workloads.
        self._seq += 1
        if self._fast:
            _heappush(self._calendar, (self._now + delay, priority, self._seq, event))
        else:
            self._insert_slow((self._now + delay, priority, self._seq, event))

    def _insert_slow(self, entry) -> None:
        """Calendar insert for the wheel and auto backends.

        ``auto`` environments stay on the heap (with this extra call
        per insert) until the pending count crosses the promotion
        threshold, then migrate one-way to a wheel.
        """
        wheel = self._wheel
        if wheel is None:
            _heappush(self._calendar, entry)
            if len(self._calendar) > AUTO_PROMOTE_THRESHOLD:
                self._promote()
        else:
            wheel.push(entry)

    def _promote(self) -> None:
        """One-way heap -> wheel migration (``auto`` backend only).

        Live entries move to a fresh wheel, cancelled ones are dropped
        on the way (they count as swept stale timers).  The heap list is
        emptied *in place*: ``run()`` binds it locally, and finding it
        empty is what makes the run loop re-check for the wheel.
        """
        wheel = TimingWheel()
        calendar = self._calendar
        dead = 0
        push = wheel.push
        for entry in calendar:
            if entry[3]._cancelled:
                dead += 1
            else:
                push(entry)
        del calendar[:]
        self._stale_timers += dead
        self._dead_entries = 0
        self._wheel = wheel

    # -- cancellation bookkeeping ---------------------------------------
    @property
    def cancelled_events(self) -> int:
        """Total :meth:`Event.cancel` calls on this environment."""
        return self._cancelled_events

    @property
    def stale_timers(self) -> int:
        """Cancelled calendar entries discarded so far (lazy + compaction)."""
        return self._stale_timers

    def _compact(self) -> None:
        """Rebuild the calendar without cancelled entries (one O(n) pass).

        In place: ``run()`` binds the calendar list locally for speed,
        so the list object's identity must survive compaction.  On the
        wheel backend the sweep is delegated bucket-by-bucket.
        """
        wheel = self._wheel
        if wheel is not None:
            self._stale_timers += wheel.compact(lambda entry: entry[3]._cancelled)
            self._dead_entries = 0
            return
        calendar = self._calendar
        live = [entry for entry in calendar if not entry[3]._cancelled]
        self._stale_timers += len(calendar) - len(live)
        calendar[:] = live
        heapq.heapify(calendar)
        self._dead_entries = 0

    def _flush_cancel_metrics(self) -> None:
        """Publish the counter pair to the metrics registry (delta-based)."""
        delta = self._cancelled_events - self._cancelled_flushed
        if delta:
            self.metrics.counter("sim.cancelled_events").add(delta)
            self._cancelled_flushed = self._cancelled_events
        delta = self._stale_timers - self._stale_flushed
        if delta:
            self.metrics.counter("sim.stale_timers").add(delta)
            self._stale_flushed = self._stale_timers

    def advance_to(self, until: float) -> float:
        """Bulk time-advance: jump the clock to ``until`` without events.

        The fidelity batch tier (``repro.sim.batch``) uses this to
        charge an analytically-solved steady-state region to the
        simulated clock in one step.  It is only legal over *empty*
        simulated time: a live calendar entry earlier than ``until``
        would be silently reordered into the past, so that raises
        :class:`SimulationError` instead.  Cancelled entries don't
        count — :meth:`peek` discards them on the way — which is why
        the tier relies on :meth:`Event.cancel`'s lazy-discard
        contract.  Returns the new clock.
        """
        until = float(until)
        if until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        upcoming = self.peek()
        if upcoming < until:
            raise SimulationError(
                f"cannot advance_to({until}): live event scheduled at {upcoming}"
            )
        self._now = until
        return until

    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none."""
        wheel = self._wheel
        if wheel is not None:
            while True:
                entry = wheel.peek()
                if entry is None:
                    return float("inf")
                if entry[3]._cancelled:
                    wheel.pop_due(float("inf"))
                    self._stale_timers += 1
                    self._dead_entries -= 1
                    continue
                return entry[0]
        calendar = self._calendar
        while calendar and calendar[0][3]._cancelled:
            _heappop(calendar)
            self._stale_timers += 1
            self._dead_entries -= 1
        return calendar[0][0] if calendar else float("inf")

    def step(self) -> None:
        """Process exactly one live event from the calendar.

        Cancelled entries encountered on the way are discarded without
        advancing the clock — they never happened.
        """
        wheel = self._wheel
        while True:
            if wheel is not None:
                entry = wheel.pop_due(float("inf"))
                if entry is None:
                    raise SimulationError("empty calendar")
                when, _prio, _seq, event = entry
            else:
                if not self._calendar:
                    raise SimulationError("empty calendar")
                when, _prio, _seq, event = _heappop(self._calendar)
            if event._cancelled:
                self._stale_timers += 1
                self._dead_entries -= 1
                continue
            break
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar drains or the clock reaches ``until``.

        The body of :meth:`step` is inlined here (with locals bound for
        the heap and calendar) — one method call and one bounds check
        per event add up over the millions of events a sweep processes.
        Semantics are identical to calling :meth:`step` in a loop.

        Retired :class:`Timeout` objects are recycled here: after an
        event's callbacks run (or a cancelled entry is discarded), a
        refcount of exactly 2 — the loop local plus the ``getrefcount``
        argument — proves no model code still holds the object, so it
        is reset in place and parked on the free list for the next
        ``timeout()`` call.  An ``auto`` environment may promote to the
        wheel mid-run (a callback scheduling past the threshold empties
        the heap in place), so the outer loop re-checks the backend
        whenever the heap drains.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until ({until}) is in the past (now={self._now})")
        pool = self._timeout_pool
        pool_limit = self._pool_limit
        timeout_cls = Timeout
        refcount = getrefcount
        try:
            while True:
                wheel = self._wheel
                if wheel is not None:
                    self._run_wheel(wheel, until, pool, pool_limit)
                    return
                calendar = self._calendar
                pop = _heappop
                while calendar:
                    if until is not None and calendar[0][0] > until:
                        self._now = until
                        return
                    when, _prio, _seq, event = pop(calendar)
                    if event._cancelled:
                        # Lazily discard; the clock does not advance for
                        # a timer that was cancelled before it fired.
                        self._stale_timers += 1
                        self._dead_entries -= 1
                        if (
                            type(event) is timeout_cls
                            and len(pool) < pool_limit
                            and refcount(event) == 2
                        ):
                            event._cancelled = False
                            event._defused = False
                            event._value = None
                            event.callbacks.clear()
                            pool.append(event)
                        continue
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        type(event) is timeout_cls
                        and len(pool) < pool_limit
                        and refcount(event) == 2
                    ):
                        event._processed = False
                        event._defused = False
                        event._value = None
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
                if self._wheel is None:
                    break
            if until is not None:
                self._now = until
        finally:
            if (
                self._cancelled_events != self._cancelled_flushed
                or self._stale_timers != self._stale_flushed
            ):
                self._flush_cancel_metrics()

    def _run_wheel(self, wheel: TimingWheel, until: Optional[float], pool, pool_limit) -> None:
        """The wheel-backed run loop (same semantics as the heap loop).

        Instead of a ``pop_due`` method call per event, the loop drains
        each sorted bucket directly: the bucket list and cursor live in
        locals, and only ``wheel._cur_pos`` is written back per event —
        *before* callbacks run, so a callback pushing into the current
        slot insorts at the right position.  The head entry's time is
        checked against ``until`` whether or not it is cancelled —
        exactly like the heap loop's ``calendar[0][0] > until`` check —
        so a cancelled far-future entry still lets the clock settle at
        ``until``.
        """
        limit = float("inf") if until is None else until
        timeout_cls = Timeout
        refcount = getrefcount
        while True:
            bucket = wheel._cur_bucket
            pos = wheel._cur_pos
            if bucket is None or pos >= len(bucket):
                if wheel._tick is None:
                    wheel._calibrate()
                if not wheel._materialize_next():
                    break
                continue
            consumed = 0
            try:
                while True:
                    try:
                        # The index doubles as the bounds check (free on
                        # 3.11+ zero-cost exceptions) — a same-slot push
                        # from a callback grows the bucket and is picked
                        # up naturally.
                        entry = bucket[pos]
                    except IndexError:
                        break
                    if entry[0] > limit:
                        wheel._cur_pos = pos
                        self._now = until
                        return
                    # Clear the consumed slot and drop the locals so the
                    # entry tuple frees: pooling needs refcount == 2.
                    bucket[pos] = None
                    pos += 1
                    wheel._cur_pos = pos
                    consumed += 1
                    when, _prio, _seq, event = entry
                    entry = None
                    if event._cancelled:
                        self._stale_timers += 1
                        self._dead_entries -= 1
                        if (
                            type(event) is timeout_cls
                            and len(pool) < pool_limit
                            and refcount(event) == 2
                        ):
                            event._cancelled = False
                            event._defused = False
                            event._value = None
                            event.callbacks.clear()
                            pool.append(event)
                        continue
                    self._now = when
                    callbacks, event.callbacks = event.callbacks, None
                    event._processed = True
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    if (
                        type(event) is timeout_cls
                        and len(pool) < pool_limit
                        and refcount(event) == 2
                    ):
                        event._processed = False
                        event._defused = False
                        event._value = None
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
            finally:
                # The count is synced per bucket, not per event; a
                # cancel-triggered compaction mid-bucket sees a count
                # stale by at most one bucket's occupancy, which the
                # compaction threshold heuristic absorbs.
                wheel._count -= consumed
        if until is not None:
            self._now = until
