"""repro — a simulator-based reproduction of the ASPLOS'24 paper
"A Quantitative Analysis and Guidelines of Data Streaming Accelerator
in Modern Intel Xeon Scalable Processors".

The package models the complete system the paper measures:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.mem` — LLC (with DDIO ways), DRAM/NUMA/CXL tiers, IOMMU;
* :mod:`repro.dsa` — the DSA device: descriptors, WQs, groups, engines,
  with every Table 1 operation executed functionally on real bytes;
* :mod:`repro.cbdma` — the previous-generation DMA baseline;
* :mod:`repro.cpu` — cores, offload instructions, software kernels;
* :mod:`repro.runtime` — driver, accel-config, DML, DTO software stack;
* :mod:`repro.workloads` — dsa-perf-micros, X-Mem, Vhost, CacheLib,
  SPDK, libfabric measurement drivers;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import MicrobenchConfig, run_dsa_microbench

    result = run_dsa_microbench(MicrobenchConfig(transfer_size=65536))
    print(result.throughput, "GB/s")
"""

from repro.platform import Platform, icx_platform, spr_platform
from repro.dsa import (
    BatchDescriptor,
    CompletionRecord,
    DeviceConfig,
    DsaDevice,
    DsaTimingParams,
    Opcode,
    StatusCode,
    WorkDescriptor,
    WqMode,
)
from repro.runtime import Dml, DmlPath, Dto, IdxdDriver
from repro.workloads import (
    MicrobenchConfig,
    MicrobenchResult,
    run_cbdma_microbench,
    run_dsa_microbench,
    run_software_microbench,
)
from repro.experiments import all_experiments, run_experiment

__version__ = "1.0.0"

__all__ = [
    "Platform",
    "spr_platform",
    "icx_platform",
    "Opcode",
    "WorkDescriptor",
    "BatchDescriptor",
    "CompletionRecord",
    "StatusCode",
    "DeviceConfig",
    "WqMode",
    "DsaTimingParams",
    "DsaDevice",
    "IdxdDriver",
    "Dml",
    "DmlPath",
    "Dto",
    "MicrobenchConfig",
    "MicrobenchResult",
    "run_dsa_microbench",
    "run_software_microbench",
    "run_cbdma_microbench",
    "all_experiments",
    "run_experiment",
    "__version__",
]
