"""Functional execution of every Table 1 operation on real bytes.

This layer is deliberately independent of timing: given a descriptor
and the submitting process's :class:`~repro.mem.address.AddressSpace`,
it performs the operation on the backing numpy arrays and fills the
completion record.  The device model calls it when buffers are backed;
timing-only sweeps skip it.
"""

from __future__ import annotations

import numpy as np

from repro.dsa import delta as delta_mod
from repro.dsa.crc import crc32c
from repro.dsa.descriptor import CompletionRecord, WorkDescriptor
from repro.dsa.dif import DifError, dif_check, dif_insert, dif_strip, dif_update
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode, PATTERN_BYTES
from repro.mem.address import AddressSpace


def _view(space: AddressSpace, va: int, size: int) -> np.ndarray:
    buffer = space.buffer_at(va)
    return buffer.view(va - buffer.va, size)


def _pattern_array(pattern: int, size: int, pattern2: int = 0, width: int = 8) -> np.ndarray:
    """Expand an 8- or 16-byte little-endian pattern to ``size`` bytes."""
    raw = int(pattern).to_bytes(PATTERN_BYTES, "little")
    if width == 16:
        raw += int(pattern2).to_bytes(PATTERN_BYTES, "little")
    elif width != 8:
        raise ValueError(f"pattern width must be 8 or 16, got {width}")
    unit = np.frombuffer(raw, dtype=np.uint8)
    repeats = -(-size // len(unit))
    return np.tile(unit, repeats)[:size]


def execute(descriptor: WorkDescriptor, space: AddressSpace) -> CompletionRecord:
    """Run the descriptor's operation; returns its completion record.

    The record is also attached to the descriptor, mirroring how the
    hardware writes it back to the completion address.
    """
    record = descriptor.completion
    invalid = descriptor.validate()
    if invalid is not None:
        record.status = invalid
        return record

    handler = _HANDLERS.get(descriptor.opcode)
    if handler is None:
        record.status = StatusCode.INVALID_OPCODE
        return record
    try:
        handler(descriptor, space, record)
    except DifError:
        record.status = StatusCode.DIF_ERROR
        record.result = 1
    except delta_mod.DeltaOverflowError:
        record.status = StatusCode.DELTA_OVERFLOW
    return record


def _op_noop(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    record.status = StatusCode.SUCCESS


def _op_memmove(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    dst = _view(space, desc.dst, desc.size)
    # memmove semantics: correct even for overlapping ranges.
    dst[:] = src.copy()
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_dualcast(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    _view(space, desc.dst, desc.size)[:] = src
    _view(space, desc.dst2, desc.size)[:] = src
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_fill(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    dst = _view(space, desc.dst, desc.size)
    dst[:] = _pattern_array(desc.pattern, desc.size, desc.pattern2, desc.pattern_bytes)
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_compare(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    a = _view(space, desc.src, desc.size)
    b = _view(space, desc.src2, desc.size)
    mismatches = np.nonzero(a != b)[0]
    if mismatches.size == 0:
        record.status = StatusCode.SUCCESS
        record.result = 0
        record.bytes_completed = desc.size
    else:
        record.status = StatusCode.SUCCESS_WITH_FALSE_PREDICATE
        record.result = 1
        record.bytes_completed = int(mismatches[0])


def _op_compare_pattern(
    desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord
) -> None:
    a = _view(space, desc.src, desc.size)
    expected = _pattern_array(desc.pattern, desc.size, desc.pattern2, desc.pattern_bytes)
    mismatches = np.nonzero(a != expected)[0]
    if mismatches.size == 0:
        record.status = StatusCode.SUCCESS
        record.result = 0
        record.bytes_completed = desc.size
    else:
        record.status = StatusCode.SUCCESS_WITH_FALSE_PREDICATE
        record.result = 1
        record.bytes_completed = int(mismatches[0])


def _op_crcgen(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    record.result = crc32c(src)
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_copy_crc(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    _view(space, desc.dst, desc.size)[:] = src
    record.result = crc32c(src)
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_create_delta(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    original = _view(space, desc.src, desc.size)
    modified = _view(space, desc.src2, desc.size)
    delta = delta_mod.create_delta(original, modified, max_delta_size=desc.delta_max_size)
    blob = delta.serialize()
    if len(blob):
        _view(space, desc.dst, len(blob))[:] = blob
    record.status = StatusCode.SUCCESS
    record.result = delta.size_bytes
    record.bytes_completed = desc.size


def _op_apply_delta(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    original = _view(space, desc.dst, desc.size)
    blob = _view(space, desc.src, desc.delta_size)
    record_obj = delta_mod.DeltaRecord.deserialize(blob, source_size=desc.size)
    original[:] = delta_mod.apply_delta(original, record_obj)
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


def _op_dif_check(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    blocks = dif_check(src, desc.dif)
    record.status = StatusCode.SUCCESS
    record.result = blocks
    record.bytes_completed = desc.size


def _op_dif_insert(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    out = dif_insert(src, desc.dif)
    _view(space, desc.dst, len(out))[:] = out
    record.status = StatusCode.SUCCESS
    record.bytes_completed = len(out)


def _op_dif_strip(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    src = _view(space, desc.src, desc.size)
    out = dif_strip(src, desc.dif)
    _view(space, desc.dst, len(out))[:] = out
    record.status = StatusCode.SUCCESS
    record.bytes_completed = len(out)


def _op_dif_update(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    if desc.dif_new is None:
        record.status = StatusCode.INVALID_FLAGS
        return
    src = _view(space, desc.src, desc.size)
    out = dif_update(src, desc.dif, desc.dif_new)
    _view(space, desc.dst, len(out))[:] = out
    record.status = StatusCode.SUCCESS
    record.bytes_completed = len(out)


def _op_cache_flush(desc: WorkDescriptor, space: AddressSpace, record: CompletionRecord) -> None:
    # Data is untouched; the timing layer evicts the range from the LLC.
    record.status = StatusCode.SUCCESS
    record.bytes_completed = desc.size


_HANDLERS = {
    Opcode.NOOP: _op_noop,
    Opcode.DRAIN: _op_noop,
    Opcode.MEMMOVE: _op_memmove,
    Opcode.DUALCAST: _op_dualcast,
    Opcode.FILL: _op_fill,
    Opcode.COMPARE: _op_compare,
    Opcode.COMPARE_PATTERN: _op_compare_pattern,
    Opcode.CRCGEN: _op_crcgen,
    Opcode.COPY_CRC: _op_copy_crc,
    Opcode.CREATE_DELTA: _op_create_delta,
    Opcode.APPLY_DELTA: _op_apply_delta,
    Opcode.DIF_CHECK: _op_dif_check,
    Opcode.DIF_INSERT: _op_dif_insert,
    Opcode.DIF_STRIP: _op_dif_strip,
    Opcode.DIF_UPDATE: _op_dif_update,
    Opcode.CACHE_FLUSH: _op_cache_flush,
}
