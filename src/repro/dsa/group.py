"""Group: the basic operational unit of DSA (paper §3.2).

A group ties together a set of work queues (descriptor sources) and a
set of processing engines (descriptor consumers) through one arbiter.
"""

from __future__ import annotations

from typing import List, TYPE_CHECKING

from repro.dsa.arbiter import GroupArbiter
from repro.dsa.config import GroupConfig
from repro.dsa.wq import WorkQueue
from repro.sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dsa.engine import ProcessingEngine


class Group:
    """One configured group inside a device."""

    def __init__(self, env: Environment, config: GroupConfig, wqs: List[WorkQueue]):
        config.validate()
        self.env = env
        self.config = config
        self.wqs = list(wqs)
        self.arbiter = GroupArbiter(env, self.wqs)
        self.engines: List["ProcessingEngine"] = []

    @property
    def group_id(self) -> int:
        return self.config.group_id

    def attach_engine(self, engine: "ProcessingEngine") -> None:
        self.engines.append(engine)

    def wq(self, wq_id: int) -> WorkQueue:
        for wq in self.wqs:
            if wq.wq_id == wq_id:
                return wq
        raise KeyError(f"WQ {wq_id} not in group {self.group_id}")
