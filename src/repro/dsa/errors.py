"""Completion status codes (subset of the DSA specification's table)."""

from __future__ import annotations

import enum


class StatusCode(enum.IntEnum):
    """Value written to a completion record's status byte."""

    NONE = 0x00  # record not yet written (software polls for != 0)
    SUCCESS = 0x01
    SUCCESS_WITH_FALSE_PREDICATE = 0x02  # compare found a difference
    PAGE_FAULT = 0x03
    PAGE_FAULT_IN_BATCH = 0x04
    BATCH_FAILED = 0x05
    INVALID_OPCODE = 0x10
    INVALID_FLAGS = 0x11
    INVALID_SIZE = 0x13
    MISALIGNED_ADDRESS = 0x15
    DIF_ERROR = 0x17
    DELTA_OVERFLOW = 0x18
    QUEUE_FULL = 0x20  # model-level: ENQCMD retry indication
    DEVICE_DISABLED = 0x21  # model-level: device reset/disabled mid-flight

    @property
    def is_success(self) -> bool:
        return self in (StatusCode.SUCCESS, StatusCode.SUCCESS_WITH_FALSE_PREDICATE)


class SubmissionError(RuntimeError):
    """Raised when software submits illegally (e.g. MOVDIR64B to a full DWQ)."""


class ConfigurationError(ValueError):
    """Raised by device/WQ/group configuration validation."""
