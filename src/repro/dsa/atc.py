"""Device-side address translation cache (ATC).

DSA caches translations locally and falls back to the socket IOMMU on
a miss (paper §3.2).  Entries are keyed by (PASID, virtual page), so
multiple processes share the device without flushes between them (F1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, TYPE_CHECKING

from repro.mem.iommu import Iommu

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


class DeviceAtc:
    """LRU cache of (pasid, vpn) → translation, backed by the IOMMU.

    When the owning device passes a metrics registry, hits and misses
    are also published live as ``<name>.hits`` / ``<name>.misses``.
    """

    def __init__(
        self,
        iommu: Iommu,
        entries: int = 128,
        hit_latency: float = 8.0,
        metrics: Optional["MetricsRegistry"] = None,
        name: str = "atc",
    ):
        if entries < 1:
            raise ValueError(f"ATC entries must be >= 1, got {entries}")
        self.iommu = iommu
        self.entries = entries
        self.hit_latency = hit_latency
        self.name = name
        self._cache: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._m_hits = metrics.counter(f"{name}.hits") if metrics else None
        self._m_misses = metrics.counter(f"{name}.misses") if metrics else None

    def __len__(self) -> int:
        return len(self._cache)

    def _page_size(self, pasid: int) -> int:
        return self.iommu._tables[pasid].page_size

    def translate(self, pasid: int, va: int) -> Tuple[float, bool]:
        """Translate one address; ``(latency_ns, faulted)``."""
        key = (pasid, va // self._page_size(pasid))
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.add()
            return self.hit_latency, False
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.add()
        latency, faulted = self.iommu.translate(pasid, va)
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[key] = True
        return self.hit_latency + latency, faulted

    def translate_range(self, pasid: int, va: int, size: int) -> Tuple[float, int]:
        """Translate a whole transfer's pages.

        Returns ``(critical_path_latency, faults)``.  Only the first
        page's translation (plus any page-fault service) sits on the
        critical path; subsequent pages are translated while data
        streams (the reason huge pages barely move throughput, Fig 8).
        """
        if size <= 0:
            return 0.0, 0
        page = self._page_size(pasid)
        critical, first_fault = self.translate(pasid, va)
        faults = int(first_fault)
        first_page_end = (va // page + 1) * page
        cursor = first_page_end
        while cursor < va + size:
            latency, faulted = self.translate(pasid, cursor)
            if faulted:
                # A fault stalls the engine for its full service time.
                critical += latency
                faults += 1
            cursor += page
        return critical, faults

    def invalidate_pasid(self, pasid: int) -> None:
        for key in [k for k in self._cache if k[0] == pasid]:
            del self._cache[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
