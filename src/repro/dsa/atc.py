"""Device-side address translation cache (ATC).

DSA caches translations locally and falls back to the socket IOMMU on
a miss (paper §3.2).  Entries are keyed by (PASID, virtual page), so
multiple processes share the device without flushes between them (F1).

The ATC is also the natural choke point for deterministic fault
injection (``repro.faults``): every device translation consults the
active injector, which may turn it into a page fault (minor or major)
or trigger an ATC shoot-down, before the real cache/IOMMU lookup runs.
With no injector installed those checks are a single ``None`` test.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, TYPE_CHECKING

from repro.faults.inject import active_injector
from repro.mem.iommu import Iommu

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry


class DeviceAtc:
    """LRU cache of (pasid, vpn) → translation, backed by the IOMMU.

    When the owning device passes a metrics registry, hits and misses
    are also published live as ``<name>.hits`` / ``<name>.misses``;
    injected faults and shoot-downs appear lazily as
    ``<name>.injected_faults`` / ``<name>.shootdowns`` the first time
    one fires, so fault-free runs publish no extra names.
    """

    def __init__(
        self,
        iommu: Iommu,
        entries: int = 128,
        hit_latency: float = 8.0,
        metrics: Optional["MetricsRegistry"] = None,
        name: str = "atc",
    ):
        if entries < 1:
            raise ValueError(f"ATC entries must be >= 1, got {entries}")
        self.iommu = iommu
        self.entries = entries
        self.hit_latency = hit_latency
        self.name = name
        self._cache: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._metrics = metrics
        self._m_hits = metrics.counter(f"{name}.hits") if metrics else None
        self._m_misses = metrics.counter(f"{name}.misses") if metrics else None

    def __len__(self) -> int:
        return len(self._cache)

    def _page_size(self, pasid: int) -> int:
        return self.iommu._tables[pasid].page_size

    def _count(self, suffix: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"{self.name}.{suffix}").add()

    def translate(
        self, pasid: int, va: int, service_fault: bool = True
    ) -> Tuple[float, bool]:
        """Translate one address; ``(latency_ns, faulted)``.

        ``service_fault=False`` models a BOF=0 engine: a faulting page
        is *discovered* (walk latency charged) but not serviced — the
        mapping is not created and nothing is cached, so software can
        touch the page and resubmit the remainder.
        """
        injector = active_injector()
        if injector is not None and injector.shootdown_due():
            self.flush()
            self._count("shootdowns")
        key = (pasid, va // self._page_size(pasid))
        if injector is not None:
            kind = injector.page_fault(pasid, va, self._page_size(pasid))
            if kind is not None:
                # Injected fault: the stale/absent translation forces a
                # walk that misses; drop any cached entry for the page.
                self._cache.pop(key, None)
                self.misses += 1
                if self._m_misses is not None:
                    self._m_misses.add()
                self._count("injected_faults")
                walk = (
                    self.iommu.params.iotlb_hit_latency
                    + self.iommu.params.walk_overhead
                    + self.iommu._tables[pasid].walk_latency
                )
                if not service_fault:
                    return self.hit_latency + walk, True
                latency = walk + injector.service_latency_ns(kind)
                if len(self._cache) >= self.entries:
                    self._cache.popitem(last=False)
                self._cache[key] = True
                return self.hit_latency + latency, True
        if key in self._cache:
            self._cache.move_to_end(key)
            self.hits += 1
            if self._m_hits is not None:
                self._m_hits.add()
            return self.hit_latency, False
        self.misses += 1
        if self._m_misses is not None:
            self._m_misses.add()
        latency, faulted = self.iommu.translate(pasid, va, service_fault)
        if faulted and not service_fault:
            # Unserviced fault: the page stays unmapped, so caching the
            # (absent) translation would be wrong.
            return self.hit_latency + latency, True
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[key] = True
        return self.hit_latency + latency, faulted

    def translate_range(self, pasid: int, va: int, size: int) -> Tuple[float, int]:
        """Translate a whole transfer's pages.

        Returns ``(critical_path_latency, faults)``.  Only the first
        page's translation (plus any page-fault service) sits on the
        critical path; subsequent pages are translated while data
        streams (the reason huge pages barely move throughput, Fig 8).
        """
        if size <= 0:
            return 0.0, 0
        page = self._page_size(pasid)
        critical, first_fault = self.translate(pasid, va)
        faults = int(first_fault)
        first_page_end = (va // page + 1) * page
        cursor = first_page_end
        while cursor < va + size:
            latency, faulted = self.translate(pasid, cursor)
            if faulted:
                # A fault stalls the engine for its full service time.
                critical += latency
                faults += 1
            cursor += page
        return critical, faults

    def translate_range_partial(
        self, pasid: int, va: int, size: int
    ) -> Tuple[float, int, Optional[int]]:
        """Translate pages until the first fault (BOF=0 semantics).

        Returns ``(critical_path_latency, faults, fault_va)``.  Walks
        the same page sequence as :meth:`translate_range` but with
        ``service_fault=False`` and stops at the first faulting page:
        that fault is only discovered (walk latency on the critical
        path), the page is left unmapped, and ``fault_va`` is the base
        address of the faulting page (clamped to ``va`` for the first
        page).  On a fault-free range the latency, cache state, and
        IOMMU state are identical to :meth:`translate_range`.
        """
        if size <= 0:
            return 0.0, 0, None
        page = self._page_size(pasid)
        critical, first_fault = self.translate(pasid, va, service_fault=False)
        if first_fault:
            return critical, 1, va
        cursor = (va // page + 1) * page
        while cursor < va + size:
            latency, faulted = self.translate(pasid, cursor, service_fault=False)
            if faulted:
                return critical + latency, 1, cursor
            cursor += page
        return critical, 0, None

    def flush(self) -> None:
        """Drop every cached translation (ATC shoot-down / device reset)."""
        self._cache.clear()

    def invalidate_pasid(self, pasid: int) -> None:
        for key in [k for k in self._cache if k[0] == pasid]:
            del self._cache[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
