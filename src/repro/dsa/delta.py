"""Delta record creation and application (paper Table 1, Compare type).

A delta record captures the differences between an *original* and a
*modified* buffer at 8-byte granularity, exactly like DSA: each record
entry is a 2-byte offset index (in 8-byte units) plus the 8 modified
bytes — 10 bytes per differing chunk.  Applying a delta to the original
buffer reconstructs the modified buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

#: Comparison granularity, fixed by the DSA architecture.
CHUNK = 8
#: Bytes per delta-record entry: uint16 offset index + 8 data bytes.
ENTRY_BYTES = 10
#: Offsets are 16-bit chunk indices, capping the comparable region.
MAX_DELTA_SOURCE = CHUNK * 0x10000


class DeltaOverflowError(ValueError):
    """The differences exceed the caller's maximum delta size."""


@dataclass
class DeltaRecord:
    """Differences between two equal-length buffers."""

    source_size: int
    entries: List[Tuple[int, bytes]] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Serialized record size (what DSA reports and writes)."""
        return len(self.entries) * ENTRY_BYTES

    def serialize(self) -> np.ndarray:
        out = np.zeros(self.size_bytes, dtype=np.uint8)
        cursor = 0
        for index, data in self.entries:
            out[cursor] = index & 0xFF
            out[cursor + 1] = (index >> 8) & 0xFF
            out[cursor + 2 : cursor + 10] = np.frombuffer(data, dtype=np.uint8)
            cursor += ENTRY_BYTES
        return out

    @classmethod
    def deserialize(cls, blob: np.ndarray, source_size: int) -> "DeltaRecord":
        if len(blob) % ENTRY_BYTES:
            raise ValueError(f"delta blob length {len(blob)} not a multiple of {ENTRY_BYTES}")
        entries = []
        for cursor in range(0, len(blob), ENTRY_BYTES):
            index = int(blob[cursor]) | (int(blob[cursor + 1]) << 8)
            entries.append((index, bytes(blob[cursor + 2 : cursor + 10])))
        return cls(source_size=source_size, entries=entries)


def create_delta(
    original: np.ndarray, modified: np.ndarray, max_delta_size: int = MAX_DELTA_SOURCE
) -> DeltaRecord:
    """Build the delta record turning ``original`` into ``modified``.

    Raises :class:`DeltaOverflowError` when the record would exceed
    ``max_delta_size`` — DSA reports this condition in the completion
    record so software can fall back to a full copy.
    """
    if original.shape != modified.shape:
        raise ValueError(
            f"buffers differ in size: {original.shape} vs {modified.shape}"
        )
    size = len(original)
    if size % CHUNK:
        raise ValueError(f"buffer size {size} not a multiple of {CHUNK}")
    if size > MAX_DELTA_SOURCE:
        raise ValueError(f"source too large for 16-bit chunk offsets: {size}")
    orig64 = original.view(np.uint64)
    mod64 = modified.view(np.uint64)
    differing = np.nonzero(orig64 != mod64)[0]
    record = DeltaRecord(source_size=size)
    for index in differing.tolist():
        if (len(record.entries) + 1) * ENTRY_BYTES > max_delta_size:
            raise DeltaOverflowError(
                f"delta exceeds {max_delta_size} bytes at chunk {index}"
            )
        chunk = modified[index * CHUNK : (index + 1) * CHUNK]
        record.entries.append((index, bytes(chunk)))
    return record


def apply_delta(original: np.ndarray, record: DeltaRecord) -> np.ndarray:
    """Reconstruct the modified buffer: ``apply(create(a, b), a) == b``."""
    if len(original) != record.source_size:
        raise ValueError(
            f"record built for {record.source_size} bytes, got {len(original)}"
        )
    result = original.copy()
    for index, data in record.entries:
        if (index + 1) * CHUNK > len(result):
            raise ValueError(f"delta entry {index} beyond buffer end")
        result[index * CHUNK : (index + 1) * CHUNK] = np.frombuffer(data, dtype=np.uint8)
    return result
