"""The DSA device: portals, groups, engines, ATC, fabric port.

One :class:`DsaDevice` is one RCiEP instance (paper §3.2).  Multiple
devices can share a :class:`~repro.mem.system.MemorySystem` to model
the multi-instance scaling of Fig 10 — they contend for DRAM links and
for the LLC's DDIO partition, whose overflow triggers the leaky-DMA
regime.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.dsa.atc import DeviceAtc
from repro.dsa.config import DeviceConfig, DsaTimingParams
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.engine import ProcessingEngine
from repro.dsa.errors import StatusCode
from repro.dsa.group import Group
from repro.dsa.opcodes import Opcode
from repro.dsa.wq import WorkQueue
from repro.mem.address import AddressSpace
from repro.mem.link import FairShareLink
from repro.mem.system import MemorySystem
from repro.sim.engine import Environment, Event

Descriptor = Union[WorkDescriptor, BatchDescriptor]


def estimate_write_bytes(descriptor: Descriptor) -> int:
    """Destination bytes a descriptor will stream (leak accounting)."""
    if isinstance(descriptor, BatchDescriptor):
        return sum(estimate_write_bytes(d) for d in descriptor.descriptors)
    op, size = descriptor.opcode, descriptor.size
    if op is Opcode.DUALCAST:
        return 2 * size
    if op in (
        Opcode.MEMMOVE,
        Opcode.COPY_CRC,
        Opcode.FILL,
        Opcode.APPLY_DELTA,
        Opcode.DIF_INSERT,
        Opcode.DIF_STRIP,
        Opcode.DIF_UPDATE,
    ):
        return size
    if op is Opcode.CREATE_DELTA:
        return max(1, size // 8)
    return 0


class DsaDevice:
    """One configured DSA instance attached to a memory system."""

    def __init__(
        self,
        env: Environment,
        memsys: MemorySystem,
        config: Optional[DeviceConfig] = None,
        timing: Optional[DsaTimingParams] = None,
        name: str = "dsa0",
        socket: int = 0,
    ):
        self.env = env
        self.memsys = memsys
        self.config = config or DeviceConfig.single()
        self.config.validate()
        self.timing = timing or DsaTimingParams()
        self.timing.validate()
        self.name = name
        self.socket = socket
        #: Lifecycle state mirrored by the driver: a directly constructed
        #: device is live; driver-registered ones stay down until
        #: :meth:`~repro.runtime.driver.IdxdDriver.enable`.  Schedulers
        #: (``Dml._next_portal``, ``repro.fleet``) consult this to skip
        #: dead portals, and engines abort dispatches against it.
        self.enabled = True
        self.atc = DeviceAtc(
            memsys.iommu,
            entries=self.timing.atc_entries,
            hit_latency=self.timing.atc_hit_ns,
            metrics=env.metrics,
            name=f"{name}.atc",
        )
        self.port = FairShareLink(env, self.timing.fabric_bandwidth, f"{name}.port")
        self._m_completed = env.metrics.counter(f"{name}.descriptors_completed")
        self._m_bytes = env.metrics.counter(f"{name}.bytes_processed")

        self._wqs: Dict[int, WorkQueue] = {
            wq_cfg.wq_id: WorkQueue(env, wq_cfg, owner=name) for wq_cfg in self.config.wqs
        }
        self.groups: Dict[int, Group] = {}
        for group_cfg in self.config.groups:
            group = Group(env, group_cfg, [self._wqs[i] for i in group_cfg.wq_ids])
            for engine_id in group_cfg.engine_ids:
                group.attach_engine(ProcessingEngine(self, group, engine_id))
            self.groups[group_cfg.group_id] = group

        self._spaces: Dict[int, AddressSpace] = {}
        self._inflight_write_bytes = 0.0
        self.descriptors_completed = 0
        self.bytes_processed = 0

    # -- address spaces ---------------------------------------------------------
    @property
    def agent(self) -> str:
        """LLC accounting identity of this device."""
        return self.name

    def attach_space(self, space: AddressSpace) -> None:
        """Register a process (PASID) with the device and IOMMU (F1)."""
        if space.pasid in self._spaces:
            return
        if not self.memsys.iommu.is_attached(space.pasid):
            self.memsys.iommu.attach(space.pasid, space.page_table)
        self._spaces[space.pasid] = space

    def space_for(self, pasid: int) -> AddressSpace:
        if pasid not in self._spaces:
            raise KeyError(
                f"PASID {pasid} not attached to {self.name}; call attach_space() first"
            )
        return self._spaces[pasid]

    # -- work queues --------------------------------------------------------------
    def wq(self, wq_id: int) -> WorkQueue:
        if wq_id not in self._wqs:
            raise KeyError(f"{self.name} has no WQ {wq_id}")
        return self._wqs[wq_id]

    @property
    def wqs(self) -> Dict[int, WorkQueue]:
        return dict(self._wqs)

    # -- submission ------------------------------------------------------------------
    def submit(self, descriptor: Descriptor, wq_id: int = 0, source: Optional[str] = None) -> bool:
        """Place a descriptor into a WQ (the portal write itself).

        Returns False when a shared WQ is full (ENQCMD retry status).
        Instruction-cost accounting (MOVDIR64B vs ENQCMD) lives in
        :mod:`repro.runtime.submit`; this is the device-side effect.
        ``source`` tags the submitter for per-tenant reject attribution
        on shared queues (see :meth:`repro.dsa.wq.WorkQueue.submit`).
        """
        if descriptor.completion_event is None:
            descriptor.completion_event = Event(self.env)
        accepted = self.wq(wq_id).submit(descriptor, source=source)
        if accepted:
            self._inflight_write_bytes += estimate_write_bytes(descriptor)
            self._update_llc_pressure()
        return accepted

    def _update_llc_pressure(self) -> None:
        demand = self.timing.fabric_bandwidth if self._inflight_write_bytes > 0 else 0.0
        self.memsys.llc.register_io_stream(
            self.agent, self._inflight_write_bytes, demand_rate=demand
        )

    def submit_raw(self, image: bytes, wq_id: int = 0) -> "WorkDescriptor":
        """Submit a 64-byte portal image (what MOVDIR64B writes).

        Decodes the wire format and enqueues the descriptor; returns
        the decoded object so callers can poll its completion record.
        """
        from repro.dsa.wire import unpack_descriptor

        descriptor = unpack_descriptor(image)
        self.submit(descriptor, wq_id)
        return descriptor

    # -- telemetry (what the PCM library exposes, §5) --------------------------------------
    def telemetry(self) -> Dict[str, object]:
        """Hardware-counter-style snapshot of this instance.

        Mirrors what Intel PCM reads from a DSA instance: request
        counts, inbound/outbound traffic, plus model-level extras
        (ATC hit rate, WQ occupancy, port utilization).
        """
        return {
            "descriptors_completed": self.descriptors_completed,
            "bytes_processed": self.bytes_processed,
            "port_bytes": self.port.bytes_completed,
            "atc_hit_rate": self.atc.hit_rate,
            "wq_occupancy": {wq_id: wq.occupancy for wq_id, wq in self._wqs.items()},
            "wq_enqueued": {wq_id: wq.enqueued for wq_id, wq in self._wqs.items()},
            "wq_rejected": {wq_id: wq.rejected for wq_id, wq in self._wqs.items()},
            "inflight_write_bytes": self._inflight_write_bytes,
        }

    # -- lifecycle (called by the driver) ------------------------------------------------
    def abort_queued(self, status: StatusCode = StatusCode.DEVICE_DISABLED) -> int:
        """Abort every descriptor still sitting in a WQ (device disable).

        Queued work never reached an engine, so no bytes moved: each
        completion record reports ``status`` with ``bytes_completed=0``
        and its waiters wake immediately — the recovery/fleet layer
        re-routes them to a surviving device or to software.  Returns
        the number of aborted descriptors.
        """
        aborted = 0
        for wq in self._wqs.values():
            while not wq.is_empty:
                descriptor = wq.pop()
                self._inflight_write_bytes = max(
                    0.0, self._inflight_write_bytes - estimate_write_bytes(descriptor)
                )
                self._abort_descriptor(descriptor, status)
                aborted += 1
        if aborted:
            self._update_llc_pressure()
            self.env.metrics.counter(f"{self.name}.disable_aborts").add(aborted)
        return aborted

    def _abort_descriptor(self, descriptor: Descriptor, status: StatusCode) -> None:
        if isinstance(descriptor, BatchDescriptor):
            for member in descriptor.descriptors:
                self._abort_descriptor(member, status)
        descriptor.completion.status = status
        descriptor.completion.bytes_completed = 0
        descriptor.times.completed = self.env.now
        event = descriptor.completion_event
        if event is not None and not event.triggered:
            event.succeed(descriptor)

    # -- completion (called by engines) --------------------------------------------------
    def _complete(self, descriptor: Descriptor) -> None:
        if isinstance(descriptor, WorkDescriptor):
            # Batch containers don't carry payload themselves: their
            # write bytes were added at submit and are drained here as
            # each member work descriptor completes.
            self.descriptors_completed += 1
            self.bytes_processed += descriptor.size
            self._m_completed.add()
            self._m_bytes.add(descriptor.size)
            self._inflight_write_bytes = max(
                0.0, self._inflight_write_bytes - estimate_write_bytes(descriptor)
            )
            self._update_llc_pressure()
        event = descriptor.completion_event
        if event is not None and not event.triggered:
            event.succeed(descriptor)
