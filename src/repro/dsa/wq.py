"""On-device work queues (dedicated and shared).

A WQ holds submitted descriptors until the group arbiter dispatches
them.  The submission contract mirrors hardware:

* **DWQ** — software owns the queue and must track occupancy; writing a
  descriptor into a full DWQ is a software bug and raises
  :class:`~repro.dsa.errors.SubmissionError`.
* **SWQ** — ENQCMD returns a retry status when the queue is full;
  :meth:`WorkQueue.submit` returns ``False`` and the submitter retries.

Observability: each queue keeps a time-weighted occupancy gauge and
enqueue/reject counters under ``<owner>.wq<id>.*`` in the environment's
metrics registry, and opens a ``queue`` span on the descriptor's trace
track from enqueue until the arbiter dispatches it.

Per-submitter attribution: SWQs are *shared* — hundreds of tenants can
ENQCMD into one queue, and a global reject/retry count cannot say who
a retry storm is punishing.  :meth:`WorkQueue.submit` takes an optional
``source`` tag and :meth:`WorkQueue.record_retries` is the one place
retry counters are named, so both the aggregate family
(``<owner>.wq<id>.enqcmd_retries`` / ``.rejected``) and the per-source
family (``<owner>.wq<id>.source.<tag>.enqcmd_retries`` / ``.rejected``)
stay on the OBSERVABILITY.md naming convention instead of being
re-derived by every submitter.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Union

from repro.dsa.config import WqConfig, WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import SubmissionError
from repro.faults.inject import active_injector
from repro.sim.engine import Environment

Descriptor = Union[WorkDescriptor, BatchDescriptor]


class WorkQueue:
    """Bounded descriptor queue with an enqueue notification hook."""

    __slots__ = (
        "env",
        "config",
        "name",
        "_items",
        "on_enqueue",
        "enqueued",
        "rejected",
        "_m_occupancy",
        "_m_enqueued",
        "_m_rejected",
    )

    def __init__(self, env: Environment, config: WqConfig, owner: str = "dsa"):
        config.validate()
        self.env = env
        self.config = config
        self.name = f"{owner}.wq{config.wq_id}"
        # deque: pop() drains from the head; list.pop(0) made large-WQ
        # drains quadratic.
        self._items: Deque[Descriptor] = deque()
        #: Set by the owning group; fired on every successful enqueue.
        self.on_enqueue: Optional[Callable[["WorkQueue"], None]] = None
        self.enqueued = 0
        self.rejected = 0
        metrics = env.metrics
        self._m_occupancy = metrics.gauge(f"{self.name}.occupancy")
        self._m_enqueued = metrics.counter(f"{self.name}.enqueued")
        self._m_rejected = metrics.counter(f"{self.name}.rejected")

    @property
    def wq_id(self) -> int:
        return self.config.wq_id

    @property
    def mode(self) -> WqMode:
        return self.config.mode

    @property
    def priority(self) -> int:
        return self.config.priority

    @property
    def size(self) -> int:
        return self.config.size

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.config.size

    @property
    def is_empty(self) -> bool:
        return not self._items

    def submit(self, descriptor: Descriptor, source: Optional[str] = None) -> bool:
        """Enqueue one descriptor; semantics depend on the WQ mode.

        ``source`` tags the submitter (a tenant, a core, a runtime
        layer) so rejects are attributable per submitter on a shared
        queue; ``None`` keeps the aggregate-only accounting.
        """
        if self.config.mode is WqMode.SHARED:
            injector = active_injector()
            if injector is not None and injector.swq_reject():
                # Injected congestion: bounce the ENQCMD as if full.
                self.rejected += 1
                self._m_rejected.add()
                self.env.metrics.counter(f"{self.name}.injected_rejects").add()
                if source is not None:
                    self.env.metrics.counter(
                        f"{self.name}.source.{source}.rejected"
                    ).add()
                return False
        if self.is_full:
            self.rejected += 1
            self._m_rejected.add()
            if source is not None:
                self.env.metrics.counter(f"{self.name}.source.{source}.rejected").add()
            if self.config.mode is WqMode.DEDICATED:
                raise SubmissionError(
                    f"MOVDIR64B to full DWQ {self.wq_id} "
                    f"({self.occupancy}/{self.size} entries) — software must "
                    "track DWQ credits"
                )
            return False  # ENQCMD retry indication
        descriptor.times.submitted = self.env.now
        self._items.append(descriptor)
        self.enqueued += 1
        self._m_enqueued.add()
        self._m_occupancy.update(self.env.now, len(self._items))
        tracer = self.env.tracer
        if tracer.enabled:
            if descriptor.trace_track < 0:
                descriptor.trace_track = tracer.next_track()
            tracer.begin(
                self.env.now, "queued", "queue", self.name, descriptor.trace_track
            )
        if self.on_enqueue is not None:
            self.on_enqueue(self)
        return True

    def record_retries(self, retries: int, source: Optional[str] = None) -> None:
        """Book ``retries`` failed ENQCMDs against this queue.

        The canonical naming choke point for the retry metric family:
        submitters (``repro.runtime.submit``, the traffic load
        generator) call this instead of assembling
        ``<owner>.wq<id>.enqcmd_retries`` strings themselves, and a
        ``source`` tag adds the per-submitter series alongside the
        aggregate.  Zero-retry submissions are free — no counter is
        created.
        """
        if retries <= 0:
            return
        metrics = self.env.metrics
        metrics.counter(f"{self.name}.enqcmd_retries").add(retries)
        if source is not None:
            metrics.counter(f"{self.name}.source.{source}.enqcmd_retries").add(retries)

    def pop(self) -> Descriptor:
        """Remove and return the head descriptor (arbiter only)."""
        if not self._items:
            raise RuntimeError(f"pop from empty WQ {self.wq_id}")
        descriptor = self._items.popleft()
        self._m_occupancy.update(self.env.now, len(self._items))
        tracer = self.env.tracer
        if tracer.enabled and descriptor.trace_track >= 0:
            tracer.end(
                self.env.now, "queued", "queue", self.name, descriptor.trace_track
            )
        return descriptor
