"""On-device work queues (dedicated and shared).

A WQ holds submitted descriptors until the group arbiter dispatches
them.  The submission contract mirrors hardware:

* **DWQ** — software owns the queue and must track occupancy; writing a
  descriptor into a full DWQ is a software bug and raises
  :class:`~repro.dsa.errors.SubmissionError`.
* **SWQ** — ENQCMD returns a retry status when the queue is full;
  :meth:`WorkQueue.submit` returns ``False`` and the submitter retries.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Union

from repro.dsa.config import WqConfig, WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import SubmissionError
from repro.sim.engine import Environment

Descriptor = Union[WorkDescriptor, BatchDescriptor]


class WorkQueue:
    """Bounded descriptor queue with an enqueue notification hook."""

    def __init__(self, env: Environment, config: WqConfig):
        config.validate()
        self.env = env
        self.config = config
        self._items: List[Descriptor] = []
        #: Set by the owning group; fired on every successful enqueue.
        self.on_enqueue: Optional[Callable[["WorkQueue"], None]] = None
        self.enqueued = 0
        self.rejected = 0

    @property
    def wq_id(self) -> int:
        return self.config.wq_id

    @property
    def mode(self) -> WqMode:
        return self.config.mode

    @property
    def priority(self) -> int:
        return self.config.priority

    @property
    def size(self) -> int:
        return self.config.size

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.config.size

    @property
    def is_empty(self) -> bool:
        return not self._items

    def submit(self, descriptor: Descriptor) -> bool:
        """Enqueue one descriptor; semantics depend on the WQ mode."""
        if self.is_full:
            self.rejected += 1
            if self.config.mode is WqMode.DEDICATED:
                raise SubmissionError(
                    f"MOVDIR64B to full DWQ {self.wq_id} "
                    f"({self.occupancy}/{self.size} entries) — software must "
                    "track DWQ credits"
                )
            return False  # ENQCMD retry indication
        descriptor.times.submitted = self.env.now
        self._items.append(descriptor)
        self.enqueued += 1
        if self.on_enqueue is not None:
            self.on_enqueue(self)
        return True

    def pop(self) -> Descriptor:
        """Remove and return the head descriptor (arbiter only)."""
        if not self._items:
            raise RuntimeError(f"pop from empty WQ {self.wq_id}")
        return self._items.pop(0)
