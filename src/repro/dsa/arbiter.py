"""Group arbiter: QoS-weighted descriptor dispatch (paper §3.2, F3).

The arbiter picks which WQ feeds the next free PE.  It implements
smooth weighted round-robin over non-empty WQs using the configured
priorities: higher-priority WQs are served proportionally more often,
but no WQ starves — exactly the fairness contract the paper describes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.wq import WorkQueue
from repro.sim.engine import Environment, Event

Descriptor = Union[WorkDescriptor, BatchDescriptor]


class GroupArbiter:
    """Dispatches descriptors from a group's WQs to waiting PEs."""

    def __init__(self, env: Environment, wqs: List[WorkQueue]):
        if not wqs:
            raise ValueError("arbiter needs at least one WQ")
        self.env = env
        self.wqs = list(wqs)
        self._current_weight: Dict[int, int] = {wq.wq_id: 0 for wq in wqs}
        self._waiting_pes: List[Event] = []
        self.dispatched = 0
        owner = self.wqs[0].name.rsplit(".", 1)[0]
        self._m_dispatched = env.metrics.counter(f"{owner}.arbiter.dispatched")
        for wq in self.wqs:
            wq.on_enqueue = self._on_enqueue

    def get(self) -> Event:
        """Event delivering the next descriptor to a PE."""
        event = Event(self.env)
        descriptor = self._select()
        if descriptor is not None:
            event.succeed(descriptor)
        else:
            self._waiting_pes.append(event)
        return event

    def _on_enqueue(self, _wq: WorkQueue) -> None:
        if not self._waiting_pes:
            return
        descriptor = self._select()
        if descriptor is not None:
            self._waiting_pes.pop(0).succeed(descriptor)

    def _select(self) -> Optional[Descriptor]:
        """Smooth weighted round-robin over non-empty WQs."""
        candidates = [wq for wq in self.wqs if not wq.is_empty]
        if not candidates:
            return None
        total = sum(wq.priority for wq in candidates)
        best: Optional[WorkQueue] = None
        for wq in candidates:
            self._current_weight[wq.wq_id] += wq.priority
            if best is None or self._current_weight[wq.wq_id] > self._current_weight[best.wq_id]:
                best = wq
        assert best is not None
        self._current_weight[best.wq_id] -= total
        self.dispatched += 1
        self._m_dispatched.add()
        descriptor = best.pop()
        # The WQ's priority also shapes the descriptor's fabric share
        # while its data streams (QoS under port contention, §3.4).
        descriptor.dispatch_weight = float(best.priority)
        return descriptor
