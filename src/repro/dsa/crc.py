"""Table-driven CRC implementations used by the operation layer.

DSA's CRC Generation operation produces a CRC-32C (Castagnoli)
checksum, the storage-stack polynomial that SPDK's data-digest path
offloads (paper Appendix C).  The T10-DIF guard field uses CRC-16/T10.
Both are implemented from first principles (reflected and
non-reflected table-driven, no zlib/binascii), so they are testable and
usable by the functional layer on raw numpy byte arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: CRC-32C (Castagnoli), reflected. Used by DSA CRC generation.
POLY_CRC32C = 0x1EDC6F41
#: CRC-32 (IEEE 802.3), reflected.  Offered for comparison baselines.
POLY_CRC32_IEEE = 0x04C11DB7
#: CRC-16/T10-DIF, non-reflected.  Guard tag of the DIF format.
POLY_CRC16_T10 = 0x8BB7

Bytes = Union[bytes, bytearray, memoryview, np.ndarray]


def _reflect(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def _make_reflected_table(poly: int, width: int) -> np.ndarray:
    """Byte-at-a-time table for a reflected CRC of ``width`` bits."""
    reflected_poly = _reflect(poly, width)
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ reflected_poly if crc & 1 else crc >> 1
        table[byte] = crc
    return table


def _make_forward_table(poly: int, width: int) -> np.ndarray:
    """Byte-at-a-time table for a non-reflected CRC."""
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    table = np.zeros(256, dtype=np.uint64)
    for byte in range(256):
        crc = byte << (width - 8)
        for _ in range(8):
            crc = ((crc << 1) ^ poly) & mask if crc & top else (crc << 1) & mask
        table[byte] = crc
    return table


_CRC32C_TABLE = _make_reflected_table(POLY_CRC32C, 32)
_CRC32_IEEE_TABLE = _make_reflected_table(POLY_CRC32_IEEE, 32)
_CRC16_T10_TABLE = _make_forward_table(POLY_CRC16_T10, 16)


def _as_byte_array(data: Bytes) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise TypeError(f"expected uint8 array, got {data.dtype}")
        return data
    return np.frombuffer(bytes(data), dtype=np.uint8)


def _reflected_crc(data: np.ndarray, table: np.ndarray, seed: int) -> int:
    crc = seed
    for byte in data.tolist():
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return crc


def crc32c(data: Bytes, seed: int = 0) -> int:
    """CRC-32C of ``data``; ``seed`` allows chained/partial computation.

    Matches the conventional CRC-32C definition: init and final XOR
    with 0xFFFFFFFF, reflected input/output.
    """
    arr = _as_byte_array(data)
    return _reflected_crc(arr, _CRC32C_TABLE, (seed ^ 0xFFFFFFFF)) ^ 0xFFFFFFFF


def crc32_ieee(data: Bytes, seed: int = 0) -> int:
    """Standard zlib-compatible CRC-32."""
    arr = _as_byte_array(data)
    return _reflected_crc(arr, _CRC32_IEEE_TABLE, (seed ^ 0xFFFFFFFF)) ^ 0xFFFFFFFF


def crc16_t10(data: Bytes, seed: int = 0) -> int:
    """CRC-16/T10-DIF guard-tag checksum (non-reflected, init 0)."""
    arr = _as_byte_array(data)
    crc = seed & 0xFFFF
    for byte in arr.tolist():
        crc = (int(_CRC16_T10_TABLE[((crc >> 8) ^ byte) & 0xFF]) ^ (crc << 8)) & 0xFFFF
    return crc
