"""Intel DSA device model — the paper's subject system.

Everything DSA-specific lives here: descriptor formats and operations
(Table 1 of the paper, executed functionally on real bytes), work
queues (dedicated/shared), groups with configurable processing engines
and QoS arbitration, the batch unit, the device-side address
translation cache, and the timing model calibrated against the paper's
published shapes (see DESIGN.md §3).
"""

from repro.dsa.opcodes import Opcode, DescriptorFlags
from repro.dsa.descriptor import (
    BatchDescriptor,
    CompletionRecord,
    DescriptorPool,
    WorkDescriptor,
)
from repro.dsa.errors import StatusCode
from repro.dsa.config import (
    DeviceConfig,
    DsaTimingParams,
    EngineConfig,
    GroupConfig,
    WqConfig,
    WqMode,
)
from repro.dsa.device import DsaDevice
from repro.dsa.wq import WorkQueue

__all__ = [
    "Opcode",
    "DescriptorFlags",
    "WorkDescriptor",
    "DescriptorPool",
    "BatchDescriptor",
    "CompletionRecord",
    "StatusCode",
    "DeviceConfig",
    "GroupConfig",
    "WqConfig",
    "WqMode",
    "EngineConfig",
    "DsaTimingParams",
    "DsaDevice",
    "WorkQueue",
]
