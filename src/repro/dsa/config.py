"""Device configuration records and the calibrated timing parameters.

Configuration mirrors what ``accel-config`` validates on real hardware
(paper §3.3): up to 8 work queues sharing 128 entries, 4 engines, and
flexible group assignment.  :class:`DsaTimingParams` is the single
place all DSA-side latency/bandwidth calibration lives; DESIGN.md §3
lists the published anchors these values were fit against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dsa.errors import ConfigurationError

#: Architectural resource limits of one DSA instance.
MAX_WQS = 8
MAX_ENGINES = 4
MAX_GROUPS = 4
TOTAL_WQ_ENTRIES = 128
MAX_WQ_PRIORITY = 15


class WqMode(enum.Enum):
    """Dedicated (MOVDIR64B) vs shared (ENQCMD) work queues (§3.2)."""

    DEDICATED = "dedicated"
    SHARED = "shared"


@dataclass(frozen=True)
class DsaTimingParams:
    """Calibrated latencies (ns) and bandwidths (GB/s) of the model.

    Shape anchors (DESIGN.md §3): sync crossover vs software memcpy at
    ~4 KB, async crossover ~256 B, 30 GB/s fabric saturation, ENQCMD
    batch-of-n ≈ n streaming cores, leaky-DMA collapse to ~23 GB/s per
    device.
    """

    #: MOVDIR64B portal write (posted — core continues immediately).
    portal_write_ns: float = 45.0
    #: ENQCMD/ENQCMDS non-posted round trip (retry status returned).
    enqcmd_ns: float = 350.0
    #: Group arbiter handing a descriptor from WQ head to a PE.
    dispatch_ns: float = 15.0
    #: Serial per-descriptor processing in the PE's descriptor unit.
    pe_setup_ns: float = 40.0
    #: ATC hit latency; misses add IOMMU costs.
    atc_hit_ns: float = 8.0
    #: Batch unit: one memory round trip to fetch the descriptor array.
    batch_fetch_base_ns: float = 110.0
    batch_fetch_per_descriptor_ns: float = 6.0
    #: Completion-record write (always steered to LLC).
    completion_write_ns: float = 25.0
    #: Per-device fabric throughput limit (the 30 GB/s saturation).
    fabric_bandwidth: float = 30.0
    #: Concurrent descriptors one PE's read buffers keep in flight
    #: (the device has 128 read buffers; ~32 per engine when four are
    #: configured — §3.4's configurable read-buffer allocation).
    read_buffers_per_engine: int = 32
    #: Extra fabric demand per written byte in the leaky-DMA regime
    #: (DRAM write path stalls); 30/1.3 ≈ 23 GB/s per device (Fig 10).
    leaky_write_amplification: float = 1.3
    #: Device-side address translation cache capacity (entries).
    atc_entries: int = 128
    #: Streaming rate of the cache-flush operation.
    cache_flush_bandwidth: float = 100.0

    def validate(self) -> None:
        positive = (
            self.portal_write_ns,
            self.enqcmd_ns,
            self.dispatch_ns,
            self.pe_setup_ns,
            self.fabric_bandwidth,
            self.cache_flush_bandwidth,
        )
        if any(v <= 0 for v in positive):
            raise ConfigurationError("timing parameters must be positive")
        if self.read_buffers_per_engine < 1:
            raise ConfigurationError("need at least one read buffer per engine")
        if self.leaky_write_amplification < 1.0:
            raise ConfigurationError("leaky amplification cannot be < 1")


@dataclass(frozen=True)
class WqConfig:
    """One work queue: size (entries), mode, and QoS priority."""

    wq_id: int
    size: int = 32
    mode: WqMode = WqMode.DEDICATED
    priority: int = 1

    def validate(self) -> None:
        if not 0 <= self.wq_id < MAX_WQS:
            raise ConfigurationError(f"wq id {self.wq_id} out of range [0,{MAX_WQS})")
        if not 1 <= self.size <= TOTAL_WQ_ENTRIES:
            raise ConfigurationError(f"wq size {self.size} out of range [1,{TOTAL_WQ_ENTRIES}]")
        if not 1 <= self.priority <= MAX_WQ_PRIORITY:
            raise ConfigurationError(
                f"priority {self.priority} out of range [1,{MAX_WQ_PRIORITY}]"
            )


@dataclass(frozen=True)
class EngineConfig:
    """One processing engine (identity only; rates come from timing)."""

    engine_id: int

    def validate(self) -> None:
        if not 0 <= self.engine_id < MAX_ENGINES:
            raise ConfigurationError(
                f"engine id {self.engine_id} out of range [0,{MAX_ENGINES})"
            )


#: Read buffers shared by the whole device (§3.4: configurable per use).
TOTAL_READ_BUFFERS = 128


@dataclass(frozen=True)
class GroupConfig:
    """A group: the WQs feeding it and the PEs serving it (§3.2).

    ``read_buffers_per_engine`` optionally overrides the device-wide
    default — the §3.4 QoS knob: shrinking one group's buffers limits
    its achievable bandwidth but frees buffers for other groups.
    """

    group_id: int
    wq_ids: Tuple[int, ...]
    engine_ids: Tuple[int, ...]
    read_buffers_per_engine: Optional[int] = None

    def validate(self) -> None:
        if not 0 <= self.group_id < MAX_GROUPS:
            raise ConfigurationError(f"group id {self.group_id} out of range [0,{MAX_GROUPS})")
        if not self.wq_ids:
            raise ConfigurationError(f"group {self.group_id} has no work queues")
        if not self.engine_ids:
            raise ConfigurationError(f"group {self.group_id} has no engines")
        if self.read_buffers_per_engine is not None and self.read_buffers_per_engine < 1:
            raise ConfigurationError(
                f"group {self.group_id}: need at least one read buffer per engine"
            )


@dataclass(frozen=True)
class DeviceConfig:
    """Full device layout submitted via the accel-config path."""

    wqs: Tuple[WqConfig, ...]
    engines: Tuple[EngineConfig, ...]
    groups: Tuple[GroupConfig, ...]

    def validate(self) -> None:
        if len(self.wqs) > MAX_WQS:
            raise ConfigurationError(f"too many WQs: {len(self.wqs)} > {MAX_WQS}")
        if len(self.engines) > MAX_ENGINES:
            raise ConfigurationError(f"too many engines: {len(self.engines)} > {MAX_ENGINES}")
        if len(self.groups) > MAX_GROUPS:
            raise ConfigurationError(f"too many groups: {len(self.groups)} > {MAX_GROUPS}")
        for wq in self.wqs:
            wq.validate()
        for engine in self.engines:
            engine.validate()
        for group in self.groups:
            group.validate()
        if sum(wq.size for wq in self.wqs) > TOTAL_WQ_ENTRIES:
            raise ConfigurationError(
                f"WQ entries exceed device total of {TOTAL_WQ_ENTRIES}"
            )
        wq_ids = [wq.wq_id for wq in self.wqs]
        if len(set(wq_ids)) != len(wq_ids):
            raise ConfigurationError("duplicate WQ ids")
        engine_ids = [engine.engine_id for engine in self.engines]
        if len(set(engine_ids)) != len(engine_ids):
            raise ConfigurationError("duplicate engine ids")
        group_ids = [group.group_id for group in self.groups]
        if len(set(group_ids)) != len(group_ids):
            raise ConfigurationError("duplicate group ids")
        self._check_memberships(set(wq_ids), set(engine_ids))
        self._check_read_buffers()

    def _check_read_buffers(self) -> None:
        allocated = 0
        for group in self.groups:
            if group.read_buffers_per_engine is not None:
                allocated += group.read_buffers_per_engine * len(group.engine_ids)
        if allocated > TOTAL_READ_BUFFERS:
            raise ConfigurationError(
                f"read buffers over-committed: {allocated} > {TOTAL_READ_BUFFERS}"
            )

    def _check_memberships(self, wq_ids: set, engine_ids: set) -> None:
        seen_wqs: Dict[int, int] = {}
        seen_engines: Dict[int, int] = {}
        for group in self.groups:
            for wq_id in group.wq_ids:
                if wq_id not in wq_ids:
                    raise ConfigurationError(f"group {group.group_id}: unknown WQ {wq_id}")
                if wq_id in seen_wqs:
                    raise ConfigurationError(f"WQ {wq_id} assigned to multiple groups")
                seen_wqs[wq_id] = group.group_id
            for engine_id in group.engine_ids:
                if engine_id not in engine_ids:
                    raise ConfigurationError(
                        f"group {group.group_id}: unknown engine {engine_id}"
                    )
                if engine_id in seen_engines:
                    raise ConfigurationError(
                        f"engine {engine_id} assigned to multiple groups"
                    )
                seen_engines[engine_id] = group.group_id

    # -- convenience layouts -------------------------------------------------
    @classmethod
    def single(
        cls,
        wq_size: int = 32,
        n_engines: int = 1,
        mode: WqMode = WqMode.DEDICATED,
        priority: int = 1,
    ) -> "DeviceConfig":
        """One group, one WQ, ``n_engines`` PEs — the paper's §4 setup."""
        return cls(
            wqs=(WqConfig(wq_id=0, size=wq_size, mode=mode, priority=priority),),
            engines=tuple(EngineConfig(i) for i in range(n_engines)),
            groups=(GroupConfig(0, wq_ids=(0,), engine_ids=tuple(range(n_engines))),),
        )

    @classmethod
    def multi_wq(
        cls,
        n_wqs: int,
        wq_size: int = 16,
        mode: WqMode = WqMode.DEDICATED,
        engines_per_wq: int = 1,
        priorities: Optional[List[int]] = None,
    ) -> "DeviceConfig":
        """``n_wqs`` groups of one WQ + ``engines_per_wq`` PEs each (Fig 9)."""
        priorities = priorities or [1] * n_wqs
        wqs = tuple(
            WqConfig(wq_id=i, size=wq_size, mode=mode, priority=priorities[i])
            for i in range(n_wqs)
        )
        engines = tuple(EngineConfig(i) for i in range(n_wqs * engines_per_wq))
        groups = tuple(
            GroupConfig(
                i,
                wq_ids=(i,),
                engine_ids=tuple(range(i * engines_per_wq, (i + 1) * engines_per_wq)),
            )
            for i in range(n_wqs)
        )
        return cls(wqs=wqs, engines=engines, groups=groups)

    @classmethod
    def paper_default(cls) -> "DeviceConfig":
        """Table 2 layout: 8 WQs and 4 engines in one group."""
        return cls(
            wqs=tuple(WqConfig(wq_id=i, size=16) for i in range(8)),
            engines=tuple(EngineConfig(i) for i in range(4)),
            groups=(GroupConfig(0, wq_ids=tuple(range(8)), engine_ids=(0, 1, 2, 3)),),
        )
