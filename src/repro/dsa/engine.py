"""Processing engine: the unit that executes work descriptors.

The PE splits descriptor handling into a *serial* stage (dispatch +
descriptor-unit setup, one descriptor at a time) and a *pipelined* data
stage (translation, memory reads, fabric streaming, destination
writes) that overlaps across up to ``read_buffers_per_engine``
descriptors.  This split is what produces the paper's two regimes:

* synchronous offload pays the whole chain per descriptor (the ~4 KB
  crossover of Fig 2a and the break-even of Fig 6a);
* asynchronous offload amortizes everything but the serial stage, so a
  single PE saturates the 30 GB/s fabric at moderate sizes (Figs 3, 4)
  and small transfers scale with more PEs (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Tuple, TYPE_CHECKING

from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, Opcode, RESUMABLE_OPCODES
from repro.dsa import ops as functional
from repro.faults.inject import active_injector
from repro.mem.address import AddressSpace, Buffer
from repro.mem.system import SAME_NODE_TURNAROUND_NS, TierKind
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dsa.device import DsaDevice
    from repro.dsa.group import Group


@dataclass
class IoDemand:
    """Byte movement a descriptor asks of the memory system.

    Entries are ``(buffer, va, nbytes)``: ``va`` is the descriptor's
    operand address, which may sit *inside* ``buffer`` — a resumed
    BOF=0 clone starts at the fault offset, so translation must cover
    ``[va, va + nbytes)``, not the containing buffer's base.
    """

    reads: List[Tuple[Buffer, int, int]] = field(default_factory=list)
    writes: List[Tuple[Buffer, int, int]] = field(default_factory=list)

    @property
    def read_bytes(self) -> int:
        return sum(nbytes for _buf, _va, nbytes in self.reads)

    @property
    def write_bytes(self) -> int:
        return sum(nbytes for _buf, _va, nbytes in self.writes)

    @property
    def port_bytes(self) -> int:
        """Fabric demand: the larger of the two directions."""
        return max(self.read_bytes, self.write_bytes)


def io_demand(work: WorkDescriptor, space: AddressSpace) -> IoDemand:
    """Resolve a descriptor's buffers and compute its byte movement."""
    demand = IoDemand()
    op, size = work.opcode, work.size

    def read(va: int, nbytes: int) -> None:
        if nbytes > 0:
            demand.reads.append((space.buffer_at(va), va, nbytes))

    def write(va: int, nbytes: int) -> None:
        if nbytes > 0:
            demand.writes.append((space.buffer_at(va), va, nbytes))

    if op in (Opcode.NOOP, Opcode.DRAIN, Opcode.CACHE_FLUSH):
        return demand
    if op in (Opcode.MEMMOVE, Opcode.COPY_CRC):
        read(work.src, size)
        write(work.dst, size)
    elif op is Opcode.DUALCAST:
        read(work.src, size)
        write(work.dst, size)
        write(work.dst2, size)
    elif op is Opcode.FILL:
        write(work.dst, size)
    elif op in (Opcode.COMPARE, Opcode.CREATE_DELTA):
        read(work.src, size)
        read(work.src2, size)
        if op is Opcode.CREATE_DELTA:
            # Delta size is data-dependent; charge an eighth of the
            # source as a representative record (one entry per ~8 chunks).
            write(work.dst, max(1, size // 8))
    elif op is Opcode.APPLY_DELTA:
        read(work.src, max(1, work.delta_size))
        read(work.dst, size)
        write(work.dst, size)
    elif op in (Opcode.COMPARE_PATTERN, Opcode.CRCGEN, Opcode.DIF_CHECK):
        read(work.src, size)
    elif op in (Opcode.DIF_INSERT, Opcode.DIF_STRIP, Opcode.DIF_UPDATE):
        read(work.src, size)
        write(work.dst, size)
    else:  # pragma: no cover - exhaustiveness guard
        raise NotImplementedError(f"no IO profile for {op!r}")
    return demand


class ProcessingEngine:
    """One PE: serial descriptor unit + pipelined data movers."""

    def __init__(self, device: "DsaDevice", group: "Group", engine_id: int):
        self.device = device
        self.group = group
        self.engine_id = engine_id
        self.env: Environment = device.env
        timing = device.timing
        buffers = group.config.read_buffers_per_engine or timing.read_buffers_per_engine
        self.read_buffers = Resource(self.env, capacity=buffers)
        self.descriptors_processed = 0
        self._inflight: List[Event] = []
        self.agent = f"{device.name}.pe{engine_id}"
        self._m_data_phases = self.env.metrics.counter(f"{self.agent}.data_phases")
        self._process = self.env.process(self._run(), name=f"{device.name}.pe{engine_id}")

    # -- main loop ------------------------------------------------------------
    def _run(self) -> Generator:
        timing = self.device.timing
        while True:
            descriptor = yield self.group.arbiter.get()
            descriptor.times.dispatched = self.env.now
            yield self.env.timeout(timing.dispatch_ns)
            if not self.device.enabled:
                # The driver disabled the device between enqueue and
                # dispatch (its WQ drain raced this arbiter pop).
                yield from self._abort_reset(descriptor, counter="disable_aborts")
                continue
            injector = active_injector()
            if injector is not None and injector.device_reset(self.env.now):
                yield from self._abort_reset(descriptor)
                continue
            if isinstance(descriptor, BatchDescriptor):
                yield from self._run_batch(descriptor)
            else:
                yield from self._admit(descriptor, batch_events=None)

    def _abort_reset(self, descriptor, counter: str = "reset_aborts") -> Generator:
        """Transient reset or driver disable: abort mid-flight, drop the ATC.

        Software sees ``DEVICE_DISABLED`` in the completion record and
        is expected to resubmit from scratch (the recovery layer treats
        it as retryable with ``bytes_completed = 0``).
        """
        timing = self.device.timing
        self.device.atc.flush()
        descriptor.completion.status = StatusCode.DEVICE_DISABLED
        descriptor.completion.bytes_completed = 0
        self.env.metrics.counter(f"{self.device.name}.{counter}").add()
        if self.env.tracer.enabled and descriptor.trace_track >= 0:
            self.env.tracer.instant(
                self.env.now, "device_reset", "execute", self.agent, descriptor.trace_track
            )
        yield self.env.timeout(timing.completion_write_ns)
        descriptor.times.completed = self.env.now
        self.device._complete(descriptor)

    def _run_batch(self, batch: BatchDescriptor) -> Generator:
        """Batch unit: fetch the descriptor array, then stream it (F2)."""
        timing = self.device.timing
        invalid = batch.validate()
        if invalid is not None:
            batch.completion.status = invalid
            yield self.env.timeout(timing.completion_write_ns)
            batch.times.completed = self.env.now
            self.device._complete(batch)
            return
        fetch = (
            timing.batch_fetch_base_ns
            + timing.batch_fetch_per_descriptor_ns * len(batch.descriptors)
        )
        tracer = self.env.tracer
        if tracer.enabled and batch.trace_track >= 0:
            tracer.complete(
                self.env.now,
                fetch,
                "batch_fetch",
                "batch",
                self.agent,
                batch.trace_track,
                {"descriptors": len(batch.descriptors)},
            )
        yield self.env.timeout(fetch)
        events: List[Event] = []
        for work in batch.descriptors:
            work.dispatch_weight = batch.dispatch_weight
            yield from self._admit(work, batch_events=events)
        # The engine moves on to the next WQ descriptor; a side process
        # writes the batch completion once every member has finished.
        self.env.process(
            self._finish_batch(batch, events),
            name=f"{self.device.name}.pe{self.engine_id}.batch",
        )

    def _finish_batch(self, batch: BatchDescriptor, events: List[Event]) -> Generator:
        timing = self.device.timing
        if events:
            yield self.env.all_of(events)
        failed = sum(1 for d in batch.descriptors if not d.completion.status.is_success)
        batch.completion.status = StatusCode.BATCH_FAILED if failed else StatusCode.SUCCESS
        batch.completion.bytes_completed = len(batch.descriptors) - failed
        yield self.env.timeout(timing.completion_write_ns)
        batch.times.completed = self.env.now
        self.device._complete(batch)

    def _admit(self, work: WorkDescriptor, batch_events) -> Generator:
        """Serial stage; then hand off to a pipelined data phase."""
        timing = self.device.timing
        yield self.env.timeout(timing.pe_setup_ns)
        invalid = work.validate()
        if invalid is not None:
            work.completion.status = invalid
            yield self.env.timeout(timing.completion_write_ns)
            work.times.completed = self.env.now
            self.device._complete(work)
            return
        if work.opcode is Opcode.DRAIN:
            # Drain: complete only after everything already dispatched
            # to this engine has finished.
            pending = [event for event in self._inflight if not event.triggered]
            if pending:
                yield self.env.all_of(pending)
            work.completion.status = StatusCode.SUCCESS
            yield self.env.timeout(timing.completion_write_ns)
            work.times.completed = self.env.now
            self.device._complete(work)
            return
        if work.flags & DescriptorFlags.FENCE and batch_events:
            yield self.env.all_of(list(batch_events))
        yield self.read_buffers.request()  # stall when the pipeline is full
        data_phase = self.env.process(
            self._data_phase(work), name=f"{self.device.name}.pe{self.engine_id}.data"
        )
        self._inflight = [e for e in self._inflight if not e.triggered]
        self._inflight.append(data_phase)
        if batch_events is not None:
            batch_events.append(data_phase)

    # -- pipelined data stage ----------------------------------------------------
    def _data_phase(self, work: WorkDescriptor) -> Generator:
        device = self.device
        timing = device.timing
        env = self.env
        tracer = env.tracer
        traced = tracer.enabled and work.trace_track >= 0
        agent, track = self.agent, work.trace_track
        try:
            if traced:
                tracer.begin(env.now, "translate", "translate", agent, track)
            space = device.space_for(work.pasid)
            try:
                demand = io_demand(work, space)
            except KeyError:
                # Address not mapped in this PASID's space: the IOMMU
                # reports an unrecoverable translation fault.
                work.completion.status = StatusCode.PAGE_FAULT
                work.completion.fault_address = work.src or work.dst
                if traced:
                    tracer.instant(env.now, "unmapped_address", "translate", agent, track)
                    tracer.end(env.now, "translate", "translate", agent, track)
                yield env.timeout(timing.completion_write_ns)
                work.times.completed = env.now
                device._complete(work)
                return

            # Remote-socket operands translate at their home socket's
            # IOMMU: a UPI round trip plus queueing behind other remote
            # translations (fleet platforms only — see
            # MemorySystem.ats_acquire).
            memsys = device.memsys
            remote_homes: Tuple[int, ...] = ()
            if memsys.model_ats_contention and memsys.topology.sockets > 1:
                homes = {
                    memsys.topology.socket_of(buffer.node)
                    for buffer, _va, _nbytes in demand.reads + demand.writes
                }
                homes.discard(device.socket)
                remote_homes = tuple(sorted(homes))
            ats_ns = (
                memsys.ats_acquire(device.socket, remote_homes) if remote_homes else 0.0
            )

            # Address translation: first page on the critical path,
            # page faults stall for their full service time (BOF=1) or
            # abort the descriptor with a partial completion (BOF=0).
            translate_ns = 0.0
            total_faults = 0
            if work.block_on_fault:
                for _buffer, va, nbytes in demand.reads + demand.writes:
                    latency, faults = device.atc.translate_range(
                        work.pasid, va, nbytes
                    )
                    translate_ns = max(translate_ns, latency)
                    total_faults += faults
            else:
                fault_offset = None
                fault_va = None
                for _buffer, va, nbytes in demand.reads + demand.writes:
                    latency, faults, first_fault = device.atc.translate_range_partial(
                        work.pasid, va, nbytes
                    )
                    translate_ns = max(translate_ns, latency)
                    if faults:
                        offset = min(nbytes, max(0, first_fault - va))
                        if fault_offset is None or offset < fault_offset:
                            fault_offset = offset
                            fault_va = first_fault
                if fault_offset is not None:
                    yield from self._fault_abort(
                        work, space, demand, translate_ns + ats_ns, fault_offset, fault_va
                    )
                    if remote_homes:
                        memsys.ats_release(remote_homes)
                    return
            translate_ns += ats_ns
            if translate_ns:
                yield env.timeout(translate_ns)
            if remote_homes:
                memsys.ats_release(remote_homes)
            if traced:
                tracer.end(
                    env.now,
                    "translate",
                    "translate",
                    agent,
                    track,
                    {"faults": total_faults} if total_faults else None,
                )
                tracer.begin(
                    env.now,
                    "execute",
                    "execute",
                    agent,
                    track,
                    {"opcode": work.opcode.name, "size": work.size},
                )

            if work.opcode is Opcode.CACHE_FLUSH:
                yield env.timeout(work.size / timing.cache_flush_bandwidth)
                self._finish_functional(work, space, demand)
                yield env.timeout(timing.completion_write_ns)
                work.times.completed = env.now
                if traced:
                    tracer.end(env.now, "execute", "execute", agent, track)
                device._complete(work)
                return

            # Source access latency (critical path, once per descriptor).
            read_ns = 0.0
            for buffer, _va, _nbytes in demand.reads:
                read_ns = max(
                    read_ns,
                    device.memsys.read_latency(
                        buffer.node, device.socket, in_llc=buffer.in_llc
                    ),
                )
            if read_ns:
                yield env.timeout(read_ns)

            flows, write_tail = self._build_flows(work, demand)
            if flows:
                yield env.all_of(flows)
            if write_tail:
                yield env.timeout(write_tail)

            self._finish_functional(work, space, demand)
            yield env.timeout(timing.completion_write_ns)
            work.times.completed = env.now
            if traced:
                tracer.end(
                    env.now,
                    "execute",
                    "execute",
                    agent,
                    track,
                    {"status": work.completion.status.name},
                )
            device._complete(work)
        finally:
            self.read_buffers.release()
            self.descriptors_processed += 1
            self._m_data_phases.add()

    def _fault_abort(
        self,
        work: WorkDescriptor,
        space: AddressSpace,
        demand: IoDemand,
        translate_ns: float,
        fault_offset: int,
        fault_va: int,
    ) -> Generator:
        """BOF=0 page fault: finish the head, report partial completion.

        The engine has moved ``fault_offset`` bytes when the faulting
        page's translation comes back unserviced; it writes a completion
        record with ``PAGE_FAULT``, ``bytes_completed`` up to the fault,
        and the faulting address, then moves on — fault resolution is
        software's job (paper §4.3: touch the page, resubmit the rest).
        """
        device = self.device
        timing = device.timing
        env = self.env
        tracer = env.tracer
        traced = tracer.enabled and work.trace_track >= 0
        agent, track = self.agent, work.trace_track
        if translate_ns:
            yield env.timeout(translate_ns)
        if traced:
            tracer.instant(
                env.now, "page_fault", "translate", agent, track, {"va": fault_va}
            )
            tracer.end(env.now, "translate", "translate", agent, track)
        if fault_offset > 0:
            # Move the completed head through the normal data path.
            head = IoDemand(
                reads=[(b, va, min(n, fault_offset)) for b, va, n in demand.reads],
                writes=[(b, va, min(n, fault_offset)) for b, va, n in demand.writes],
            )
            if traced:
                tracer.begin(
                    env.now, "execute", "execute", agent, track,
                    {"opcode": work.opcode.name, "partial": fault_offset},
                )
            read_ns = 0.0
            for buffer, _va, _nbytes in head.reads:
                read_ns = max(
                    read_ns,
                    device.memsys.read_latency(
                        buffer.node, device.socket, in_llc=buffer.in_llc
                    ),
                )
            if read_ns:
                yield env.timeout(read_ns)
            flows, write_tail = self._build_flows(work, head)
            if flows:
                yield env.all_of(flows)
            if write_tail:
                yield env.timeout(write_tail)
            if work.opcode in RESUMABLE_OPCODES:
                buffers = [buf for buf, _va, _n in head.reads + head.writes]
                if buffers and all(buffer.backed for buffer in buffers):
                    functional.execute(work.clone_range(0, fault_offset), space)
            if traced:
                tracer.end(env.now, "execute", "execute", agent, track)
        work.completion.status = StatusCode.PAGE_FAULT
        work.completion.bytes_completed = fault_offset
        work.completion.fault_address = fault_va
        env.metrics.counter(f"{device.name}.partial_completions").add()
        yield env.timeout(timing.completion_write_ns)
        work.times.completed = env.now
        device._complete(work)

    def _build_flows(self, work: WorkDescriptor, demand: IoDemand):
        """Create the bandwidth flows for one descriptor's data."""
        device = self.device
        env = self.env
        memsys = device.memsys
        llc = memsys.llc
        flows: List[Event] = []
        port_bytes = float(demand.port_bytes)
        write_tail = 0.0

        read_nodes = set()
        for buffer, _va, nbytes in demand.reads:
            if buffer.in_llc:
                continue  # LLC sources don't touch the memory links
            read_nodes.add(buffer.node)
            flows.append(memsys.read_flow(buffer.node, nbytes, device.socket))

        for buffer, _va, nbytes in demand.writes:
            if work.cache_control or buffer.in_llc:
                # G3: allocate the destination into the LLC directly.
                llc.touch(device.agent, nbytes, io=False, now=env.now)
                write_tail = max(write_tail, llc.write_latency)
            elif llc.leaky:
                # Leaky-DMA regime: writes spill to DRAM and the write
                # path stalls the engine (Fig 10's per-device drop).
                port_bytes += nbytes * (device.timing.leaky_write_amplification - 1.0)
                flows.append(memsys.write_flow(buffer.node, nbytes, device.socket))
                write_tail = max(
                    write_tail,
                    memsys.write_latency(
                        buffer.node,
                        device.socket,
                        same_node_as_read=buffer.node in read_nodes,
                    ),
                )
            else:
                # Default DDIO path: absorbed by the LLC's IO ways.
                # Non-DRAM destinations (CXL, PMEM) must still reach
                # their medium, so their write links throttle the flow.
                llc.touch(device.agent, nbytes, io=True, now=env.now)
                node = memsys.node(buffer.node)
                if node.kind is not TierKind.DRAM:
                    flows.append(memsys.write_flow(buffer.node, nbytes, device.socket))
                    write_tail = max(
                        write_tail, memsys.write_latency(buffer.node, device.socket)
                    )
                else:
                    penalty = SAME_NODE_TURNAROUND_NS if buffer.node in read_nodes else 0.0
                    hop, _remote = memsys.topology.crossing_cost(device.socket, buffer.node)
                    write_tail = max(write_tail, llc.write_latency + penalty + hop)

        if port_bytes > 0:
            flows.append(device.port.transfer(port_bytes, weight=work.dispatch_weight))
        return flows, write_tail

    def _finish_functional(self, work: WorkDescriptor, space: AddressSpace, demand: IoDemand):
        """Run the real byte operation when buffers are backed."""
        buffers = [buf for buf, _va, _n in demand.reads + demand.writes]
        if buffers and all(buffer.backed for buffer in buffers):
            functional.execute(work, space)
        else:
            work.completion.status = StatusCode.SUCCESS
            work.completion.bytes_completed = work.size
