"""64-byte descriptor wire format (what MOVDIR64B actually writes).

The model usually passes :class:`WorkDescriptor` objects around, but a
real portal write is one 64-byte store.  This module packs/unpacks the
model's canonical encoding — field placement follows the spirit of the
DSA architecture specification's general descriptor (PASID+flags
header, completion address, two sources, two destinations, transfer
size, operation-specific immediate):

======  ====  ==========================================
offset  size  field
======  ====  ==========================================
0       4     PASID (low 20 bits architecturally)
4       2     flags
6       1     opcode
7       1     reserved (zero)
8       8     completion-record address
16      8     source address
24      8     destination address
32      4     transfer size
36      4     delta-record size (APPLY_DELTA)
40      8     second source address
48      8     second destination address
56      8     pattern / operation-specific immediate
======  ====  ==========================================
"""

from __future__ import annotations

import struct

from repro.dsa.descriptor import DESCRIPTOR_BYTES, WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode

_LAYOUT = struct.Struct("<IHBBQQQIIQQQ")
assert _LAYOUT.size == DESCRIPTOR_BYTES


class WireFormatError(ValueError):
    """Raised for malformed 64-byte descriptor images."""


def pack_descriptor(descriptor: WorkDescriptor, completion_address: int = 0) -> bytes:
    """Encode a descriptor into its 64-byte portal image."""
    if not 0 <= descriptor.pasid < 1 << 20:
        raise WireFormatError(f"PASID out of 20-bit range: {descriptor.pasid}")
    if not 0 <= descriptor.size < 1 << 32:
        raise WireFormatError(f"transfer size out of 32-bit range: {descriptor.size}")
    return _LAYOUT.pack(
        descriptor.pasid,
        int(descriptor.flags) & 0xFFFF,
        int(descriptor.opcode) & 0xFF,
        0,
        completion_address,
        descriptor.src,
        descriptor.dst,
        descriptor.size,
        descriptor.delta_size,
        descriptor.src2,
        descriptor.dst2,
        descriptor.pattern,
    )


def unpack_descriptor(image: bytes) -> WorkDescriptor:
    """Decode a 64-byte portal image back into a descriptor.

    DIF contexts are carried out of band in the model (the real
    descriptor encodes them in operation-specific bytes); everything
    else round-trips exactly.
    """
    if len(image) != DESCRIPTOR_BYTES:
        raise WireFormatError(
            f"descriptor image must be {DESCRIPTOR_BYTES} bytes, got {len(image)}"
        )
    (
        pasid,
        flags,
        opcode_raw,
        _reserved,
        _completion_address,
        src,
        dst,
        size,
        delta_size,
        src2,
        dst2,
        pattern,
    ) = _LAYOUT.unpack(image)
    try:
        opcode = Opcode(opcode_raw)
    except ValueError as exc:
        raise WireFormatError(f"unknown opcode byte {opcode_raw:#x}") from exc
    return WorkDescriptor(
        opcode=opcode,
        pasid=pasid,
        flags=DescriptorFlags(flags),
        src=src,
        src2=src2,
        dst=dst,
        dst2=dst2,
        size=size,
        pattern=pattern,
        delta_size=delta_size,
    )
