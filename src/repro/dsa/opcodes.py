"""Operation codes and descriptor flags (paper Table 1).

The numeric values follow the Intel DSA architecture specification's
operation encodings so that descriptors dumped from tests read like the
real thing.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """DSA operation types supported by this model (Table 1)."""

    NOOP = 0x00
    BATCH = 0x01
    DRAIN = 0x02
    MEMMOVE = 0x03
    FILL = 0x04
    COMPARE = 0x05
    COMPARE_PATTERN = 0x06
    CREATE_DELTA = 0x07
    APPLY_DELTA = 0x08
    DUALCAST = 0x09
    CRCGEN = 0x10
    COPY_CRC = 0x11
    DIF_CHECK = 0x12
    DIF_INSERT = 0x13
    DIF_STRIP = 0x14
    DIF_UPDATE = 0x15
    CACHE_FLUSH = 0x20

    @property
    def reads_source(self) -> bool:
        return self not in (Opcode.NOOP, Opcode.DRAIN, Opcode.FILL, Opcode.CACHE_FLUSH)

    @property
    def writes_destination(self) -> bool:
        return self in (
            Opcode.MEMMOVE,
            Opcode.FILL,
            Opcode.CREATE_DELTA,
            Opcode.APPLY_DELTA,
            Opcode.DUALCAST,
            Opcode.COPY_CRC,
            Opcode.DIF_INSERT,
            Opcode.DIF_STRIP,
            Opcode.DIF_UPDATE,
        )

    @property
    def dual_source(self) -> bool:
        """Operations reading two source streams."""
        return self in (Opcode.COMPARE, Opcode.CREATE_DELTA)


class DescriptorFlags(enum.IntFlag):
    """Subset of descriptor flag bits the model honours."""

    NONE = 0
    #: Request a completion record write (almost always set).
    REQUEST_COMPLETION = 1 << 0
    #: Cache control: steer destination writes into the LLC (G3).
    CACHE_CONTROL = 1 << 1
    #: Fence: wait for prior descriptors in the batch before starting.
    FENCE = 1 << 2
    #: Block on page fault instead of partial completion.
    BLOCK_ON_FAULT = 1 << 3
    #: Raise an interrupt on completion (vs. polled record only).
    COMPLETION_INTERRUPT = 1 << 4


#: Transfer-size ceiling per descriptor (DSA spec allows 2^32-1; the
#: utility default is far smaller, this is the model's sanity bound).
MAX_TRANSFER_SIZE = 2**31

#: Maximum descriptors a batch descriptor may reference.
MAX_BATCH_SIZE = 1024

#: Fill/compare-pattern patterns are 8 bytes wide.
PATTERN_BYTES = 8

#: Operations whose partial progress is a usable prefix: software may
#: resume them from ``bytes_completed`` after a BOF=0 page fault.
#: Result-accumulating operations (compare, CRC, delta, DIF) must be
#: restarted from offset 0 instead (DSA spec §"partial completion").
RESUMABLE_OPCODES = frozenset({Opcode.MEMMOVE, Opcode.FILL, Opcode.DUALCAST})
