"""T10 Data Integrity Field (DIF) block operations.

DSA's DIF operations work on streams of fixed-size blocks
(512/520/4096/4104 bytes, paper Table 1).  Each *protected* block is a
data block followed by an 8-byte protection-information (PI) trailer:

=========  =====  ==========================================
field      bytes  contents
=========  =====  ==========================================
guard      2      CRC-16/T10 of the data block (big-endian)
app tag    2      application-defined tag
ref tag    4      logical block number (incrementing)
=========  =====  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.dsa.crc import crc16_t10

PI_BYTES = 8
#: Raw data-block sizes DSA accepts (the 520/4104 forms are these + PI).
DATA_BLOCK_SIZES = (512, 4096)


class DifError(ValueError):
    """A DIF check failed (bad guard, app tag, or ref tag)."""


@dataclass(frozen=True)
class DifContext:
    """Per-transfer DIF parameters (subset of the descriptor fields)."""

    block_size: int = 512
    app_tag: int = 0
    ref_tag_seed: int = 0
    check_guard: bool = True
    check_ref_tag: bool = True

    def validate(self) -> None:
        if self.block_size not in DATA_BLOCK_SIZES:
            raise ValueError(
                f"block size must be one of {DATA_BLOCK_SIZES}, got {self.block_size}"
            )
        if not 0 <= self.app_tag <= 0xFFFF:
            raise ValueError(f"app tag out of 16-bit range: {self.app_tag}")
        if not 0 <= self.ref_tag_seed <= 0xFFFFFFFF:
            raise ValueError(f"ref tag out of 32-bit range: {self.ref_tag_seed}")

    @property
    def protected_block_size(self) -> int:
        return self.block_size + PI_BYTES


def _pack_pi(guard: int, app_tag: int, ref_tag: int) -> np.ndarray:
    pi = np.zeros(PI_BYTES, dtype=np.uint8)
    pi[0] = (guard >> 8) & 0xFF
    pi[1] = guard & 0xFF
    pi[2] = (app_tag >> 8) & 0xFF
    pi[3] = app_tag & 0xFF
    pi[4] = (ref_tag >> 24) & 0xFF
    pi[5] = (ref_tag >> 16) & 0xFF
    pi[6] = (ref_tag >> 8) & 0xFF
    pi[7] = ref_tag & 0xFF
    return pi


def _unpack_pi(pi: np.ndarray) -> Tuple[int, int, int]:
    guard = (int(pi[0]) << 8) | int(pi[1])
    app_tag = (int(pi[2]) << 8) | int(pi[3])
    ref_tag = (int(pi[4]) << 24) | (int(pi[5]) << 16) | (int(pi[6]) << 8) | int(pi[7])
    return guard, app_tag, ref_tag


def _split_blocks(data: np.ndarray, block: int, what: str) -> List[np.ndarray]:
    if len(data) == 0 or len(data) % block:
        raise ValueError(f"{what} length {len(data)} is not a multiple of {block}")
    return [data[i : i + block] for i in range(0, len(data), block)]


def dif_insert(source: np.ndarray, ctx: DifContext) -> np.ndarray:
    """Append PI to each raw block: 512→520 / 4096→4104 expansion."""
    ctx.validate()
    out: List[np.ndarray] = []
    for index, block in enumerate(_split_blocks(source, ctx.block_size, "source")):
        guard = crc16_t10(block)
        out.append(block)
        out.append(_pack_pi(guard, ctx.app_tag, (ctx.ref_tag_seed + index) & 0xFFFFFFFF))
    return np.concatenate(out)


def dif_check(source: np.ndarray, ctx: DifContext) -> int:
    """Verify every protected block; returns blocks checked.

    Raises :class:`DifError` naming the first failing block and field.
    """
    ctx.validate()
    blocks = _split_blocks(source, ctx.protected_block_size, "protected source")
    for index, pblock in enumerate(blocks):
        data, pi = pblock[: ctx.block_size], pblock[ctx.block_size :]
        guard, app_tag, ref_tag = _unpack_pi(pi)
        if ctx.check_guard and guard != crc16_t10(data):
            raise DifError(f"block {index}: guard mismatch")
        if app_tag != ctx.app_tag:
            raise DifError(f"block {index}: app tag {app_tag} != {ctx.app_tag}")
        expected_ref = (ctx.ref_tag_seed + index) & 0xFFFFFFFF
        if ctx.check_ref_tag and ref_tag != expected_ref:
            raise DifError(f"block {index}: ref tag {ref_tag} != {expected_ref}")
    return len(blocks)


def dif_strip(source: np.ndarray, ctx: DifContext, verify: bool = True) -> np.ndarray:
    """Remove PI from each protected block (520→512 / 4104→4096)."""
    ctx.validate()
    if verify:
        dif_check(source, ctx)
    blocks = _split_blocks(source, ctx.protected_block_size, "protected source")
    return np.concatenate([b[: ctx.block_size] for b in blocks])


def dif_update(source: np.ndarray, old_ctx: DifContext, new_ctx: DifContext) -> np.ndarray:
    """Re-tag protected blocks: verify against ``old_ctx``, emit ``new_ctx``."""
    raw = dif_strip(source, old_ctx, verify=True)
    return dif_insert(raw, new_ctx)
