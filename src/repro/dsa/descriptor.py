"""Work descriptors, batch descriptors, and completion records.

A work descriptor is the 64-byte unit software submits through a
portal (paper §3.2).  The model keeps the architecturally meaningful
fields plus timing probes used by the latency-breakdown experiments
(Fig 5): when each lifecycle step happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsa.dif import DifContext
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, MAX_BATCH_SIZE, MAX_TRANSFER_SIZE, Opcode

#: Architectural size of one work descriptor in bytes.
DESCRIPTOR_BYTES = 64
#: Architectural size of one completion record in bytes.
COMPLETION_RECORD_BYTES = 32


@dataclass
class CompletionRecord:
    """What the device writes back when a descriptor finishes."""

    status: StatusCode = StatusCode.NONE
    bytes_completed: int = 0
    #: Operation-specific result: CRC value, compare verdict, delta size.
    result: int = 0
    fault_address: Optional[int] = None

    @property
    def done(self) -> bool:
        """True once the device has written any terminal status."""
        return self.status != StatusCode.NONE


@dataclass
class Timestamps:
    """Lifecycle probe points for the Fig 5 latency breakdown."""

    allocated: Optional[float] = None
    prepared: Optional[float] = None
    submitted: Optional[float] = None
    dispatched: Optional[float] = None
    completed: Optional[float] = None

    def wait_time(self) -> float:
        if self.submitted is None or self.completed is None:
            raise ValueError("descriptor lifecycle incomplete")
        return self.completed - self.submitted


@dataclass
class WorkDescriptor:
    """One 64-byte operation request."""

    opcode: Opcode
    pasid: int = 0
    flags: DescriptorFlags = DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.BLOCK_ON_FAULT
    src: int = 0
    src2: int = 0
    dst: int = 0
    dst2: int = 0
    size: int = 0
    pattern: int = 0
    #: High half of a 16-byte pattern (Table 1: 8/16-byte patterns).
    pattern2: int = 0
    #: Pattern width in bytes: 8 (default) or 16.
    pattern_bytes: int = 8
    dif: Optional[DifContext] = None
    dif_new: Optional[DifContext] = None
    delta_max_size: int = 1 << 17
    #: For APPLY_DELTA: length in bytes of the delta blob at ``src``.
    delta_size: int = 0
    completion: CompletionRecord = field(default_factory=CompletionRecord)
    times: Timestamps = field(default_factory=Timestamps)
    #: Triggered by the device when the completion record is written.
    completion_event: Optional[object] = None
    #: Fabric-share weight, set by the arbiter from the WQ priority
    #: (the §3.4 QoS/traffic-class behaviour under port contention).
    dispatch_weight: float = 1.0
    #: Tracer track (timeline) id for this descriptor's lifecycle spans;
    #: -1 until tracing assigns one (see repro.obs.tracer).
    trace_track: int = -1

    def validate(self) -> Optional[StatusCode]:
        """Static descriptor checks the device performs before execution."""
        if not isinstance(self.opcode, Opcode):
            return StatusCode.INVALID_OPCODE
        if self.opcode not in (Opcode.NOOP, Opcode.DRAIN, Opcode.BATCH):
            if self.size <= 0 or self.size > MAX_TRANSFER_SIZE:
                return StatusCode.INVALID_SIZE
        if self.opcode in (Opcode.FILL, Opcode.COMPARE_PATTERN):
            if not (0 <= self.pattern < 2**64 and 0 <= self.pattern2 < 2**64):
                return StatusCode.INVALID_FLAGS
            if self.pattern_bytes not in (8, 16):
                return StatusCode.INVALID_FLAGS
        dif_opcodes = (Opcode.DIF_CHECK, Opcode.DIF_INSERT, Opcode.DIF_STRIP, Opcode.DIF_UPDATE)
        if self.opcode in dif_opcodes and self.dif is None:
            return StatusCode.INVALID_FLAGS
        return None

    @property
    def cache_control(self) -> bool:
        return bool(self.flags & DescriptorFlags.CACHE_CONTROL)

    @property
    def block_on_fault(self) -> bool:
        return bool(self.flags & DescriptorFlags.BLOCK_ON_FAULT)

    def clone_range(self, offset: int, size: int) -> "WorkDescriptor":
        """A fresh descriptor covering ``[offset, offset + size)``.

        This is how software resumes a partially completed BOF=0
        descriptor (paper §4.3): advance every address operand by the
        completed byte count and resubmit the remainder.  The clone gets
        its own completion record, timestamps, and completion event —
        the original's are already consumed — and inherits the flags,
        pattern, and QoS weight verbatim.  ``offset = 0`` with the full
        size is a plain resubmission clone (e.g. after a device reset).
        """
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"clone_range [{offset}, {offset + size}) outside descriptor "
                f"of size {self.size}"
            )
        return WorkDescriptor(
            opcode=self.opcode,
            pasid=self.pasid,
            flags=self.flags,
            src=self.src + offset if self.src else 0,
            src2=self.src2 + offset if self.src2 else 0,
            dst=self.dst + offset if self.dst else 0,
            dst2=self.dst2 + offset if self.dst2 else 0,
            size=size,
            pattern=self.pattern,
            pattern2=self.pattern2,
            pattern_bytes=self.pattern_bytes,
            dif=self.dif,
            dif_new=self.dif_new,
            delta_max_size=self.delta_max_size,
            delta_size=self.delta_size,
            dispatch_weight=self.dispatch_weight,
        )


@dataclass
class BatchDescriptor:
    """Descriptor pointing at an array of work descriptors (F2)."""

    descriptors: List[WorkDescriptor]
    pasid: int = 0
    flags: DescriptorFlags = DescriptorFlags.REQUEST_COMPLETION
    completion: CompletionRecord = field(default_factory=CompletionRecord)
    times: Timestamps = field(default_factory=Timestamps)
    #: Triggered by the device when the batch completion is written.
    completion_event: Optional[object] = None
    #: Fabric-share weight inherited by the batch's members.
    dispatch_weight: float = 1.0
    #: Tracer track (timeline) id; -1 until tracing assigns one.
    trace_track: int = -1

    def validate(self) -> Optional[StatusCode]:
        if not self.descriptors:
            return StatusCode.INVALID_SIZE
        if len(self.descriptors) > MAX_BATCH_SIZE:
            return StatusCode.INVALID_SIZE
        for descriptor in self.descriptors:
            if isinstance(descriptor, BatchDescriptor):
                return StatusCode.INVALID_OPCODE  # batches cannot nest
        return None

    @property
    def size(self) -> int:
        """Aggregate payload bytes across the batch."""
        return sum(d.size for d in self.descriptors)

    def __len__(self) -> int:
        return len(self.descriptors)
