"""Work descriptors, batch descriptors, and completion records.

A work descriptor is the 64-byte unit software submits through a
portal (paper §3.2).  The model keeps the architecturally meaningful
fields plus timing probes used by the latency-breakdown experiments
(Fig 5): when each lifecycle step happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dsa.dif import DifContext
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, MAX_BATCH_SIZE, MAX_TRANSFER_SIZE, Opcode

#: Architectural size of one work descriptor in bytes.
DESCRIPTOR_BYTES = 64
#: Architectural size of one completion record in bytes.
COMPLETION_RECORD_BYTES = 32


@dataclass(slots=True)
class CompletionRecord:
    """What the device writes back when a descriptor finishes."""

    status: StatusCode = StatusCode.NONE
    bytes_completed: int = 0
    #: Operation-specific result: CRC value, compare verdict, delta size.
    result: int = 0
    fault_address: Optional[int] = None

    @property
    def done(self) -> bool:
        """True once the device has written any terminal status."""
        return self.status != StatusCode.NONE


@dataclass(slots=True)
class Timestamps:
    """Lifecycle probe points for the Fig 5 latency breakdown."""

    allocated: Optional[float] = None
    prepared: Optional[float] = None
    submitted: Optional[float] = None
    dispatched: Optional[float] = None
    completed: Optional[float] = None

    def wait_time(self) -> float:
        if self.submitted is None or self.completed is None:
            raise ValueError("descriptor lifecycle incomplete")
        return self.completed - self.submitted


@dataclass(slots=True)
class WorkDescriptor:
    """One 64-byte operation request.

    ``slots=True`` (here and on the record/timestamp members): a
    million-descriptor run allocates these in bulk, and slotted
    instances are both smaller (no per-object ``__dict__``) and faster
    to field-access in the submission hot path.
    """

    opcode: Opcode
    pasid: int = 0
    flags: DescriptorFlags = DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.BLOCK_ON_FAULT
    src: int = 0
    src2: int = 0
    dst: int = 0
    dst2: int = 0
    size: int = 0
    pattern: int = 0
    #: High half of a 16-byte pattern (Table 1: 8/16-byte patterns).
    pattern2: int = 0
    #: Pattern width in bytes: 8 (default) or 16.
    pattern_bytes: int = 8
    dif: Optional[DifContext] = None
    dif_new: Optional[DifContext] = None
    delta_max_size: int = 1 << 17
    #: For APPLY_DELTA: length in bytes of the delta blob at ``src``.
    delta_size: int = 0
    completion: CompletionRecord = field(default_factory=CompletionRecord)
    times: Timestamps = field(default_factory=Timestamps)
    #: Triggered by the device when the completion record is written.
    completion_event: Optional[object] = None
    #: Fabric-share weight, set by the arbiter from the WQ priority
    #: (the §3.4 QoS/traffic-class behaviour under port contention).
    dispatch_weight: float = 1.0
    #: Tracer track (timeline) id for this descriptor's lifecycle spans;
    #: -1 until tracing assigns one (see repro.obs.tracer).
    trace_track: int = -1

    def validate(self) -> Optional[StatusCode]:
        """Static descriptor checks the device performs before execution."""
        if not isinstance(self.opcode, Opcode):
            return StatusCode.INVALID_OPCODE
        if self.opcode not in (Opcode.NOOP, Opcode.DRAIN, Opcode.BATCH):
            if self.size <= 0 or self.size > MAX_TRANSFER_SIZE:
                return StatusCode.INVALID_SIZE
        if self.opcode in (Opcode.FILL, Opcode.COMPARE_PATTERN):
            if not (0 <= self.pattern < 2**64 and 0 <= self.pattern2 < 2**64):
                return StatusCode.INVALID_FLAGS
            if self.pattern_bytes not in (8, 16):
                return StatusCode.INVALID_FLAGS
        dif_opcodes = (Opcode.DIF_CHECK, Opcode.DIF_INSERT, Opcode.DIF_STRIP, Opcode.DIF_UPDATE)
        if self.opcode in dif_opcodes and self.dif is None:
            return StatusCode.INVALID_FLAGS
        return None

    @property
    def cache_control(self) -> bool:
        return bool(self.flags & DescriptorFlags.CACHE_CONTROL)

    @property
    def block_on_fault(self) -> bool:
        return bool(self.flags & DescriptorFlags.BLOCK_ON_FAULT)

    def clone_range(
        self, offset: int, size: int, pool: Optional["DescriptorPool"] = None
    ) -> "WorkDescriptor":
        """A fresh descriptor covering ``[offset, offset + size)``.

        This is how software resumes a partially completed BOF=0
        descriptor (paper §4.3): advance every address operand by the
        completed byte count and resubmit the remainder.  The clone gets
        its own completion record, timestamps, and completion event —
        the original's are already consumed — and inherits the flags,
        pattern, and QoS weight verbatim.  ``offset = 0`` with the full
        size is a plain resubmission clone (e.g. after a device reset).

        With ``pool``, the clone is built by recycling a released
        descriptor (and its record/timestamp members) instead of
        allocating four objects — the fault-retry storm in
        ``repro.runtime.recovery`` produces clones at line rate.
        """
        if offset < 0 or size <= 0 or offset + size > self.size:
            raise ValueError(
                f"clone_range [{offset}, {offset + size}) outside descriptor "
                f"of size {self.size}"
            )
        if pool is not None:
            recycled = pool.acquire()
            if recycled is not None:
                return self._clone_into(recycled, offset, size)
        return WorkDescriptor(
            opcode=self.opcode,
            pasid=self.pasid,
            flags=self.flags,
            src=self.src + offset if self.src else 0,
            src2=self.src2 + offset if self.src2 else 0,
            dst=self.dst + offset if self.dst else 0,
            dst2=self.dst2 + offset if self.dst2 else 0,
            size=size,
            pattern=self.pattern,
            pattern2=self.pattern2,
            pattern_bytes=self.pattern_bytes,
            dif=self.dif,
            dif_new=self.dif_new,
            delta_max_size=self.delta_max_size,
            delta_size=self.delta_size,
            dispatch_weight=self.dispatch_weight,
        )

    def _clone_into(
        self, target: "WorkDescriptor", offset: int, size: int
    ) -> "WorkDescriptor":
        """Rewrite ``target`` in place as this descriptor's range clone."""
        target.opcode = self.opcode
        target.pasid = self.pasid
        target.flags = self.flags
        target.src = self.src + offset if self.src else 0
        target.src2 = self.src2 + offset if self.src2 else 0
        target.dst = self.dst + offset if self.dst else 0
        target.dst2 = self.dst2 + offset if self.dst2 else 0
        target.size = size
        target.pattern = self.pattern
        target.pattern2 = self.pattern2
        target.pattern_bytes = self.pattern_bytes
        target.dif = self.dif
        target.dif_new = self.dif_new
        target.delta_max_size = self.delta_max_size
        target.delta_size = self.delta_size
        target.dispatch_weight = self.dispatch_weight
        return target


class DescriptorPool:
    """Bounded free list of :class:`WorkDescriptor` objects.

    A recovery loop retiring one clone per fault, or a generator
    resubmitting millions of one-shot descriptors, spends a measurable
    share of its time in allocation (a descriptor is four objects:
    itself, its completion record, its timestamps, plus the field
    defaults).  :meth:`release` parks a descriptor whose lifecycle is
    over; ``clone_range(..., pool=...)`` / :meth:`acquire` reuse it
    after scrubbing the consumed state in place.

    Callers own the proof that nothing else references a released
    descriptor — release is for clones the caller itself created and
    consumed, never for a descriptor handed in by outside code.
    """

    __slots__ = ("limit", "_free", "reuses", "released")

    def __init__(self, limit: int = 256):
        if limit < 0:
            raise ValueError(f"pool limit must be >= 0, got {limit}")
        self.limit = limit
        self._free: List[WorkDescriptor] = []
        self.reuses = 0
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self) -> Optional[WorkDescriptor]:
        """A scrubbed parked descriptor, or None when the pool is empty."""
        if not self._free:
            return None
        self.reuses += 1
        return self._free.pop()

    def release(self, descriptor: WorkDescriptor) -> bool:
        """Park a spent descriptor for reuse; False when full (dropped).

        The consumed members are scrubbed here (not in acquire) so a
        parked descriptor never pins a completion event or fault
        address from its previous life.
        """
        if len(self._free) >= self.limit:
            return False
        completion = descriptor.completion
        completion.status = StatusCode.NONE
        completion.bytes_completed = 0
        completion.result = 0
        completion.fault_address = None
        times = descriptor.times
        times.allocated = None
        times.prepared = None
        times.submitted = None
        times.dispatched = None
        times.completed = None
        descriptor.completion_event = None
        descriptor.trace_track = -1
        self._free.append(descriptor)
        self.released += 1
        return True


@dataclass(slots=True)
class BatchDescriptor:
    """Descriptor pointing at an array of work descriptors (F2)."""

    descriptors: List[WorkDescriptor]
    pasid: int = 0
    flags: DescriptorFlags = DescriptorFlags.REQUEST_COMPLETION
    completion: CompletionRecord = field(default_factory=CompletionRecord)
    times: Timestamps = field(default_factory=Timestamps)
    #: Triggered by the device when the batch completion is written.
    completion_event: Optional[object] = None
    #: Fabric-share weight inherited by the batch's members.
    dispatch_weight: float = 1.0
    #: Tracer track (timeline) id; -1 until tracing assigns one.
    trace_track: int = -1

    def validate(self) -> Optional[StatusCode]:
        if not self.descriptors:
            return StatusCode.INVALID_SIZE
        if len(self.descriptors) > MAX_BATCH_SIZE:
            return StatusCode.INVALID_SIZE
        for descriptor in self.descriptors:
            if isinstance(descriptor, BatchDescriptor):
                return StatusCode.INVALID_OPCODE  # batches cannot nest
        return None

    @property
    def size(self) -> int:
        """Aggregate payload bytes across the batch."""
        return sum(d.size for d in self.descriptors)

    def __len__(self) -> int:
        return len(self.descriptors)
