"""Closed-loop fleet measurement harness.

``run_fleet`` is to the fleet what ``run_dsa_microbench`` is to one
device: a deterministic closed loop that builds a
``sockets × devices_per_socket`` platform, places per-socket workers'
descriptors through a :class:`~repro.fleet.scheduler.FleetScheduler`,
and returns throughput plus failover accounting.  Every descriptor is
driven through :func:`repro.runtime.recovery.recover`, so a device
disabled mid-run (directly or via a ``repro.faults`` reset window)
loses nothing: queued work re-routes to surviving devices or finishes
on the software kernels, and the harness asserts the conservation
invariant ``offered == completed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cpu.core import CpuCore
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.opcodes import Opcode
from repro.fleet.policy import PlacementPolicy, make_policy
from repro.fleet.scheduler import FleetScheduler
from repro.mem.address import AddressSpace, Buffer
from repro.platform import Platform, fleet_platform
from repro.runtime.dml import Dml
from repro.runtime.recovery import RecoveryResult, RetryPolicy, recover
from repro.sim.stats import Histogram

__all__ = ["FleetConfig", "FleetResult", "run_fleet"]


@dataclass
class FleetConfig:
    """One fleet sweep point."""

    sockets: int = 2
    devices_per_socket: int = 2
    placement: str = "numa-local"
    transfer_size: int = 64 * 1024
    #: Outstanding descriptors per worker.
    queue_depth: int = 4
    #: Descriptors each worker completes.
    iterations: int = 32
    workers_per_socket: int = 2
    #: Buffer home node per worker: its own socket (True) or always
    #: node 0 (False — remote-heavy traffic for the UPI/IOMMU model).
    local_buffers: bool = True
    wq_size: int = 32
    #: Take this device down at ``disable_at_ns`` (failover runs).
    disable_device: Optional[str] = None
    disable_at_ns: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def validate(self) -> None:
        if self.sockets < 1 or self.devices_per_socket < 1:
            raise ValueError("fleet needs at least one socket and device")
        if self.transfer_size <= 0:
            raise ValueError(f"transfer size must be positive: {self.transfer_size}")
        if self.queue_depth < 1 or self.iterations < 1:
            raise ValueError("queue depth and iterations must be >= 1")
        if self.workers_per_socket < 1:
            raise ValueError("need at least one worker per socket")

    @property
    def n_devices(self) -> int:
        return self.sockets * self.devices_per_socket

    @property
    def offered(self) -> int:
        return self.sockets * self.workers_per_socket * self.iterations


@dataclass
class FleetResult:
    """Comparable output of one fleet run."""

    config: FleetConfig
    offered: int = 0
    completed: int = 0
    payload_bytes: int = 0
    elapsed_ns: float = 0.0
    latency: Histogram = field(default_factory=Histogram)
    #: Descriptors re-routed to a surviving device after DEVICE_DISABLED.
    rerouted: int = 0
    #: Descriptors that finished on the software kernels.
    to_software: int = 0
    bytes_hardware: int = 0
    bytes_software: int = 0
    #: Final ``fleet.*`` / per-device metric snapshot.
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Payload GB/s (bytes/ns)."""
        return self.payload_bytes / self.elapsed_ns if self.elapsed_ns > 0 else 0.0

    @property
    def lost(self) -> int:
        """Descriptors that never completed — must be zero."""
        return self.offered - self.completed


def _fleet_worker(
    platform: Platform,
    dml: Dml,
    scheduler: FleetScheduler,
    space: AddressSpace,
    cfg: FleetConfig,
    core: CpuCore,
    socket: int,
    result: FleetResult,
) -> Generator:
    """Closed loop: keep ``queue_depth`` recoveries in flight."""
    env = platform.env
    node = socket if cfg.local_buffers else 0
    slots: List[Dict[str, Buffer]] = [
        {
            "src": space.allocate(cfg.transfer_size, node=node),
            "dst": space.allocate(cfg.transfer_size, node=node),
        }
        for _slot in range(cfg.queue_depth)
    ]

    outstanding: List = []
    issued = 0
    completed = 0
    while completed < cfg.iterations:
        while issued < cfg.iterations and len(outstanding) < cfg.queue_depth:
            slot = slots[issued % cfg.queue_depth]
            descriptor = dml.make_descriptor(
                Opcode.MEMMOVE, cfg.transfer_size, src=slot["src"], dst=slot["dst"]
            )
            start_ns = env.now
            process = env.process(
                recover(
                    dml,
                    core,
                    descriptor,
                    policy=cfg.retry,
                    scheduler=scheduler,
                    socket=socket,
                ),
                name=f"fleet.s{socket}.recover",
            )
            outstanding.append((descriptor, process, start_ns))
            issued += 1
        descriptor, process, start_ns = outstanding.pop(0)
        recovery: RecoveryResult = yield process
        completed += 1
        result.latency.add(env.now - start_ns)
        if recovery.status.is_success:
            result.completed += 1
            result.payload_bytes += cfg.transfer_size
        result.rerouted += recovery.reroutes
        result.bytes_hardware += recovery.bytes_hardware
        result.bytes_software += recovery.bytes_software
        if recovery.bytes_software:
            result.to_software += 1


def _disable_timer(platform: Platform, cfg: FleetConfig) -> Generator:
    yield platform.env.timeout(cfg.disable_at_ns)
    if platform.driver.is_enabled(cfg.disable_device):
        platform.driver.disable(cfg.disable_device)


def run_fleet(
    cfg: FleetConfig, policy: Optional[PlacementPolicy] = None
) -> FleetResult:
    """Execute one fleet sweep point; returns measurements + accounting.

    Raises ``AssertionError`` if any offered descriptor is lost — the
    failover contract is *zero loss*: every descriptor completes on
    some device or on software.
    """
    cfg.validate()
    platform = fleet_platform(
        sockets=cfg.sockets,
        devices_per_socket=cfg.devices_per_socket,
        device_config=DeviceConfig.single(wq_size=cfg.wq_size, mode=WqMode.SHARED),
    )
    env = platform.env
    space = AddressSpace()
    portals = [
        platform.open_portal(name, 0, space)
        for name in sorted(platform.driver.devices)
    ]
    scheduler = FleetScheduler(
        platform.driver, portals, policy=policy or make_policy(cfg.placement)
    )
    dml = Dml(
        env,
        portals,
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
        scheduler=scheduler,
    )
    result = FleetResult(config=cfg, offered=cfg.offered)
    worker_id = 0
    for socket in range(cfg.sockets):
        for _w in range(cfg.workers_per_socket):
            core = platform.core(worker_id)
            env.process(
                _fleet_worker(
                    platform, dml, scheduler, space, cfg, core, socket, result
                ),
                name=f"fleet.worker{worker_id}",
            )
            worker_id += 1
    if cfg.disable_device is not None:
        env.process(_disable_timer(platform, cfg), name="fleet.disable")
    start = env.now
    env.run()
    result.elapsed_ns = env.now - start
    result.metrics = {
        name: value
        for name, value in platform.metrics_snapshot().items()
        if name.startswith(("fleet.", "recovery.", "mem.iommu."))
    }
    assert result.lost == 0, (
        f"fleet lost {result.lost} descriptors "
        f"(offered {result.offered}, completed {result.completed})"
    )
    return result
