"""Cross-device portal selection with device-loss failover.

The :class:`FleetScheduler` owns one portal per (device, WQ) pair the
application opened, delegates placement to a
:class:`~repro.fleet.policy.PlacementPolicy`, and subscribes to the
driver's enable/disable notifications so a device taken down mid-run
disappears from the candidate set immediately — no polling, no stale
round robin (the bug this layer replaces in ``Dml._next_portal``).

Metric families (see docs/OBSERVABILITY.md):

* ``fleet.devices_live`` — gauge, live-device count over time;
* ``fleet.<dev>.selected`` — placements routed to each device;
* ``fleet.<dev>.failover.events`` — disable notifications observed;
* ``fleet.<dev>.failover.rerouted`` — descriptors that failed on
  ``<dev>`` and re-landed on a surviving device;
* ``fleet.<dev>.failover.to_software`` — descriptors that failed on
  ``<dev>`` and finished on the software kernels;
* ``fleet.<dev>.failover.absorbed`` — re-routed descriptors ``<dev>``
  accepted from a failed peer.
"""

from __future__ import annotations

from typing import Collection, List, Optional

from repro.fleet.policy import PlacementPolicy, RoundRobinPolicy
from repro.runtime.driver import IdxdDriver, Portal

__all__ = ["FleetScheduler"]


class FleetScheduler:
    """Placement + failover across a fleet of device portals."""

    def __init__(
        self,
        driver: IdxdDriver,
        portals: List[Portal],
        policy: Optional[PlacementPolicy] = None,
    ):
        if not portals:
            raise ValueError("fleet scheduler needs at least one portal")
        self.driver = driver
        self.env = driver.env
        self.portals = list(portals)
        self.policy = policy or RoundRobinPolicy()
        driver.subscribe(self._on_device_event)
        self._m_live = self.env.metrics.gauge("fleet.devices_live")
        self._m_live.update(self.env.now, self._live_count())

    # -- driver notifications ------------------------------------------------
    def _live_count(self) -> int:
        return len({p.device.name for p in self.portals if p.device.enabled})

    def _on_device_event(self, name: str, enabled: bool) -> None:
        self._m_live.update(self.env.now, self._live_count())
        if not enabled and any(p.device.name == name for p in self.portals):
            self.env.metrics.counter(f"fleet.{name}.failover.events").add()

    # -- selection -----------------------------------------------------------
    def live_portals(self, exclude: Collection[str] = ()) -> List[Portal]:
        """Portals whose device is enabled and not in ``exclude``."""
        return [
            p
            for p in self.portals
            if p.device.enabled and p.device.name not in exclude
        ]

    def select(
        self,
        socket: Optional[int] = None,
        exclude: Collection[str] = (),
    ) -> Portal:
        """Choose a live portal for one submission.

        ``socket`` is the submitter's socket (NUMA-aware policies prefer
        local devices); ``exclude`` masks devices by name — the failover
        path excludes the device that just failed.  Raises
        ``RuntimeError`` when no live portal remains.
        """
        candidates = self.live_portals(exclude)
        if not candidates:
            raise RuntimeError("fleet has no live device portal")
        portal = self.policy.choose(candidates, socket=socket)
        self.env.metrics.counter(f"fleet.{portal.device.name}.selected").add()
        return portal

    # -- failover accounting ---------------------------------------------------
    def record_failover(self, failed: str, target: Optional[str]) -> None:
        """Book one re-route away from ``failed`` (``None`` = software)."""
        base = f"fleet.{failed}.failover"
        if target is None:
            self.env.metrics.counter(f"{base}.to_software").add()
        else:
            self.env.metrics.counter(f"{base}.rerouted").add()
            self.env.metrics.counter(f"fleet.{target}.failover.absorbed").add()
