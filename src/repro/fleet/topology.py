"""The ``--fleet`` topology knob (install pattern).

Follows :mod:`repro.traffic.tiers` / :mod:`repro.sim.fidelity`: the CLI
installs a process-wide default (``--fleet SxD --placement P``), the
parallel runner re-installs it in every worker call, and fleet-aware
layers (the traffic ``drive_profile`` harness, the ``fleet-scaling``
experiment) read :func:`active_fleet` — no threading through
``run(quick=...)`` signatures.

A :class:`FleetSpec` is the parameterized topology SCALE-Sim-style
sweeps expand: ``sockets × devices_per_socket`` DSA instances plus the
placement policy name the scheduler instantiates per run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.fleet.policy import POLICIES

__all__ = [
    "FleetSpec",
    "DEFAULT_FLEET",
    "parse_fleet",
    "set_default_fleet",
    "set_default_placement",
    "default_fleet",
    "active_fleet",
]


@dataclass(frozen=True)
class FleetSpec:
    """One fleet topology: how many devices, where, and how placed."""

    sockets: int = 1
    devices_per_socket: int = 1
    placement: str = "round-robin"

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {self.sockets}")
        if self.devices_per_socket < 1:
            raise ValueError(
                f"devices_per_socket must be >= 1, got {self.devices_per_socket}"
            )
        if self.placement not in POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {sorted(POLICIES)}"
            )

    @property
    def n_devices(self) -> int:
        return self.sockets * self.devices_per_socket

    @property
    def is_default(self) -> bool:
        """True for the single-device topology (anchors stay byte-identical)."""
        return self == DEFAULT_FLEET

    def key(self) -> str:
        """Stable string form (``"2x4:numa-local"``) for cache salting."""
        return f"{self.sockets}x{self.devices_per_socket}:{self.placement}"

    def socket_of_device(self, index: int) -> int:
        """Home socket of device ``dsa{index}`` (grouped by socket)."""
        return index // self.devices_per_socket


#: The single-device topology every existing experiment anchors against.
DEFAULT_FLEET = FleetSpec()


def parse_fleet(text: str) -> Tuple[int, int]:
    """Parse a ``--fleet`` value like ``"2x4"`` → ``(2, 4)``."""
    parts = text.lower().split("x")
    if len(parts) != 2:
        raise ValueError(
            f"--fleet expects SOCKETSxDEVICES (e.g. '2x4'), got {text!r}"
        )
    try:
        sockets, devices = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"--fleet expects SOCKETSxDEVICES (e.g. '2x4'), got {text!r}"
        ) from None
    if sockets < 1 or devices < 1:
        raise ValueError(f"--fleet dimensions must be >= 1, got {text!r}")
    return sockets, devices


_default_fleet = DEFAULT_FLEET


def set_default_fleet(spec: Optional[str]) -> None:
    """Install the process-wide fleet topology (the CLI's ``--fleet``).

    ``None`` or ``"1x1"`` restores the default single-device topology.
    The placement policy installed earlier is preserved.
    """
    global _default_fleet
    if spec is None:
        sockets, devices = 1, 1
    else:
        sockets, devices = parse_fleet(spec)
    _default_fleet = replace(
        _default_fleet, sockets=sockets, devices_per_socket=devices
    )


def set_default_placement(name: str) -> None:
    """Install the process-wide placement policy (``--placement``)."""
    global _default_fleet
    _default_fleet = replace(_default_fleet, placement=name)


def default_fleet() -> FleetSpec:
    """The installed fleet spec (``DEFAULT_FLEET`` unless overridden)."""
    return _default_fleet


def active_fleet() -> FleetSpec:
    """Alias of :func:`default_fleet`, matching ``active_tier`` naming."""
    return _default_fleet
