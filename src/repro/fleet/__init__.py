"""Fleet-scale multi-device scheduling with failover.

Generalizes the DML layer's single-list round robin into a scheduler
over a ``sockets × devices_per_socket`` device fleet: pluggable
placement policies (:mod:`repro.fleet.policy`), driver-notified device
loss with re-route accounting (:mod:`repro.fleet.scheduler`), the
``--fleet`` topology knob (:mod:`repro.fleet.topology`), and the
closed-loop measurement harness (:mod:`repro.fleet.harness`) the
``fleet-scaling`` experiment and ``scripts/bench_fleet.py`` drive.
"""

from repro.fleet.harness import FleetConfig, FleetResult, run_fleet
from repro.fleet.policy import (
    POLICIES,
    LeastLoadedPolicy,
    NumaLocalPolicy,
    PlacementPolicy,
    RoundRobinPolicy,
    make_policy,
    policy_names,
)
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.topology import (
    DEFAULT_FLEET,
    FleetSpec,
    active_fleet,
    default_fleet,
    parse_fleet,
    set_default_fleet,
    set_default_placement,
)

__all__ = [
    "FleetConfig",
    "FleetResult",
    "run_fleet",
    "PlacementPolicy",
    "RoundRobinPolicy",
    "NumaLocalPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "policy_names",
    "make_policy",
    "FleetScheduler",
    "FleetSpec",
    "DEFAULT_FLEET",
    "parse_fleet",
    "set_default_fleet",
    "set_default_placement",
    "default_fleet",
    "active_fleet",
]
