"""Pluggable cross-device placement policies.

The DML layer's built-in round robin treats every portal as equal; a
rack does not.  A policy ranks the *live* candidate portals the
:class:`~repro.fleet.scheduler.FleetScheduler` hands it and picks one:

* ``round-robin`` — the generalized DML default: rotate over live
  portals regardless of topology.
* ``numa-local`` — prefer portals whose device shares the submitter's
  socket (no UPI crossing, no remote-IOMMU translation), rotating
  within the local set; fall back to the full set when the socket has
  no live device.
* ``least-loaded`` — pick the device with the fewest bytes in flight
  on its fabric port (``FairShareLink.bytes_inflight``), the closest
  model analogue of queue-occupancy-based dispatch.

Policies are deterministic: ties break on ``(device name, wq id)`` so
serial and ``--jobs N`` runs place identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.runtime.driver import Portal

__all__ = [
    "PlacementPolicy",
    "RoundRobinPolicy",
    "NumaLocalPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "policy_names",
    "make_policy",
]


class PlacementPolicy:
    """Base contract: choose one portal from a non-empty candidate list."""

    name = "base"

    def choose(self, candidates: List[Portal], socket: Optional[int] = None) -> Portal:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RoundRobinPolicy(PlacementPolicy):
    """Rotate over the live portals (the DML default, fleet-wide)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates: List[Portal], socket: Optional[int] = None) -> Portal:
        portal = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return portal


class NumaLocalPolicy(PlacementPolicy):
    """Prefer same-socket devices; rotate within the preferred set.

    Crossing sockets costs the UPI hop on every read and (on fleet
    platforms) the remote-IOMMU translation round trip, so a local
    device is strictly cheaper when one is alive.  Without a submitter
    socket (``socket=None``) this degrades to round robin.
    """

    name = "numa-local"

    def __init__(self) -> None:
        self._cursors: Dict[int, int] = {}

    def choose(self, candidates: List[Portal], socket: Optional[int] = None) -> Portal:
        pool = candidates
        key = -1
        if socket is not None:
            local = [p for p in candidates if p.device.socket == socket]
            if local:
                pool = local
                key = socket
        cursor = self._cursors.get(key, 0)
        portal = pool[cursor % len(pool)]
        self._cursors[key] = cursor + 1
        return portal


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the device with the fewest bytes in flight on its port."""

    name = "least-loaded"

    def choose(self, candidates: List[Portal], socket: Optional[int] = None) -> Portal:
        return min(
            candidates,
            key=lambda p: (p.device.port.bytes_inflight, p.device.name, p.wq_id),
        )


#: Registry the CLI's ``--placement`` flag and the fleet spec draw from.
POLICIES: Dict[str, Type[PlacementPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    NumaLocalPolicy.name: NumaLocalPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
}


def policy_names() -> tuple:
    return tuple(POLICIES)


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a policy by registry name."""
    if name not in POLICIES:
        raise ValueError(
            f"unknown placement policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return POLICIES[name]()
