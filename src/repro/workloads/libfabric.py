"""libfabric SAR-protocol workloads: pingpong, RMA, AllReduce, BERT
(paper Appendix A, Fig 17).

Intra-node libfabric messages above the eager threshold use the
Segmentation-and-Reassembly (SAR) protocol when CMA is not permitted:
the sender copies each segment into a shared bounce buffer and the
receiver copies it out.  On the CPU the two hops of a segment are
serialized (effective bandwidth ≈ half a core's memcpy rate); with DSA
both hops are offloaded and deeply pipelined, which is where the
published 4.7–5.1x large-message speedups come from.

The transfer engine is a real simulation against the DSA device model;
AllReduce and the BERT step compose measured transfer times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from repro.cpu.core import CpuCore, CycleCategory
from repro.dsa.config import DeviceConfig
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.platform import Platform, spr_platform
from repro.runtime.driver import Portal
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class SarParams:
    """SAR protocol constants."""

    segment_size: int = 16 * KB
    #: Per-message protocol handshake (match bits, CQ entries).
    protocol_ns: float = 420.0
    #: Per-segment bookkeeping on the CPU path.
    per_segment_ns: float = 90.0
    #: Single-core copy bandwidth (one SAR hop).
    cpu_copy_bandwidth: float = 12.0
    #: Fused reduce(+copy) bandwidth on a core (AVX-512 sum).
    reduce_bandwidth: float = 50.0
    #: Aggregate DRAM streaming budget shared by all ranks' copies.
    memory_stream_budget: float = 200.0
    #: Segments batched per DSA submission.
    dsa_batch: int = 8


@dataclass
class TransferResult:
    size: int
    elapsed_ns: float

    @property
    def bandwidth(self) -> float:
        """GB/s (bytes/ns)."""
        return self.size / self.elapsed_ns if self.elapsed_ns else 0.0


def _segments(size: int, params: SarParams):
    full, tail = divmod(size, params.segment_size)
    sizes = [params.segment_size] * full
    if tail:
        sizes.append(tail)
    return sizes


def _cpu_transfer(
    platform: Platform, core: CpuCore, size: int, params: SarParams, ranks_active: int = 1
) -> Generator:
    """CPU SAR: copy-in then copy-out, serialized per segment."""
    effective = min(
        params.cpu_copy_bandwidth,
        params.memory_stream_budget / max(1, ranks_active) / 2.0,
    )
    yield core.spend(CycleCategory.BUSY, params.protocol_ns)
    for segment in _segments(size, params):
        yield core.spend(CycleCategory.BUSY, params.per_segment_ns)
        # Two serialized hops through the bounce buffer.
        yield core.spend(CycleCategory.BUSY, 2.0 * segment / effective)


def _dsa_transfer(
    platform: Platform,
    core: CpuCore,
    portal: Portal,
    space: AddressSpace,
    bounce,
    size: int,
    params: SarParams,
) -> Generator:
    """DSA SAR: both hops offloaded, segments batched and pipelined."""
    env = platform.env
    yield core.spend(CycleCategory.BUSY, params.protocol_ns)
    segments = _segments(size, params)
    for first in range(0, len(segments), params.dsa_batch):
        chunk = segments[first : first + params.dsa_batch]
        members = []
        for segment in chunk:
            # With SVM the device addresses both endpoints' memory
            # directly, so SAR's two bounce hops collapse into one
            # offloaded copy — the structural source of the large
            # published speedups (CPU pays both hops serially).
            members.append(
                WorkDescriptor(
                    opcode=Opcode.MEMMOVE,
                    pasid=space.pasid,
                    flags=DescriptorFlags.REQUEST_COMPLETION
                    | DescriptorFlags.BLOCK_ON_FAULT,
                    src=bounce.va,
                    dst=bounce.va + params.segment_size,
                    size=segment,
                )
            )
        if len(members) == 1:
            unit = members[0]
        else:
            unit = BatchDescriptor(descriptors=members, pasid=space.pasid)
        yield from prepare_descriptor(env, core, unit, platform.costs)
        yield from submit(env, core, portal, unit, platform.costs)
        yield from wait_for(env, core, unit, WaitMode.SPIN, platform.costs)


def _build_platform() -> Tuple[Platform, Portal, AddressSpace]:
    platform = spr_platform(device_config=DeviceConfig.single(wq_size=32, n_engines=4))
    space = AddressSpace()
    portal = platform.open_portal("dsa0", 0, space)
    return platform, portal, space


def measure_transfer(
    size: int,
    use_dsa: bool,
    params: Optional[SarParams] = None,
    window: int = 1,
    ranks_active: int = 1,
) -> TransferResult:
    """Time ``window`` back-to-back SAR messages of ``size`` bytes.

    ``window=1`` is the pingpong pattern (one in flight); a larger
    window models the RMA/BW tests' pipelining.
    """
    if size <= 0:
        raise ValueError(f"size must be positive: {size}")
    params = params or SarParams()
    platform, portal, space = _build_platform()
    core = platform.core(0)
    bounce = space.allocate(2 * params.segment_size + params.segment_size)

    def run(env):
        for _message in range(window):
            if use_dsa:
                yield from _dsa_transfer(platform, core, portal, space, bounce, size, params)
            else:
                yield from _cpu_transfer(platform, core, size, params, ranks_active)

    start = platform.env.now
    platform.env.process(run(platform.env))
    platform.env.run()
    elapsed = (platform.env.now - start) / window
    return TransferResult(size=size, elapsed_ns=elapsed)


def pingpong_speedup(size: int, params: Optional[SarParams] = None) -> float:
    """Fig 17a PP: DSA/CPU message-rate ratio at one message in flight."""
    cpu = measure_transfer(size, use_dsa=False, params=params)
    dsa = measure_transfer(size, use_dsa=True, params=params)
    return cpu.elapsed_ns / dsa.elapsed_ns


def rma_speedup(size: int, params: Optional[SarParams] = None, window: int = 8) -> float:
    """Fig 17a RMA: pipelined one-direction bandwidth ratio."""
    cpu = measure_transfer(size, use_dsa=False, params=params, window=window)
    dsa = measure_transfer(size, use_dsa=True, params=params, window=window)
    return cpu.elapsed_ns / dsa.elapsed_ns


@dataclass
class AllReduceResult:
    size: int
    ranks: int
    cpu_ns: float
    dsa_ns: float

    @property
    def speedup(self) -> float:
        return self.cpu_ns / self.dsa_ns if self.dsa_ns else 0.0


def allreduce(
    size: int,
    ranks: int,
    params: Optional[SarParams] = None,
    cpu_ranks_active: Optional[int] = None,
) -> AllReduceResult:
    """Ring AllReduce built from SAR chunk transfers (OSU AR test).

    2(R-1) steps move S/R-byte chunks between neighbours; the CPU path
    serializes the reduce with its copies, while the DSA path overlaps
    the core's reduce of chunk *i* with the device copy of chunk *i+1*.
    ``cpu_ranks_active`` scales the CPU path's memory contention (BERT
    runs compute threads alongside the copies).
    """
    if ranks < 2:
        raise ValueError(f"allreduce needs >= 2 ranks, got {ranks}")
    params = params or SarParams()
    chunk = max(1, size // ranks)
    steps = 2 * (ranks - 1)
    cpu_chunk = measure_transfer(
        chunk, use_dsa=False, params=params, ranks_active=cpu_ranks_active or ranks
    ).elapsed_ns
    dsa_chunk = measure_transfer(chunk, use_dsa=True, params=params).elapsed_ns
    reduce_ns = chunk / params.reduce_bandwidth
    cpu_step = cpu_chunk + reduce_ns  # reduce serialized with the copy
    dsa_step = max(dsa_chunk, reduce_ns)  # reduce overlapped with DSA
    return AllReduceResult(
        size=size, ranks=ranks, cpu_ns=steps * cpu_step, dsa_ns=steps * dsa_step
    )


@dataclass
class BertStepResult:
    """One data-parallel BERT pretraining step (MLPerf-style)."""

    ranks: int
    compute_ns: float
    cpu_allreduce_ns: float
    dsa_allreduce_ns: float
    framework_ns: float

    @property
    def allreduce_speedup(self) -> float:
        return (self.cpu_allreduce_ns + self.framework_ns) / (
            self.dsa_allreduce_ns + self.framework_ns
        )

    @property
    def end_to_end_speedup(self) -> float:
        cpu = self.compute_ns + self.cpu_allreduce_ns + self.framework_ns
        dsa = self.compute_ns + self.dsa_allreduce_ns + self.framework_ns
        return cpu / dsa


def bert_step(
    ranks: int,
    gradient_bytes: int = 1_300 * MB,
    compute_ns: float = 5.0e9,
    framework_ns: float = 7.0e7,
    params: Optional[SarParams] = None,
) -> BertStepResult:
    """Model one BERT step: fixed compute + gradient AllReduce.

    Training threads stream activations/weights concurrently with the
    CPU-path gradient copies, so the copy contention grows with ranks
    (the reason the paper's BERT AR speedup rises from 2.8x at 2 ranks
    to 3.3x at 8 while the OSU microbenchmark stays flat).
    """
    result = allreduce(
        gradient_bytes, ranks, params=params, cpu_ranks_active=ranks + 2
    )
    return BertStepResult(
        ranks=ranks,
        compute_ns=compute_ns,
        cpu_allreduce_ns=result.cpu_ns,
        dsa_allreduce_ns=result.dsa_ns,
        framework_ns=framework_ns,
    )
