"""X-Mem cache-pollution study (paper §4.5, Figs 12 and 13).

Eight X-Mem instances probe memory latency over a configurable working
set while background copy traffic runs three ways:

* ``none`` — no co-runners;
* ``software`` — four ``memcpy()`` processes on separate cores, whose
  streams allocate into the shared LLC and evict the probes' data;
* ``dsa`` — the same copy volume offloaded to DSA, whose reads do not
  allocate and whose writes stay inside the DDIO ways.

The model is time-stepped on top of the LLC occupancy model: each step
the streams insert bytes, each X-Mem instance re-touches its working
set at its achieved access rate, and the average access latency is the
cache-weighted mix of L2 / LLC / DRAM latencies.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mem.cache import SharedLLC
from repro.platform import Platform, spr_platform

MB = 1024 * 1024


class CoRunKind(enum.Enum):
    NONE = "none"
    SOFTWARE = "software"
    DSA = "dsa"


@dataclass(frozen=True)
class XmemParams:
    """Probe-side knobs (X-Mem's own configuration)."""

    instances: int = 8
    working_set: int = 4 * MB
    line: int = 64
    #: Outstanding random accesses per instance (the latency test is a
    #: near-dependent chain; 2 calibrates the +43% Fig 13 anchor).
    mlp: int = 2
    #: Private L2 slice absorbing the hot part of the working set.
    l2_size: int = 2 * MB
    l2_latency: float = 14.0
    dram_latency: float = 95.0

    def validate(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one X-Mem instance")
        if self.working_set <= 0:
            raise ValueError("working set must be positive")
        if self.mlp < 1:
            raise ValueError("memory-level parallelism must be >= 1")


@dataclass(frozen=True)
class CoRunParams:
    """Background copy-traffic configuration."""

    kind: CoRunKind = CoRunKind.NONE
    streams: int = 4
    #: Per-stream copy throughput (GB/s); a core's memcpy rate for
    #: software, a DSA group's share for offload.
    stream_bandwidth: float = 12.0
    #: LLC bytes allocated per copied byte by the software path
    #: (reads + writes both allocate).
    footprint_factor: float = 2.0
    #: Aggregate DSA write rate (bounded by the device fabric).
    dsa_write_bandwidth: float = 30.0


@dataclass
class XmemScenarioResult:
    """One scenario's measurements."""

    kind: CoRunKind
    working_set: int
    mean_latency_ns: float
    latency_series: List[Tuple[float, float]] = field(default_factory=list)
    #: agent -> [(time_s, occupancy_bytes)] for the Fig 12 timelines.
    occupancy_series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)


def _xmem_latency(llc: SharedLLC, agent: str, params: XmemParams) -> float:
    """Average access latency given current LLC residency."""
    l2_fraction = min(params.l2_size, params.working_set) / params.working_set
    beyond_l2 = params.working_set - min(params.l2_size, params.working_set)
    if beyond_l2 <= 0:
        return params.l2_latency
    llc_fraction = llc.hit_fraction(agent, beyond_l2)
    llc_latency = llc.read_latency
    outer = llc_fraction * llc_latency + (1.0 - llc_fraction) * params.dram_latency
    return l2_fraction * params.l2_latency + (1.0 - l2_fraction) * outer


def run_xmem_scenario(
    kind: CoRunKind,
    working_set: int = 4 * MB,
    duration_s: float = 10.0,
    step_s: float = 0.01,
    params: Optional[XmemParams] = None,
    corun: Optional[CoRunParams] = None,
    platform: Optional[Platform] = None,
    xmem_window: Optional[Tuple[float, float]] = None,
    sample_every: int = 10,
) -> XmemScenarioResult:
    """Run one co-running scenario and return latency + occupancy data.

    ``xmem_window`` optionally delays/stops the probes (Fig 12 runs
    X-Mem from 5 s to 45 s while the background copies run 0–60 s).
    """
    params = params or XmemParams(working_set=working_set)
    if params.working_set != working_set:
        params = XmemParams(
            instances=params.instances,
            working_set=working_set,
            line=params.line,
            mlp=params.mlp,
            l2_size=params.l2_size,
            l2_latency=params.l2_latency,
            dram_latency=params.dram_latency,
        )
    params.validate()
    corun = corun or CoRunParams(kind=kind)
    platform = platform or spr_platform(n_devices=0)
    llc = platform.memsys.llc

    probes = [f"xmem{i}" for i in range(params.instances)]
    streams = [f"copy{i}" for i in range(corun.streams)] if kind is not CoRunKind.NONE else []
    result = XmemScenarioResult(kind=kind, working_set=working_set, mean_latency_ns=0.0)
    for agent in probes + streams:
        result.occupancy_series[agent] = []

    beyond_l2 = max(0, params.working_set - params.l2_size)
    step_ns = step_s * 1e9
    capacity = llc.main_capacity
    latency_sum = 0.0
    latency_samples = 0
    steps = int(round(duration_s / step_s))
    for step in range(steps):
        now_s = step * step_s
        probes_active = True
        if xmem_window is not None:
            probes_active = xmem_window[0] <= now_s < xmem_window[1]

        # Stream insertion rate into the main LLC region (bytes/ns).
        if kind is CoRunKind.SOFTWARE:
            stream_rate = corun.stream_bandwidth * corun.footprint_factor * len(streams)
        else:
            stream_rate = 0.0  # DSA traffic is confined to the IO ways
        churn = stream_rate / capacity  # fraction of the cache churned per ns

        # Probe equilibrium: inflow of non-resident lines balances the
        # proportional eviction caused by the streams' churn.
        step_latencies = []
        probe_targets: Dict[str, float] = {}
        for agent in probes:
            if not probes_active:
                llc.clear(agent, now=now_s)
                continue
            latency = _xmem_latency(llc, agent, params)
            step_latencies.append(latency)
            if beyond_l2 <= 0:
                continue
            touch_rate = params.mlp * params.line / latency
            fair_share = min(beyond_l2, capacity / max(1, len(probes)))
            if churn > 0:
                equilibrium = touch_rate / (touch_rate / beyond_l2 + churn)
            else:
                equilibrium = beyond_l2
            probe_targets[agent] = min(equilibrium, fair_share)

        # Relax occupancies toward equilibrium; the time constant is the
        # time the current traffic needs to churn the whole cache.
        refill_rate = stream_rate + sum(
            params.mlp * params.line / lat for lat in step_latencies
        )
        tau_ns = capacity / refill_rate if refill_rate > 0 else float("inf")
        blend = 1.0 - math.exp(-step_ns / tau_ns) if math.isfinite(tau_ns) else 1.0
        for agent, target in probe_targets.items():
            current = llc.occupancy(agent)
            llc.set_level(agent, current + (target - current) * blend, now=now_s)

        # Streams fill what the probes leave (software), or the IO ways (DSA).
        if kind is CoRunKind.SOFTWARE:
            leftover = max(0.0, capacity - sum(llc.occupancy(a) for a in probes))
            for agent in streams:
                current = llc.occupancy(agent)
                target = leftover / len(streams)
                llc.set_level(agent, current + (target - current) * blend, now=now_s)
        elif kind is CoRunKind.DSA:
            for agent in streams:
                llc.set_level(agent, llc.io_capacity / len(streams), io=True, now=now_s)

        if step_latencies:
            mean_step = sum(step_latencies) / len(step_latencies)
            # Skip the warm-up before accumulating the reported mean.
            if now_s >= min(0.5, duration_s / 4):
                latency_sum += mean_step
                latency_samples += 1
            result.latency_series.append((now_s, mean_step))
        if step % sample_every == 0:
            for agent in probes + streams:
                result.occupancy_series[agent].append((now_s, llc.occupancy(agent)))

    result.mean_latency_ns = latency_sum / latency_samples if latency_samples else 0.0
    return result


def run_fig13_sweep(
    working_sets: List[int],
    duration_s: float = 5.0,
    params: Optional[XmemParams] = None,
) -> Dict[CoRunKind, List[Tuple[int, float]]]:
    """Latency vs working-set size for the three scenarios (Fig 13)."""
    curves: Dict[CoRunKind, List[Tuple[int, float]]] = {kind: [] for kind in CoRunKind}
    for wss in working_sets:
        for kind in CoRunKind:
            scenario = run_xmem_scenario(
                kind, working_set=wss, duration_s=duration_s, params=params
            )
            curves[kind].append((wss, scenario.mean_latency_ns))
    return curves
