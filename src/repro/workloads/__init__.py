"""Benchmark workloads: the paper's measurement drivers.

* :mod:`repro.workloads.microbench` — dsa-perf-micros equivalent (§4).
* :mod:`repro.workloads.xmem` — X-Mem latency probe (Figs 12–13).
* :mod:`repro.workloads.vhost` — DPDK Vhost case study (§6.4, Fig 16).
* :mod:`repro.workloads.cachelib` — CacheLib/CacheBench (Appendix B).
* :mod:`repro.workloads.spdk` — SPDK NVMe/TCP target (Appendix C).
* :mod:`repro.workloads.libfabric` — libfabric/MPI/BERT (Appendix A).
"""

from repro.workloads.microbench import (
    MicrobenchConfig,
    MicrobenchResult,
    run_cbdma_microbench,
    run_dsa_microbench,
    run_software_microbench,
    sweep,
)
from repro.workloads.xmem import CoRunKind, XmemParams, run_fig13_sweep, run_xmem_scenario
from repro.workloads.vhost import VhostConfig, VhostResult, run_vhost
from repro.workloads.cachelib import CacheBenchConfig, CacheBenchResult, run_cachebench
from repro.workloads.spdk import DigestMode, SpdkConfig, SpdkResult, run_spdk_target
from repro.workloads.libfabric import (
    allreduce,
    bert_step,
    measure_transfer,
    pingpong_speedup,
    rma_speedup,
)

__all__ = [
    "MicrobenchConfig",
    "MicrobenchResult",
    "run_dsa_microbench",
    "run_software_microbench",
    "run_cbdma_microbench",
    "sweep",
    "CoRunKind",
    "XmemParams",
    "run_xmem_scenario",
    "run_fig13_sweep",
    "VhostConfig",
    "VhostResult",
    "run_vhost",
    "CacheBenchConfig",
    "CacheBenchResult",
    "run_cachebench",
    "DigestMode",
    "SpdkConfig",
    "SpdkResult",
    "run_spdk_target",
    "measure_transfer",
    "pingpong_speedup",
    "rma_speedup",
    "allreduce",
    "bert_step",
]
