"""DPDK Vhost packet-forwarding case study (paper §6.4, Fig 16).

Models the TestPMD macfwd setup: a Vhost PMD thread moves bursts of 32
packets between a NIC port and a VirtIO guest queue.  Two data paths:

* **CPU** — the PMD core copies every packet itself (`memcpy`), paying
  a per-packet cost that grows with packet size (the 30%/50%+ copy
  cycle shares the paper reports);
* **DSA** — the paper's optimized integration: a three-stage software
  pipeline (check completions & write back used descriptors → prepare
  and submit one *batch* descriptor per burst → overlap remaining work
  while DSA copies), with cache-control set so packets land in LLC
  (G3), and a per-virtqueue *recording array* that restores packet
  order when several threads share DWQs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from repro.cpu.core import CpuCore, CycleCategory
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.platform import Platform, spr_platform
from repro.runtime.driver import Portal
from repro.runtime.submit import prepare_descriptor, submit


@dataclass(frozen=True)
class VhostCosts:
    """Calibrated per-packet CPU costs of the Vhost enqueue/dequeue path."""

    #: Descriptor fetch, buffer address translation, virtqueue updates.
    per_packet_overhead_ns: float = 110.0
    #: Used-descriptor write-back (~10 B, not worth offloading).
    writeback_ns: float = 15.0
    #: Recording-array scan per packet when DWQs are shared.
    reorder_scan_ns: float = 4.0
    #: Spinlock acquisition when several virtqueue threads share one
    #: DWQ (§6.4: bind each DWQ to its busiest core to avoid this).
    dwq_lock_ns: float = 120.0
    #: Software packet copy: base + size/bandwidth (packets are copied
    #: into cold guest buffers).
    copy_base_ns: float = 20.0
    copy_bandwidth: float = 10.0  # GB/s

    def copy_ns(self, packet_size: int) -> float:
        return self.copy_base_ns + packet_size / self.copy_bandwidth


@dataclass
class VhostConfig:
    """One forwarding experiment."""

    packet_size: int = 1024
    burst_size: int = 32
    bursts: int = 200
    use_dsa: bool = True
    n_queues: int = 1
    costs: VhostCosts = field(default_factory=VhostCosts)

    def validate(self) -> None:
        if self.packet_size < 64:
            raise ValueError(f"packet below minimum Ethernet size: {self.packet_size}")
        if self.burst_size < 1 or self.bursts < 1 or self.n_queues < 1:
            raise ValueError("burst size, bursts, and queues must be >= 1")


@dataclass
class VhostResult:
    config: VhostConfig
    packets_forwarded: int
    elapsed_ns: float
    copy_cycles_ns: float = 0.0
    total_cycles_ns: float = 0.0
    dsa_stall_ns: float = 0.0
    reordered_packets: int = 0

    @property
    def forwarding_rate_mpps(self) -> float:
        """Packets per microsecond x 1e6 == millions of packets/s."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.packets_forwarded / self.elapsed_ns * 1e3

    @property
    def copy_cycle_fraction(self) -> float:
        """Share of PMD cycles spent copying packets (CPU path only)."""
        if self.total_cycles_ns <= 0:
            return 0.0
        return self.copy_cycles_ns / self.total_cycles_ns


class RecordingArray:
    """Per-virtqueue in-order completion tracker (paper §6.4).

    Packets may finish out of order when several threads share DWQs;
    the array marks completed copies and only releases the prefix up to
    the first still-pending packet, so the VM always sees packets in
    virtqueue order.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._completed: List[bool] = []
        self._head = 0
        self.reordered = 0

    @property
    def in_flight(self) -> int:
        return len(self._completed) - self._head

    def record(self) -> int:
        """Register a new in-flight packet copy; returns its index."""
        if self.in_flight >= self.capacity:
            raise RuntimeError("recording array overflow")
        self._completed.append(False)
        return len(self._completed) - 1

    def mark_completed(self, index: int) -> None:
        if not self._head <= index < len(self._completed):
            raise IndexError(f"index {index} outside in-flight window")
        if any(not done for done in self._completed[self._head : index]):
            self.reordered += 1  # finished ahead of an earlier packet
        self._completed[index] = True

    def release_prefix(self) -> int:
        """Pop the contiguous completed prefix; returns how many."""
        released = 0
        while self._head < len(self._completed) and self._completed[self._head]:
            self._head += 1
            released += 1
        return released


def _cpu_queue(
    platform: Platform, cfg: VhostConfig, core: CpuCore, result: VhostResult
) -> Generator:
    costs = cfg.costs
    for _burst in range(cfg.bursts):
        for _pkt in range(cfg.burst_size):
            yield core.spend(CycleCategory.BUSY, costs.per_packet_overhead_ns)
            copy = costs.copy_ns(cfg.packet_size)
            yield core.spend(CycleCategory.BUSY, copy)
            result.copy_cycles_ns += copy
            yield core.spend(CycleCategory.BUSY, costs.writeback_ns)
            result.packets_forwarded += 1


def _dsa_queue(
    platform: Platform,
    cfg: VhostConfig,
    core: CpuCore,
    portal: Portal,
    space: AddressSpace,
    result: VhostResult,
    wq_sharers: int = 1,
) -> Generator:
    """Three-stage pipeline: retire burst i-1, submit burst i, overlap."""
    env = platform.env
    costs = cfg.costs
    recording = RecordingArray()
    pending: Optional[BatchDescriptor] = None
    pending_indices: List[int] = []
    # Packet buffers: NIC mbufs (LLC-resident via DDIO) -> guest buffers.
    nic_pool = [
        space.allocate(cfg.packet_size, in_llc=True) for _ in range(2 * cfg.burst_size)
    ]
    guest_pool = [space.allocate(cfg.packet_size) for _ in range(2 * cfg.burst_size)]

    for burst in range(cfg.bursts + 1):
        # Stage 1: retire the previous burst's copies in order.
        if pending is not None:
            if not pending.completion.done:
                stall_start = env.now
                yield pending.completion_event
                result.dsa_stall_ns += env.now - stall_start
            for index in pending_indices:
                recording.mark_completed(index)
            released = recording.release_prefix()
            yield core.spend(
                CycleCategory.BUSY,
                released * (costs.writeback_ns + costs.reorder_scan_ns),
            )
            result.packets_forwarded += released
            pending = None
        if burst == cfg.bursts:
            break

        # Stage 2: assemble one batch descriptor for this burst (G1)
        # with the cache-control hint set (G3: packets are consumed by
        # the guest soon, keep them in LLC).
        members = []
        pending_indices = []
        offset = (burst % 2) * cfg.burst_size
        for pkt in range(cfg.burst_size):
            src = nic_pool[offset + pkt]
            dst = guest_pool[offset + pkt]
            members.append(
                WorkDescriptor(
                    opcode=Opcode.MEMMOVE,
                    pasid=space.pasid,
                    flags=DescriptorFlags.REQUEST_COMPLETION
                    | DescriptorFlags.BLOCK_ON_FAULT
                    | DescriptorFlags.CACHE_CONTROL,
                    src=src.va,
                    dst=dst.va,
                    size=cfg.packet_size,
                )
            )
            pending_indices.append(recording.record())
        batch = BatchDescriptor(descriptors=members, pasid=space.pasid)
        yield from prepare_descriptor(env, core, batch, platform.costs)
        if wq_sharers > 1:
            # Threads sharing a DWQ serialize on its spinlock; cost
            # grows with the number of contending threads.
            yield core.spend(
                CycleCategory.BUSY, costs.dwq_lock_ns * (wq_sharers - 1)
            )
        yield from submit(env, core, portal, batch, platform.costs)
        pending = batch

        # Stage 3: overlap the per-packet software work (descriptor
        # fetch, header processing) with the DSA copy.
        yield core.spend(
            CycleCategory.BUSY, cfg.burst_size * costs.per_packet_overhead_ns
        )
    result.reordered_packets = recording.reordered


def run_vhost(cfg: VhostConfig, platform: Optional[Platform] = None) -> VhostResult:
    """Forward ``cfg.bursts`` bursts; returns rate and cycle breakdown."""
    cfg.validate()
    if platform is None:
        from repro.dsa.config import DeviceConfig, WqMode

        platform = spr_platform(
            device_config=DeviceConfig.multi_wq(
                min(cfg.n_queues, 8), wq_size=16, mode=WqMode.DEDICATED
            )
            if cfg.use_dsa
            else None
        )
    env = platform.env
    result = VhostResult(config=cfg, packets_forwarded=0, elapsed_ns=0.0)
    start = env.now
    cores = []
    # Vhost is one process: all virtqueue threads share an address
    # space, which also lets several threads share a DWQ (§6.4).
    space = AddressSpace() if cfg.use_dsa else None
    for queue in range(cfg.n_queues):
        core = platform.core(queue)
        cores.append(core)
        if cfg.use_dsa:
            n_wqs = len(platform.driver.device("dsa0").wqs)
            sharers = cfg.n_queues // n_wqs + (1 if queue % n_wqs < cfg.n_queues % n_wqs else 0)
            portal = platform.open_portal("dsa0", queue % n_wqs, space)
            env.process(
                _dsa_queue(platform, cfg, core, portal, space, result, wq_sharers=sharers)
            )
        else:
            env.process(_cpu_queue(platform, cfg, core, result))
    env.run()
    result.elapsed_ns = env.now - start
    result.total_cycles_ns = sum(core.accounted_time for core in cores)
    return result
