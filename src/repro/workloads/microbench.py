"""dsa-perf-micros equivalent: the §4 measurement driver.

One configuration describes an operation sweep point (operation,
transfer size, batch size, queue depth, WQ layout, buffer placement);
the runners execute it against DSA, the software baseline, or CBDMA
and return comparable results (GB/s of payload plus per-offload
latency distribution and the submitting cores' cycle accounting).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Tuple

from repro.cbdma.device import CbdmaDevice, CbdmaRequest
from repro.cpu.core import CpuCore, CycleCategory
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.device import DsaDevice
from repro.dsa.dif import DifContext
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.faults.inject import active_injector
from repro.mem.address import AddressSpace, Buffer
from repro.mem.pagetable import PAGE_4K
from repro.platform import Platform, icx_platform, spr_platform
from repro.runtime.driver import Portal
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for
from repro.sim.batch import cycle_samples, extrapolate_closed_loop
from repro.sim.fidelity import (
    ClosedLoopPlan,
    FidelityPolicy,
    SteadyStateDetector,
    active_fidelity,
    analytical_rate_bound,
    plan_closed_loop,
)
from repro.sim.stats import Histogram


@dataclass
class MicrobenchConfig:
    """One sweep point of the microbenchmark."""

    opcode: Opcode = Opcode.MEMMOVE
    transfer_size: int = 4096
    batch_size: int = 1
    #: Outstanding units (descriptors or batches); 1 = synchronous.
    queue_depth: int = 32
    #: Units to complete per worker (measurement length).
    iterations: int = 100
    n_workers: int = 1
    #: dsa-perf-micros polls completion records; Fig 11 opts into UMWAIT.
    wait_mode: WaitMode = WaitMode.SPIN
    wq_mode: WqMode = WqMode.DEDICATED
    wq_size: int = 32
    n_devices: int = 1
    engines_per_group: int = 1
    src_node: int = 0
    dst_node: int = 0
    src_in_llc: bool = False
    dst_in_llc: bool = False
    cache_control: bool = False
    page_size: int = PAGE_4K
    prefault: bool = True
    backed: bool = False
    pattern: int = 0x5A5A5A5A5A5A5A5A
    dif: Optional[DifContext] = None

    @property
    def synchronous(self) -> bool:
        return self.queue_depth == 1

    def validate(self) -> None:
        if self.transfer_size <= 0:
            raise ValueError(f"transfer size must be positive: {self.transfer_size}")
        if self.batch_size < 1:
            raise ValueError(f"batch size must be >= 1: {self.batch_size}")
        if self.queue_depth < 1:
            raise ValueError(f"queue depth must be >= 1: {self.queue_depth}")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1: {self.iterations}")
        if self.n_workers < 1:
            raise ValueError(f"need at least one worker: {self.n_workers}")
        if self.wq_mode is WqMode.DEDICATED and self.queue_depth > self.wq_size:
            raise ValueError(
                f"DWQ cannot hold queue depth {self.queue_depth} with "
                f"{self.wq_size} entries; software must track credits"
            )

    @property
    def payload_per_unit(self) -> int:
        return self.transfer_size * self.batch_size


@dataclass
class MicrobenchResult:
    """Comparable output of every runner."""

    config: MicrobenchConfig
    operations: int
    payload_bytes: int
    elapsed_ns: float
    latency: Histogram
    cores: List[CpuCore] = field(default_factory=list)
    enqcmd_retries: int = 0

    @property
    def throughput(self) -> float:
        """Payload GB/s (bytes/ns)."""
        return self.payload_bytes / self.elapsed_ns if self.elapsed_ns > 0 else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return self.latency.mean

    def umwait_fraction(self) -> float:
        """Share of worker-core time spent in UMWAIT (Fig 11 metric)."""
        total = sum(core.accounted_time for core in self.cores)
        in_umwait = sum(core.time_in(CycleCategory.UMWAIT) for core in self.cores)
        return in_umwait / total if total else 0.0


class _WorkerBuffers:
    """Pre-allocated buffer slots for one worker (destinations cycle)."""

    def __init__(self, space: AddressSpace, cfg: MicrobenchConfig):
        self.slots: List[List[Dict[str, Buffer]]] = []
        for _slot in range(cfg.queue_depth):
            members = []
            for _member in range(cfg.batch_size):
                members.append(_allocate_member(space, cfg))
            self.slots.append(members)


def _allocate_member(space: AddressSpace, cfg: MicrobenchConfig) -> Dict[str, Buffer]:
    op = cfg.opcode
    size = cfg.transfer_size
    member: Dict[str, Buffer] = {}

    def alloc(node: int, in_llc: bool, nbytes: int = size) -> Buffer:
        return space.allocate(
            nbytes, node=node, backed=cfg.backed, prefault=cfg.prefault, in_llc=in_llc
        )

    if op.reads_source or op is Opcode.CACHE_FLUSH:
        member["src"] = alloc(cfg.src_node, cfg.src_in_llc)
    if op.dual_source:
        member["src2"] = alloc(cfg.src_node, cfg.src_in_llc)
    if op.writes_destination:
        # DIF insert expands 512->520 blocks; over-allocate a little.
        member["dst"] = alloc(cfg.dst_node, cfg.dst_in_llc, nbytes=size + size // 8 + 64)
    if op is Opcode.DUALCAST:
        member["dst2"] = alloc(cfg.dst_node, cfg.dst_in_llc, nbytes=size)
    return member


def _build_descriptor(cfg: MicrobenchConfig, member: Dict[str, Buffer], pasid: int) -> WorkDescriptor:
    flags = DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.BLOCK_ON_FAULT
    if cfg.cache_control:
        flags |= DescriptorFlags.CACHE_CONTROL
    return WorkDescriptor(
        opcode=cfg.opcode,
        pasid=pasid,
        flags=flags,
        src=member["src"].va if "src" in member else 0,
        src2=member["src2"].va if "src2" in member else 0,
        dst=member["dst"].va if "dst" in member else 0,
        dst2=member["dst2"].va if "dst2" in member else 0,
        size=cfg.transfer_size,
        pattern=cfg.pattern,
        dif=cfg.dif,
    )


def _make_unit(cfg: MicrobenchConfig, slot: List[Dict[str, Buffer]], pasid: int):
    descriptors = [_build_descriptor(cfg, member, pasid) for member in slot]
    if cfg.batch_size == 1:
        return descriptors[0]
    return BatchDescriptor(descriptors=descriptors, pasid=pasid)


def _default_device_config(cfg: MicrobenchConfig) -> DeviceConfig:
    return DeviceConfig.single(
        wq_size=cfg.wq_size, n_engines=cfg.engines_per_group, mode=cfg.wq_mode
    )


def _dsa_worker(
    platform: Platform,
    portal: Portal,
    space: AddressSpace,
    cfg: MicrobenchConfig,
    core: CpuCore,
    result: MicrobenchResult,
    probe=None,
    worker_id: int = 0,
) -> Generator:
    env = platform.env
    buffers = _WorkerBuffers(space, cfg)
    outstanding: deque = deque()
    issued = 0
    completed = 0
    while completed < cfg.iterations:
        while issued < cfg.iterations and len(outstanding) < cfg.queue_depth:
            unit = _make_unit(cfg, buffers.slots[issued % cfg.queue_depth], space.pasid)
            yield from prepare_descriptor(env, core, unit, platform.costs)
            retries = yield from submit(env, core, portal, unit, platform.costs)
            result.enqcmd_retries += retries
            issued += 1
            outstanding.append(unit)
        unit = outstanding.popleft()
        yield from wait_for(env, core, unit, cfg.wait_mode, platform.costs)
        completed += 1
        latency = unit.times.completed - unit.times.prepared
        result.latency.add(latency)
        result.operations += len(unit) if isinstance(unit, BatchDescriptor) else 1
        result.payload_bytes += cfg.payload_per_unit
        if probe is not None:
            # Fidelity pilot hook: the steady-state detector records
            # every completion (see repro.sim.fidelity).
            probe(worker_id, env.now, latency)


def _execute_dsa(
    cfg: MicrobenchConfig, platform: Optional[Platform], probe=None
) -> Tuple[MicrobenchResult, Platform, List[DsaDevice]]:
    """Run the DSA closed loop event-by-event (the full-DES path).

    Returns the result plus the platform and each worker's device so
    the batch tier can synthesize counters after a pilot run.
    """
    if platform is None:
        needs_cxl = max(cfg.src_node, cfg.dst_node) >= 2
        # The paper's testbed (§4, Fig 10) measures 1-4 DSA instances on
        # ONE socket — a real SPR exposes up to 4 per socket — so the
        # microbench pins every device to socket 0 regardless of the
        # platform's round-robin default.  Cross-socket fleets are the
        # fleet harness's job (repro.fleet).
        platform = spr_platform(
            n_devices=cfg.n_devices,
            device_config=_default_device_config(cfg),
            with_cxl=needs_cxl,
            socket_of=lambda _index: 0,
        )
    env = platform.env
    result = MicrobenchResult(
        config=cfg, operations=0, payload_bytes=0, elapsed_ns=0.0, latency=Histogram()
    )
    pairs: List[Tuple[str, int]] = [
        (name, wq_id)
        for name, device in sorted(platform.driver.devices.items())
        for wq_id in sorted(device.wqs)
    ]
    worker_devices: List[DsaDevice] = []
    start = env.now
    for worker_id in range(cfg.n_workers):
        space = AddressSpace(page_size=cfg.page_size)
        device_name, wq_id = pairs[worker_id % len(pairs)]
        portal = platform.open_portal(device_name, wq_id, space)
        worker_devices.append(platform.driver.devices[device_name])
        core = platform.core(worker_id)
        result.cores.append(core)
        env.process(
            _dsa_worker(
                platform, portal, space, cfg, core, result,
                probe=probe, worker_id=worker_id,
            ),
            name=f"ubench.worker{worker_id}",
        )
    env.run()
    result.elapsed_ns = env.now - start
    return result, platform, worker_devices


def _run_dsa_batched(
    cfg: MicrobenchConfig, plan: ClosedLoopPlan, policy: FidelityPolicy
) -> Optional[MicrobenchResult]:
    """Pilot-DES + analytical extrapolation, or None to fall back.

    The pilot simulates ramp + window + drain guard event-by-event on a
    fresh platform; if every worker's window is steady (and the rate
    passes the closed-form bound), the remaining ``plan.batched``
    iterations are applied in one step:

    * latency: the window's observed samples, cycled;
    * elapsed: slowest worker's ``batched × gap`` via ``env.advance_to``;
    * core cycle accounting, device counters, ENQCMD retries: scaled by
      the completion ratio (uniform scaling preserves ratio metrics
      like the Fig 11 UMWAIT fraction exactly).
    """
    detector = SteadyStateDetector(cfg.n_workers)
    pilot_cfg = replace(cfg, iterations=plan.pilot_iterations)
    result, platform, worker_devices = _execute_dsa(
        pilot_cfg, None, probe=detector.on_complete
    )
    env = platform.env
    metrics = env.metrics
    bound = analytical_rate_bound(platform, cfg.opcode, cfg.transfer_size)
    # The bound is per work descriptor; units are batches of batch_size.
    unit_bound = bound / cfg.batch_size if bound != float("inf") else None
    advance = extrapolate_closed_loop(plan, detector, policy, rate_bound=unit_bound)
    if advance is None:
        metrics.counter("fidelity.fallbacks").add()
        return None
    members = cfg.batch_size
    scale = cfg.iterations / plan.pilot_iterations
    for extrapolation in advance.workers:
        units = extrapolation.units
        result.latency.extend(cycle_samples(extrapolation.latencies, units))
        result.operations += units * members
        result.payload_bytes += units * cfg.payload_per_unit
        core = result.cores[extrapolation.worker]
        for category, elapsed in core.times().items():
            if elapsed > 0.0:
                core.account(category, elapsed * (scale - 1.0))
        device = worker_devices[extrapolation.worker]
        extra_descriptors = units * members
        extra_bytes = units * cfg.payload_per_unit
        device.descriptors_completed += extra_descriptors
        device.bytes_processed += extra_bytes
        device._m_completed.add(extra_descriptors)
        device._m_bytes.add(extra_bytes)
    result.enqcmd_retries = round(result.enqcmd_retries * scale)
    env.advance_to(env.now + advance.extra_elapsed_ns)
    result.elapsed_ns += advance.extra_elapsed_ns
    metrics.counter("fidelity.regions_batched").add()
    metrics.counter("fidelity.descriptors_batched").add(advance.synthesized_units * members)
    metrics.counter("fidelity.descriptors_des").add(
        plan.pilot_iterations * cfg.n_workers * members
    )
    return result


def run_dsa_microbench(
    cfg: MicrobenchConfig, platform: Optional[Platform] = None
) -> MicrobenchResult:
    """Execute the sweep point on DSA and return the measurements.

    With a non-DES fidelity policy installed (``--fidelity auto`` /
    ``analytical``), homogeneous closed-loop runs take the batched fast
    path when safe: a fresh dedicated platform (callers passing a
    shared ``platform`` keep full DES — another workload may perturb
    it), no fault injector, and enough iterations to amortize a pilot.
    Any steadiness-gate failure falls back to the full DES run below,
    which is also the unconditional path at the default ``des`` tier.
    """
    cfg.validate()
    policy = active_fidelity()
    if policy is not None and platform is None and active_injector() is None:
        plan = plan_closed_loop(cfg.iterations, cfg.queue_depth, policy)
        if plan is not None:
            batched = _run_dsa_batched(cfg, plan, policy)
            if batched is not None:
                return batched
    result, _platform, _devices = _execute_dsa(cfg, platform)
    return result


def _software_worker(
    platform: Platform, cfg: MicrobenchConfig, core: CpuCore, result: MicrobenchResult
) -> Generator:
    kernels = platform.kernels
    in_llc = cfg.src_in_llc and (cfg.dst_in_llc or not cfg.opcode.writes_destination)
    calls = cfg.iterations * cfg.batch_size
    per_call = kernels.time(cfg.opcode, cfg.transfer_size, in_llc=in_llc)
    for _call in range(calls):
        yield core.spend(CycleCategory.BUSY, per_call)
        result.latency.add(per_call)
        result.operations += 1
        result.payload_bytes += cfg.transfer_size


def _run_software_analytical(cfg: MicrobenchConfig) -> MicrobenchResult:
    """Closed-form software run: the kernel loop is exactly periodic.

    ``_software_worker`` spends ``calls × per_call`` of BUSY time with
    no contention between workers, so the DES outcome is a closed-form
    expression — identical operations/latency samples, elapsed time
    equal to one worker's serial span — and the event loop can be
    skipped entirely (one ``advance_to`` instead of ``calls`` events).
    Only float-accumulation order differs from the DES (multiply vs
    repeated add), which is why this path only engages under a non-DES
    policy.
    """
    platform = spr_platform(n_devices=0)
    env = platform.env
    result = MicrobenchResult(
        config=cfg, operations=0, payload_bytes=0, elapsed_ns=0.0, latency=Histogram()
    )
    kernels = platform.kernels
    in_llc = cfg.src_in_llc and (cfg.dst_in_llc or not cfg.opcode.writes_destination)
    calls = cfg.iterations * cfg.batch_size
    per_call = kernels.time(cfg.opcode, cfg.transfer_size, in_llc=in_llc)
    for worker_id in range(cfg.n_workers):
        core = platform.core(worker_id)
        result.cores.append(core)
        core.account(CycleCategory.BUSY, per_call * calls)
        result.latency.add_repeated(per_call, calls)
        result.operations += calls
        result.payload_bytes += cfg.transfer_size * calls
    elapsed = per_call * calls
    env.advance_to(env.now + elapsed)
    result.elapsed_ns = elapsed
    env.metrics.counter("fidelity.regions_batched").add()
    env.metrics.counter("fidelity.descriptors_batched").add(calls * cfg.n_workers)
    return result


def run_software_microbench(
    cfg: MicrobenchConfig, platform: Optional[Platform] = None
) -> MicrobenchResult:
    """Execute the same sweep point with the software kernels."""
    cfg.validate()
    if active_fidelity() is not None and platform is None:
        return _run_software_analytical(cfg)
    platform = platform or spr_platform(n_devices=0)
    env = platform.env
    result = MicrobenchResult(
        config=cfg, operations=0, payload_bytes=0, elapsed_ns=0.0, latency=Histogram()
    )
    start = env.now
    for worker_id in range(cfg.n_workers):
        core = platform.core(worker_id)
        result.cores.append(core)
        env.process(_software_worker(platform, cfg, core, result))
    env.run()
    result.elapsed_ns = env.now - start
    return result


def _cbdma_worker(
    platform: Platform,
    device: CbdmaDevice,
    channel_id: int,
    space: AddressSpace,
    cfg: MicrobenchConfig,
    core: CpuCore,
    result: MicrobenchResult,
) -> Generator:
    env = platform.env
    timing = device.timing
    slots = []
    for _slot in range(cfg.queue_depth):
        src = space.allocate(cfg.transfer_size, node=cfg.src_node)
        dst = space.allocate(cfg.transfer_size, node=cfg.dst_node)
        device.pin(src)
        device.pin(dst)
        slots.append((src, dst))
    def retire(request: CbdmaRequest) -> None:
        nonlocal completed
        completed += 1
        result.latency.add(request.times.completed - request.times.submitted)
        result.operations += 1
        result.payload_bytes += cfg.transfer_size

    outstanding: deque = deque()
    issued = 0
    completed = 0
    while completed < cfg.iterations:
        burst = 0
        while issued < cfg.iterations and len(outstanding) < cfg.queue_depth:
            src, dst = slots[issued % cfg.queue_depth]
            request = CbdmaRequest(src=src, dst=dst, size=cfg.transfer_size)
            yield core.spend(CycleCategory.SUBMIT, timing.ring_write_ns)
            device.submit(request, channel_id=channel_id)
            issued += 1
            burst += 1
            outstanding.append(request)
        if burst:
            # One doorbell covers the whole burst of ring entries, as
            # the I/OAT driver does.
            yield core.spend(CycleCategory.SUBMIT, timing.doorbell_ns)
        request = outstanding.popleft()
        if not request.completion_event.triggered:
            start_wait = env.now
            yield request.completion_event
            core.account(CycleCategory.WAIT_SPIN, env.now - start_wait)
        retire(request)
        # Drain everything else that already finished so the next
        # refill batches its ring writes under a single doorbell.
        while outstanding and outstanding[0].completion_event.triggered:
            retire(outstanding.popleft())


def run_cbdma_microbench(
    cfg: MicrobenchConfig, platform: Optional[Platform] = None
) -> MicrobenchResult:
    """Execute a copy sweep point on the CBDMA baseline (ICX platform).

    CBDMA only copies, so ``cfg.opcode`` must be MEMMOVE; batching is
    not supported by the hardware and is rejected here too.
    """
    cfg.validate()
    if cfg.opcode is not Opcode.MEMMOVE:
        raise ValueError(f"CBDMA supports memory copy only, not {cfg.opcode!r}")
    if cfg.batch_size != 1:
        raise ValueError("CBDMA has no batch descriptors")
    platform = platform or icx_platform()
    env = platform.env
    device = CbdmaDevice(env, platform.memsys)
    result = MicrobenchResult(
        config=cfg, operations=0, payload_bytes=0, elapsed_ns=0.0, latency=Histogram()
    )
    start = env.now
    for worker_id in range(cfg.n_workers):
        space = AddressSpace(page_size=cfg.page_size)
        core = platform.core(worker_id)
        result.cores.append(core)
        env.process(
            _cbdma_worker(
                platform, device, worker_id % device.n_channels, space, cfg, core, result
            )
        )
    env.run()
    result.elapsed_ns = env.now - start
    return result


def sweep(
    base: MicrobenchConfig, runner, **axis
) -> List[Tuple[Dict[str, object], MicrobenchResult]]:
    """Run ``runner`` over the cartesian product of keyword axes.

    Example: ``sweep(cfg, run_dsa_microbench, transfer_size=[1024, 4096])``.
    """
    points: List[Dict[str, object]] = [{}]
    for key, values in axis.items():
        points = [dict(point, **{key: value}) for point in points for value in values]
    results = []
    for point in points:
        results.append((point, runner(replace(base, **point))))
    return results
