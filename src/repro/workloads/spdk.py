"""SPDK NVMe/TCP target with CRC32 data-digest offload (Appendix C, Fig 21).

Two ICX initiators issue read requests over TCP to one SPR target that
serves 16 NVMe SSDs.  For every read the target builds a PDU; when the
Data Digest field is enabled a CRC32C of the payload is computed —
either by ISA-L on the target core, or offloaded (batched) to DSA
through SPDK's accel framework.  The published shapes:

* DSA-offload IOPS ≈ no-digest IOPS, saturating at the same low core
  count; ISA-L needs several more cores to saturate;
* DSA average latency ≈ no-digest, far below ISA-L.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cpu.core import CycleCategory
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.mem.link import FairShareLink
from repro.platform import Platform, spr_platform
from repro.runtime.driver import Portal
from repro.sim.resources import Resource
from repro.sim.stats import Histogram

KB = 1024


class DigestMode(enum.Enum):
    NONE = "none"  # data digest disabled
    ISAL = "isal"  # CRC32C on the target cores (ISA-L, AVX-512)
    DSA = "dsa"  # CRC32C offloaded through the accel framework


@dataclass(frozen=True)
class SpdkCosts:
    """Per-IO target-side CPU costs (ns) besides the digest."""

    #: TCP/PDU processing, NVMe command handling, socket writes.
    per_io_base_ns: float = 2900.0
    #: Additional segmentation cost per 16 KB of payload.
    per_16k_segment_ns: float = 350.0
    #: ISA-L CRC32C streaming rate on one core.
    isal_crc_bandwidth: float = 9.0  # GB/s
    #: Submitting/polling a batched accel-framework CRC job.
    accel_submit_ns: float = 180.0
    #: CRC jobs coalesced per accel-framework submission ("requests
    #: are batched when possible and polled in user-space").
    accel_batch: int = 8
    #: SSD random-read service time (plenty of devices -> no queueing).
    ssd_latency_ns: float = 80_000.0
    #: Aggregate network path to the two initiators.
    network_bandwidth: float = 25.0  # GB/s


@dataclass
class SpdkConfig:
    """One Fig 21 sweep point."""

    io_size: int = 16 * KB
    digest: DigestMode = DigestMode.DSA
    target_cores: int = 4
    queue_depth: int = 64  # outstanding IOs across initiators
    ios: int = 2000
    costs: SpdkCosts = field(default_factory=SpdkCosts)

    def validate(self) -> None:
        if self.io_size < 512:
            raise ValueError(f"io size too small: {self.io_size}")
        if self.target_cores < 1 or self.queue_depth < 1 or self.ios < 1:
            raise ValueError("cores, queue depth, and ios must be >= 1")


@dataclass
class SpdkResult:
    config: SpdkConfig
    ios_completed: int
    elapsed_ns: float
    latency: Histogram

    @property
    def iops(self) -> float:
        return self.ios_completed / self.elapsed_ns * 1e9 if self.elapsed_ns else 0.0

    @property
    def throughput(self) -> float:
        """Payload GB/s delivered to the initiators."""
        return self.ios_completed * self.config.io_size / self.elapsed_ns


def _io_worker(
    platform: Platform,
    cfg: SpdkConfig,
    cores: Resource,
    network: FairShareLink,
    portal: Optional[Portal],
    space: Optional[AddressSpace],
    payload_buffer,
    result: SpdkResult,
    share: int,
) -> Generator:
    """Closed-loop initiator stream: one outstanding IO per worker."""
    env = platform.env
    costs = cfg.costs
    core = platform.core(0)  # aggregate accounting identity
    segments = max(1, cfg.io_size // (16 * KB))
    for _io in range(share):
        start = env.now
        # SSD read happens before the target core gets involved.
        yield env.timeout(costs.ssd_latency_ns)
        yield cores.request()
        descriptor = None
        try:
            yield core.spend(
                CycleCategory.BUSY,
                costs.per_io_base_ns + segments * costs.per_16k_segment_ns,
            )
            if cfg.digest is DigestMode.ISAL:
                yield core.spend(
                    CycleCategory.BUSY, cfg.io_size / costs.isal_crc_bandwidth
                )
            elif cfg.digest is DigestMode.DSA:
                descriptor = WorkDescriptor(
                    opcode=Opcode.CRCGEN,
                    pasid=space.pasid,
                    flags=DescriptorFlags.REQUEST_COMPLETION
                    | DescriptorFlags.BLOCK_ON_FAULT,
                    src=payload_buffer.va,
                    size=cfg.io_size,
                )
                # The accel framework coalesces jobs: the ENQCMD and
                # poll overhead are shared by ~accel_batch CRC jobs.
                amortized = (
                    platform.costs.enqcmd_ns
                    + platform.costs.descriptor_prepare_ns
                    + costs.accel_submit_ns
                ) / costs.accel_batch
                yield core.spend(CycleCategory.BUSY, amortized)
                while not portal.device.submit(descriptor, portal.wq_id):
                    yield env.timeout(platform.costs.enqcmd_ns)
        finally:
            cores.release()
        if descriptor is not None:
            # Completion is reaped by the reactor's poller; the core is
            # free meanwhile (asynchronous accel framework).
            if not descriptor.completion_event.triggered:
                yield descriptor.completion_event
        yield network.transfer(cfg.io_size)
        result.ios_completed += 1
        result.latency.add(env.now - start)


def run_spdk_target(cfg: SpdkConfig, platform: Optional[Platform] = None) -> SpdkResult:
    """Serve ``cfg.ios`` reads; returns IOPS and latency distribution."""
    cfg.validate()
    if platform is None:
        platform = spr_platform(
            device_config=DeviceConfig.single(wq_size=32, mode=WqMode.SHARED)
        )
    env = platform.env
    cores = Resource(env, capacity=cfg.target_cores)
    network = FairShareLink(env, cfg.costs.network_bandwidth, "nvme_tcp.net")
    space = None
    portal = None
    payload = None
    if cfg.digest is DigestMode.DSA:
        space = AddressSpace()
        portal = platform.open_portal("dsa0", 0, space)
        payload = space.allocate(cfg.io_size)
    result = SpdkResult(config=cfg, ios_completed=0, elapsed_ns=0.0, latency=Histogram())
    start = env.now
    per_worker, remainder = divmod(cfg.ios, cfg.queue_depth)
    for worker in range(cfg.queue_depth):
        share = per_worker + (1 if worker < remainder else 0)
        if share == 0:
            continue
        env.process(
            _io_worker(
                platform, cfg, cores, network, portal, space, payload, result, share
            )
        )
    env.run()
    result.elapsed_ns = env.now - start
    return result
