"""CacheLib / CacheBench cloud-caching service (paper Appendix B, Fig 19).

CacheBench drives ``get``/``set`` operations against a slab cache;
each operation memcpy's the item value.  With the DTO library
preloaded, copies at or above 8 KB go to DSA *synchronously* through
four shared WQs; everything else (and every copy in the baseline) runs
on the core.

The paper's measured size profile is reproduced by the sampler:
~4.8% of copies are >= 8 KB but they carry ~96.4% of the bytes.
Threads contend for both CPU cores (``#h``) and the four WQs, which is
why throughput gains flatten past eight cores (Fig 19a) while p99.999
latency collapses (Fig 19b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cpu.core import CycleCategory
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.opcodes import Opcode
from repro.mem.address import AddressSpace
from repro.platform import Platform, spr_platform
from repro.runtime.dml import Dml
from repro.runtime.dto import Dto
from repro.sim.resources import Resource
from repro.sim.rng import make_rng
from repro.sim.stats import Histogram

KB = 1024


@dataclass(frozen=True)
class ItemSizeProfile:
    """Bimodal item-value sizes matching the Appendix B measurements."""

    small_mean: int = 600
    large_mean: int = 220 * KB
    large_fraction: float = 0.048

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        large = rng.random(count) < self.large_fraction
        small_sizes = rng.exponential(self.small_mean, count).astype(np.int64) + 64
        large_sizes = rng.exponential(self.large_mean, count).astype(np.int64) + 8 * KB
        return np.where(large, large_sizes, small_sizes)


@dataclass(frozen=True)
class CacheOpCosts:
    """Non-copy CPU cost of one cache operation."""

    get_lookup_ns: float = 260.0  # hash + find() bookkeeping
    set_alloc_ns: float = 420.0  # allocate() + eviction bookkeeping


@dataclass
class CacheBenchConfig:
    """One Fig 19 configuration: ``#h`` cores x ``#s`` threads."""

    n_cores: int = 4
    n_threads: int = 8
    ops_per_thread: int = 500
    get_fraction: float = 0.9
    use_dsa: bool = True
    min_offload: int = 8 * KB
    sizes: ItemSizeProfile = field(default_factory=ItemSizeProfile)
    costs: CacheOpCosts = field(default_factory=CacheOpCosts)
    seed: int = 7

    def validate(self) -> None:
        if self.n_cores < 1 or self.n_threads < 1 or self.ops_per_thread < 1:
            raise ValueError("cores, threads, and ops must be >= 1")
        if not 0.0 <= self.get_fraction <= 1.0:
            raise ValueError(f"get fraction outside [0,1]: {self.get_fraction}")


@dataclass
class CacheBenchResult:
    config: CacheBenchConfig
    operations: int
    elapsed_ns: float
    get_latency: Histogram
    set_latency: Histogram
    offloaded: int = 0
    software: int = 0

    @property
    def ops_per_second(self) -> float:
        return self.operations / self.elapsed_ns * 1e9 if self.elapsed_ns else 0.0

    def tail_latency(self, pct: float = 99.999) -> float:
        combined = Histogram()
        combined.extend(self.get_latency.values)
        combined.extend(self.set_latency.values)
        return combined.percentile(pct)


def _cachebench_thread(
    platform: Platform,
    cfg: CacheBenchConfig,
    core_slots: Resource,
    dto: Optional[Dto],
    dml: Dml,
    space: AddressSpace,
    thread_id: int,
    result: CacheBenchResult,
) -> Generator:
    env = platform.env
    core = platform.core(thread_id)
    rng = make_rng(cfg.seed + thread_id)
    sizes = cfg.sizes.sample(rng, cfg.ops_per_thread)
    is_get = rng.random(cfg.ops_per_thread) < cfg.get_fraction
    scratch_src = space.allocate(4 * 1024 * KB)
    scratch_dst = space.allocate(4 * 1024 * KB)

    for op in range(cfg.ops_per_thread):
        size = int(min(sizes[op], scratch_src.size))
        start = env.now
        yield core_slots.request()  # threads > cores time-share
        try:
            if is_get[op]:
                yield core.spend(CycleCategory.BUSY, cfg.costs.get_lookup_ns)
            else:
                yield core.spend(CycleCategory.BUSY, cfg.costs.set_alloc_ns)
            descriptor = dml.make_descriptor(
                Opcode.MEMMOVE, size, src=scratch_src, dst=scratch_dst
            )
            if dto is not None:
                yield from dto._call(core, descriptor, in_llc=False)
                result.offloaded = dto.stats.offloaded
                result.software = dto.stats.software
            else:
                yield from dml.run_software(core, descriptor)
                result.software += 1
        finally:
            core_slots.release()
        latency = env.now - start
        (result.get_latency if is_get[op] else result.set_latency).add(latency)
        result.operations += 1


def run_cachebench(
    cfg: CacheBenchConfig, platform: Optional[Platform] = None
) -> CacheBenchResult:
    """Run one CacheBench configuration; returns rates and tails."""
    cfg.validate()
    if platform is None:
        # Four shared WQs, one on each of the socket's four DSA
        # instances (Appendix B: "four shared DSA work queues").
        platform = spr_platform(
            n_devices=4,
            device_config=DeviceConfig.single(wq_size=16, mode=WqMode.SHARED),
            socket_of=lambda _index: 0,
        )
    env = platform.env
    space = AddressSpace()
    portals = (
        [
            platform.open_portal(name, 0, space)
            for name in sorted(platform.driver.devices)
        ]
        if cfg.use_dsa
        else []
    )
    dml = Dml(
        platform.env,
        portals,
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    dto = Dto(dml, min_size=cfg.min_offload) if cfg.use_dsa else None
    core_slots = Resource(env, capacity=cfg.n_cores)
    result = CacheBenchResult(
        config=cfg,
        operations=0,
        elapsed_ns=0.0,
        get_latency=Histogram(),
        set_latency=Histogram(),
    )
    start = env.now
    for thread_id in range(cfg.n_threads):
        env.process(
            _cachebench_thread(
                platform, cfg, core_slots, dto, dml, space, thread_id, result
            )
        )
    env.run()
    result.elapsed_ns = env.now - start
    return result
