"""Labelled x/y series — the data behind each reproduced figure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Series:
    """One line of a figure: a label plus (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    @property
    def xs(self) -> List[float]:
        return [x for x, _y in self.points]

    @property
    def ys(self) -> List[float]:
        return [y for _x, y in self.points]

    def y_at(self, x: float) -> float:
        for px, py in self.points:
            if px == x:
                return py
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    def is_monotonic_increasing(self, tolerance: float = 0.0) -> bool:
        ys = self.ys
        return all(b >= a - tolerance for a, b in zip(ys, ys[1:]))
