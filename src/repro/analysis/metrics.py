"""Small unit/metric helpers used when rendering results."""

from __future__ import annotations


def speedup(accelerated: float, baseline: float) -> float:
    """How many times faster ``accelerated`` is than ``baseline``.

    Inputs are rates (higher = better).  Returns 0 when the baseline
    is degenerate rather than dividing by zero.
    """
    if baseline <= 0:
        return 0.0
    return accelerated / baseline


def human_size(nbytes: float) -> str:
    """Render a byte count the way the paper labels its x-axes."""
    if nbytes < 0:
        raise ValueError(f"negative size: {nbytes}")
    if nbytes < 1024:
        return f"{int(nbytes)}B"
    if nbytes < 1024**2:
        value = nbytes / 1024
        return f"{value:.0f}KB" if value == int(value) else f"{value:.1f}KB"
    value = nbytes / 1024**2
    return f"{value:.0f}MB" if value == int(value) else f"{value:.1f}MB"


def gib(nbytes: float) -> float:
    """Bytes → GiB."""
    return nbytes / 1024**3


def percent(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"
