"""ASCII charts: render experiment series as terminal figures.

The benchmark harness prints tables; for eyeballing a *figure's shape*
(crossovers, plateaus, collapses) a rough plot is clearer.  This
renders one or more :class:`~repro.analysis.series.Series` into a
character grid with a log-scaled x-axis option (the paper's transfer
axes are logarithmic).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.analysis.series import Series

#: Glyphs assigned to series in order.
MARKS = "*o+x#@%&"


def render_chart(
    series_list: Sequence[Series],
    width: int = 64,
    height: int = 16,
    log_x: bool = True,
    title: Optional[str] = None,
    y_label: str = "",
) -> str:
    """Render series into a text plot; returns the multi-line string."""
    populated = [series for series in series_list if series.points]
    if not populated:
        raise ValueError("nothing to plot: every series is empty")
    if width < 16 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")

    xs = [x for series in populated for x in series.xs]
    ys = [y for series in populated for y in series.ys]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(min(ys), 0.0), max(ys)
    if log_x and x_low <= 0:
        log_x = False

    def x_to_col(x: float) -> int:
        if x_high == x_low:
            return 0
        if log_x:
            span = math.log(x_high) - math.log(x_low)
            frac = (math.log(x) - math.log(x_low)) / span
        else:
            frac = (x - x_low) / (x_high - x_low)
        return min(width - 1, int(round(frac * (width - 1))))

    def y_to_row(y: float) -> int:
        if y_high == y_low:
            return height - 1
        frac = (y - y_low) / (y_high - y_low)
        return height - 1 - min(height - 1, int(round(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(populated):
        mark = MARKS[index % len(MARKS)]
        for x, y in series.points:
            grid[y_to_row(y)][x_to_col(x)] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{gutter}}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_low:.4g}".ljust(width - 8) + f"{x_high:.4g}"
    lines.append(" " * (gutter + 1) + x_axis[:width])
    legend = "  ".join(
        f"{MARKS[i % len(MARKS)]} {series.label}" for i, series in enumerate(populated)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def render_experiment_charts(result, width: int = 64, height: int = 14) -> str:
    """Plot all of an ExperimentResult's series grouped on one chart
    (or per-prefix charts when labels carry ``prefix:`` groupings)."""
    if not result.series:
        return f"({result.exp_id}: no series to plot)"
    groups = {}
    for label, series in result.series.items():
        prefix = label.split(":", 1)[0] if ":" in label else ""
        groups.setdefault(prefix, []).append(series)
    charts = []
    for prefix, members in groups.items():
        title = f"{result.exp_id}" + (f" [{prefix}]" if prefix else "")
        try:
            charts.append(render_chart(members, width=width, height=height, title=title))
        except ValueError:
            continue
    return "\n\n".join(charts)
