"""Aligned plain-text tables — the harness's terminal output format."""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """Column-aligned text table with a title, like the paper's tables."""

    def __init__(self, title: str, headers: Sequence[str]):
        if not headers:
            raise ValueError("table needs at least one column")
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_render(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _render(cell: Any, precision: int = 2) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)
