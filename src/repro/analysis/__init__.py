"""Result-presentation helpers shared by experiments and benchmarks."""

from repro.analysis.metrics import gib, human_size, percent, speedup
from repro.analysis.series import Series
from repro.analysis.tables import Table

__all__ = ["Table", "Series", "speedup", "human_size", "gib", "percent"]
