"""Fan experiments out over worker processes; fold observability back in.

Experiments are independent simulations, so ``python -m repro run all``
parallelises embarrassingly: each worker process runs one experiment at
a time with its **own** installed tracer, metrics registry, and seed,
and ships the finished :class:`~repro.experiments.base.ExperimentResult`
(plus its trace-event list) back to the parent.  The parent then folds
each worker's records into its own observability state —
:meth:`Tracer.absorb` remaps per-worker track ids,
:meth:`MetricsRegistry.absorb_flat` reloads the metrics snapshot — so
``--trace``, ``--metrics``, and the run-summary table behave exactly as
in a serial run.

Ordering: outcomes are yielded in request order regardless of which
worker finishes first, so parallel output is byte-comparable to serial
output.

With ``jobs=1`` everything runs in-process against the parent's
installed tracer/registry (no pickling, no fork), which is also the
path the cache-only fast case takes.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.exec.cache import ResultCache, variant_string
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import run_experiment
from repro.obs import (
    MetricsRegistry,
    ResultSink,
    Tracer,
    install_metrics,
    install_sink,
    install_tracer,
    installed_metrics,
    installed_tracer,
    uninstall_metrics,
    uninstall_sink,
)
from repro.sim.fidelity import install_fidelity, uninstall_fidelity
from repro.sim.rng import DEFAULT_SEED, install_seed, uninstall_seed


@dataclass
class RunOutcome:
    """Everything the CLI needs about one finished experiment."""

    exp_id: str
    result: Optional[ExperimentResult] = None
    #: Seconds spent producing this outcome *now* (near zero for a
    #: cache hit; the original simulation time lives in the cache entry).
    wall: float = 0.0
    cached: bool = False
    #: Formatted traceback when the experiment (or its worker) failed.
    error: Optional[str] = None
    #: Worker-side trace records, already folded into the parent tracer
    #: by the time the outcome is yielded.
    trace_events: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None


def _worker(
    exp_id: str,
    quick: bool,
    seed: int,
    with_trace: bool,
    sink_shard: Optional[str] = None,
    hist_backend: Optional[str] = None,
    fidelity: Optional[str] = None,
    calendar: Optional[str] = None,
    tier: Optional[str] = None,
    traffic: Optional[str] = None,
    fleet: Optional[str] = None,
    placement: Optional[str] = None,
) -> RunOutcome:
    """Run one experiment in a worker process.

    Must stay a module-level function (pickled by name).  Pool workers
    are reused across experiments, so each call installs a fresh
    registry/tracer rather than assuming a clean process.  When
    ``sink_shard`` is given, the worker streams its sweep points to
    that JSONL shard; the parent splices shards into the main sink in
    request order (see :meth:`ParallelRunner.run_iter`).
    """
    install_seed(seed)
    if hist_backend is not None:
        # Module globals don't cross the process boundary; re-apply the
        # parent's --hist-backend choice in every worker call.
        from repro.obs import set_default_hist_backend

        set_default_hist_backend(hist_backend)
    if fidelity is not None:
        # Same reason: pool workers are reused, so the parent's
        # --fidelity choice is re-installed on every call (an explicit
        # "des" disables batching left over from a previous runner).
        install_fidelity(fidelity)
    if calendar is not None:
        # Same pattern as --hist-backend: the parent installed the
        # process-wide default, the worker re-applies it per call.
        from repro.sim.calendar import set_default_calendar

        set_default_calendar(calendar)
    if tier is not None or traffic is not None:
        # --tier / --traffic scale the traffic experiments; same reused-
        # worker story as the flags above.
        from repro.traffic.tiers import set_default_tier, set_default_traffic

        if tier is not None:
            set_default_tier(tier)
        if traffic is not None:
            set_default_traffic(traffic)
    if fleet is not None or placement is not None:
        # --fleet / --placement install the fleet topology the traffic
        # harness reads via active_fleet(); same re-install pattern.
        from repro.fleet.topology import set_default_fleet, set_default_placement

        if placement is not None:
            set_default_placement(placement)
        set_default_fleet(fleet)
    registry = MetricsRegistry()
    install_metrics(registry)
    tracer: Optional[Tracer] = None
    if with_trace:
        tracer = Tracer()
        install_tracer(tracer)
    shard: Optional[ResultSink] = None
    if sink_shard is not None:
        try:
            shard = ResultSink(sink_shard)
            install_sink(shard)
        except OSError:
            shard = None
    start = time.perf_counter()
    try:
        result = run_experiment(exp_id, quick=quick)
    except Exception:
        return RunOutcome(
            exp_id=exp_id,
            error=traceback.format_exc(),
            wall=time.perf_counter() - start,
            trace_events=list(tracer.events) if tracer is not None else [],
        )
    finally:
        if shard is not None:
            uninstall_sink()
            shard.close()
    return RunOutcome(
        exp_id=exp_id,
        result=result,
        wall=time.perf_counter() - start,
        trace_events=list(tracer.events) if tracer is not None else [],
    )


class ParallelRunner:
    """Run a list of experiments with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` means in-process serial execution.
    quick:
        Passed through to every experiment's ``run(quick=...)``.
    seed:
        Run seed installed in every worker (and, for ``jobs=1``, in the
        parent for the duration of each run).  ``None`` means
        :data:`~repro.sim.rng.DEFAULT_SEED`.
    cache:
        A :class:`~repro.exec.cache.ResultCache`, or ``None`` to
        disable caching (``--no-cache``).
    trace:
        Whether a live tracer is installed.  Tracing bypasses cache
        *reads* (a cached result carries no trace events) but completed
        runs are still stored.
    sink:
        A :class:`~repro.obs.ResultSink` to stream outcomes to, or
        ``None``.  Serial runs install it so experiments write sweep
        points directly; parallel runs give each worker a shard file
        and splice shards back in request order.  Either way the runner
        appends one ``result`` line per finished experiment.
    """

    def __init__(
        self,
        jobs: int = 1,
        quick: bool = False,
        seed: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        trace: bool = False,
        sink: Optional[ResultSink] = None,
        hist_backend: Optional[str] = None,
        fidelity: Optional[str] = None,
        calendar: Optional[str] = None,
        tier: Optional[str] = None,
        traffic: Optional[str] = None,
        fleet: Optional[str] = None,
        placement: Optional[str] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.quick = bool(quick)
        self.seed = DEFAULT_SEED if seed is None else int(seed)
        self.cache = cache
        self.trace = bool(trace)
        self.sink = sink
        self.hist_backend = hist_backend
        #: ``--fidelity`` mode string installed in every worker (and
        #: in-process for ``jobs=1``); None = leave whatever the caller
        #: installed (normally nothing, i.e. full DES).
        self.fidelity = fidelity
        #: ``--calendar`` backend re-installed in every worker; for
        #: ``jobs=1`` the CLI already set the process-wide default.
        self.calendar = calendar
        #: ``--tier`` / ``--traffic`` scale-and-arrival knobs for the
        #: traffic experiments; same worker re-install pattern.
        self.tier = tier
        self.traffic = traffic
        #: ``--fleet`` topology (``"2x4"``) and ``--placement`` policy
        #: the traffic harness reads via ``active_fleet()``; same worker
        #: re-install pattern.
        self.fleet = fleet
        self.placement = placement

    # -- merge ----------------------------------------------------------
    def _merge(self, outcome: RunOutcome) -> None:
        """Fold a worker outcome into the parent's observability state."""
        if outcome.trace_events:
            tracer = installed_tracer()
            if tracer.enabled:
                tracer.absorb(outcome.trace_events)
        if outcome.result is not None and outcome.result.metrics:
            registry = installed_metrics()
            if registry is not None:
                # Serial semantics: the shared registry holds the most
                # recent experiment's metrics, not an accumulation.
                registry.clear()
                state = getattr(outcome.result, "metrics_state", None)
                if state:
                    # Live state: histograms/gauges come back as real
                    # metric objects with exact (merged) percentiles.
                    registry.absorb_state(state)
                else:
                    registry.absorb_flat(outcome.result.metrics)

    def _sink_result(self, outcome: RunOutcome) -> None:
        """Append one ``result`` line for a finished outcome."""
        if self.sink is None:
            return
        result = outcome.result
        self.sink.result(
            outcome.exp_id,
            ok=outcome.ok,
            cached=outcome.cached,
            wall=round(outcome.wall, 6),
            anchors_held=(
                sum(1 for a in result.anchors if a.holds) if result is not None else 0
            ),
            anchors_total=len(result.anchors) if result is not None else 0,
            metrics=len(result.metrics) if result is not None else 0,
        )

    @property
    def _cache_variant(self) -> str:
        """Cache-key salt for run modes that change the stored payload.

        Built by the one canonical :func:`~repro.exec.cache.variant_string`
        so every payload-changing flag is salted uniformly and distinct
        flag combinations can never collide.
        """
        return variant_string(
            hist=self.hist_backend,
            fidelity=self.fidelity,
            calendar=self.calendar,
            tier=self.tier,
            traffic=self.traffic,
            fleet=self.fleet,
            placement=self.placement,
        )

    def _lookup(self, exp_id: str) -> Optional[RunOutcome]:
        if self.cache is None or self.trace:
            return None
        start = time.perf_counter()
        hit = self.cache.get(exp_id, self.quick, self.seed, self._cache_variant)
        if hit is None:
            return None
        return RunOutcome(
            exp_id=exp_id,
            result=hit.result,
            wall=time.perf_counter() - start,
            cached=True,
        )

    def _store(self, outcome: RunOutcome) -> None:
        if self.cache is None or not outcome.ok or outcome.cached:
            return
        try:
            self.cache.put(
                outcome.exp_id, self.quick, self.seed, outcome.result, outcome.wall,
                self._cache_variant,
            )
        except Exception:
            # A full disk or unpicklable payload must not fail the run.
            pass

    def _run_local(self, exp_id: str) -> RunOutcome:
        """In-process execution against the parent's tracer/registry.

        When no registry is installed, a private one is installed for
        the duration so results carry metrics snapshots in every mode —
        a ``jobs=1`` run must not differ from a ``jobs=4`` run.
        """
        install_seed(self.seed)
        owns_registry = installed_metrics() is None
        if owns_registry:
            install_metrics(MetricsRegistry())
        owns_fidelity = self.fidelity is not None
        if owns_fidelity:
            install_fidelity(self.fidelity)
        start = time.perf_counter()
        try:
            result = run_experiment(exp_id, quick=self.quick)
        except Exception:
            return RunOutcome(
                exp_id=exp_id,
                error=traceback.format_exc(),
                wall=time.perf_counter() - start,
            )
        finally:
            uninstall_seed()
            if owns_registry:
                uninstall_metrics()
            if owns_fidelity:
                uninstall_fidelity()
        return RunOutcome(exp_id=exp_id, result=result, wall=time.perf_counter() - start)

    # -- driver ---------------------------------------------------------
    def run_iter(self, exp_ids: Iterable[str]) -> Iterator[RunOutcome]:
        """Yield one outcome per experiment, in request order."""
        exp_ids = list(exp_ids)
        hits = {}
        misses: List[str] = []
        for exp_id in exp_ids:
            hit = self._lookup(exp_id)
            if hit is not None:
                hits[exp_id] = hit
            else:
                misses.append(exp_id)

        if self.jobs == 1 or len(misses) <= 1:
            if self.sink is not None:
                install_sink(self.sink)
            try:
                for exp_id in exp_ids:
                    outcome = hits.get(exp_id)
                    if outcome is None:
                        outcome = self._run_local(exp_id)
                        self._store(outcome)
                    else:
                        self._merge(outcome)
                    self._sink_result(outcome)
                    yield outcome
            finally:
                if self.sink is not None:
                    uninstall_sink()
            return

        shard_dir: Optional[str] = None
        if self.sink is not None:
            shard_dir = self.sink.path + ".shards"
            os.makedirs(shard_dir, exist_ok=True)

        def shard_path(exp_id: str) -> Optional[str]:
            if shard_dir is None:
                return None
            return os.path.join(shard_dir, f"shard-{exp_id}.jsonl")

        try:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(misses))) as pool:
                futures = {
                    exp_id: pool.submit(
                        _worker, exp_id, self.quick, self.seed, self.trace,
                        shard_path(exp_id), self.hist_backend, self.fidelity,
                        self.calendar, self.tier, self.traffic,
                        self.fleet, self.placement,
                    )
                    for exp_id in misses
                }
                for exp_id in exp_ids:
                    outcome = hits.get(exp_id)
                    if outcome is None:
                        try:
                            outcome = futures[exp_id].result()
                        except Exception:
                            # Worker died (OOM, BrokenProcessPool, unpicklable
                            # result): surface it like an experiment failure.
                            outcome = RunOutcome(exp_id=exp_id, error=traceback.format_exc())
                        self._store(outcome)
                        # Splice the worker's stream in before the result
                        # line, preserving serial line order.
                        if self.sink is not None:
                            shard = shard_path(exp_id)
                            self.sink.absorb_file(shard)
                            try:
                                os.unlink(shard)
                            except OSError:
                                pass
                    self._merge(outcome)
                    self._sink_result(outcome)
                    yield outcome
        finally:
            if shard_dir is not None:
                try:
                    os.rmdir(shard_dir)
                except OSError:
                    pass

    def run(self, exp_ids: Iterable[str]) -> List[RunOutcome]:
        """Materialized :meth:`run_iter`."""
        return list(self.run_iter(exp_ids))
