"""Experiment execution: parallel fan-out and a content-addressed cache.

``repro.exec`` is the layer between the CLI and the experiment
registry.  It owns *how* experiments run — worker processes, result
caching, observability merge — while the experiments themselves stay
plain ``run(quick=...)`` functions.  See ``docs/PERFORMANCE.md``.
"""

from repro.exec.cache import CachedResult, CacheStats, ResultCache
from repro.exec.fingerprint import fingerprint, source_closure
from repro.exec.runner import ParallelRunner, RunOutcome

__all__ = [
    "CachedResult",
    "CacheStats",
    "ParallelRunner",
    "ResultCache",
    "RunOutcome",
    "fingerprint",
    "source_closure",
]
