"""Content-addressed, on-disk cache of experiment results.

Layout (default root ``.repro-cache/``, override with ``--cache-dir``
or ``REPRO_CACHE_DIR``)::

    .repro-cache/
        fig2-5b1f…e3.pkl     # one pickle per (experiment, key)
        fig5-90aa…71.pkl

The file name embeds the experiment id (human-readable) and the first
16 hex chars of the cache key.  The key is a SHA-256 over everything
that determines a result byte-for-byte:

* the experiment id,
* the ``quick`` flag,
* the run seed (``--seed`` / :data:`repro.sim.rng.DEFAULT_SEED`),
* the source fingerprint of the experiment module's static import
  closure (see :mod:`repro.exec.fingerprint`),
* a cache format version.

Simulations are deterministic functions of (code, flags, seed), so a
key hit can return the stored result without re-simulating; any edit to
an experiment or to a model it imports changes the fingerprint and
orphans the old entry.  Orphans are only reclaimed by ``python -m repro
cache clear`` — they are cheap and make switching branches back and
forth free.

Unreadable or stale-format entries are treated as misses and deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.exec.fingerprint import fingerprint
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import module_path

#: Bump to orphan every existing entry when the stored payload changes.
#: v2: ExperimentResult grew ``metrics_state`` (invertible registry
#: state for exact histogram merges); v1 pickles lack the field.
CACHE_FORMAT = 2

#: Default cache root, relative to the current working directory.
DEFAULT_ROOT = ".repro-cache"

#: Flag values that mean "the default run mode" and are dropped from
#: the variant salt, so default runs keep their historical (empty
#: variant) keys across releases that add new flags.
VARIANT_DEFAULTS = {
    "fidelity": "des",
    "hist": "auto",
    "calendar": "heap",
    "tier": "small",
    "traffic": "default",
    "fleet": "1x1",
    "placement": "round-robin",
}


def variant_string(**flags) -> str:
    """Canonical cache-``variant`` salt for run-mode flags.

    One builder instead of ad hoc concatenation at call sites:
    ``variant_string(hist="streaming", fidelity="auto")`` →
    ``"fidelity=auto,hist=streaming"``.  Properties that make distinct
    flag combinations collision-free:

    * keys are emitted in sorted order (call-site order is irrelevant);
    * ``None`` and default values (:data:`VARIANT_DEFAULTS`) are
      dropped, so a new flag at its default never orphans old entries;
    * the ``=`` / ``,`` separators are rejected inside keys and values,
      so two different mappings can never serialize identically.
    """
    parts: List[str] = []
    for key in sorted(flags):
        value = flags[key]
        if value is None:
            continue
        if isinstance(value, bool):
            value = int(value)
        text = str(value)
        if VARIANT_DEFAULTS.get(key) == text:
            continue
        if any(sep in key or sep in text for sep in ("=", ",")):
            raise ValueError(f"variant flag may not contain '=' or ',': {key}={text!r}")
        parts.append(f"{key}={text}")
    return ",".join(parts)


@dataclass
class CachedResult:
    """One deserialized cache entry."""

    result: ExperimentResult
    wall: float            # seconds the original simulation took
    created: float         # unix timestamp of the put()
    key: str


@dataclass
class CacheStats:
    """Aggregate numbers for ``python -m repro cache stats``."""

    root: Path
    entries: int = 0
    total_bytes: int = 0
    saved_wall_s: float = 0.0
    by_experiment: Dict[str, int] = field(default_factory=dict)
    unreadable: int = 0


class ResultCache:
    """Pickle-backed result store addressed by content key."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_ROOT)
        self.root = Path(root)

    # -- keying ----------------------------------------------------------
    def key(self, exp_id: str, quick: bool, seed: int, variant: str = "") -> str:
        """Full content key for one (experiment, flags, seed, code) tuple.

        ``variant`` salts the key for run modes that change the stored
        payload without changing the code — the non-default
        ``--hist-backend`` choices (metrics snapshots differ from the
        ``auto`` default) and non-default ``--fidelity`` tiers (results
        are within-tolerance, not byte-identical).  Callers build it
        with :func:`variant_string`; the empty default keeps existing
        keys.
        """
        source_fp = fingerprint(module_path(exp_id))
        material = f"v{CACHE_FORMAT}|{exp_id}|quick={int(bool(quick))}|seed={seed}|{source_fp}"
        if variant:
            material += f"|variant={variant}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, exp_id: str, key: str) -> Path:
        return self.root / f"{exp_id}-{key[:16]}.pkl"

    # -- read/write ------------------------------------------------------
    def get(
        self, exp_id: str, quick: bool, seed: int, variant: str = ""
    ) -> Optional[CachedResult]:
        """The stored result for this key, or None on a miss.

        An experiment whose source cannot be fingerprinted (e.g. a
        module registered dynamically in a test) is simply uncacheable:
        always a miss.
        """
        try:
            key = self.key(exp_id, quick, seed, variant)
        except Exception:
            return None
        path = self._path(exp_id, key)
        if not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
            if payload["format"] != CACHE_FORMAT or payload["key"] != key:
                raise ValueError("stale cache entry")
            result = payload["result"]
            if not isinstance(result, ExperimentResult):
                raise TypeError("cache entry is not an ExperimentResult")
        except Exception:
            # Corrupt, truncated, or written by incompatible code: a miss.
            path.unlink(missing_ok=True)
            return None
        return CachedResult(
            result=result, wall=payload["wall"], created=payload["created"], key=key
        )

    def put(
        self,
        exp_id: str,
        quick: bool,
        seed: int,
        result: ExperimentResult,
        wall: float,
        variant: str = "",
    ) -> Path:
        """Store ``result``; returns the entry path."""
        key = self.key(exp_id, quick, seed, variant)
        path = self._path(exp_id, key)
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "exp_id": exp_id,
            "quick": bool(quick),
            "seed": seed,
            "result": result,
            "wall": float(wall),
            "created": time.time(),
        }
        # Write-then-rename so a crashed writer never leaves a torn
        # entry under the final name.
        tmp = path.with_suffix(".tmp")
        with tmp.open("wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)
        return path

    # -- maintenance -----------------------------------------------------
    def entries(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.pkl"))

    def stats(self) -> CacheStats:
        stats = CacheStats(root=self.root)
        for path in self.entries():
            stats.entries += 1
            stats.total_bytes += path.stat().st_size
            try:
                with path.open("rb") as fh:
                    payload = pickle.load(fh)
                exp_id = payload["exp_id"]
                stats.saved_wall_s += float(payload["wall"])
            except Exception:
                stats.unreadable += 1
                exp_id = path.name.rsplit("-", 1)[0]
            stats.by_experiment[exp_id] = stats.by_experiment.get(exp_id, 0) + 1
        return stats

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed
