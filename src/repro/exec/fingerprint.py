"""Source fingerprints for cache invalidation.

A cached :class:`~repro.experiments.base.ExperimentResult` is only
valid while the code that produced it is unchanged.  "The code" for one
experiment is its module plus the transitive closure of every
``repro.*`` module it imports — the config/model/analysis sources the
simulation actually exercises.  This module computes that closure
**statically** (by parsing ``import`` statements with :mod:`ast`, never
executing anything) and hashes the source bytes of each member.

The closure over-approximates in two deliberate ways:

* a ``from repro.pkg import name`` pulls in ``repro.pkg.name`` when it
  resolves to a module file, and ``repro.pkg`` itself either way;
* every ancestor package ``__init__.py`` of a member is included, since
  package import runs its init code.

Over-approximation only ever invalidates a cache entry that was still
valid — never the reverse.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import Dict, Optional

import repro

#: Directory that contains the ``repro`` package (``src/`` in-tree).
DEFAULT_PACKAGE_ROOT = Path(repro.__file__).resolve().parent.parent


def _module_file(name: str, package_root: Path) -> Optional[Path]:
    """File implementing dotted module ``name``, or None if absent.

    Resolution is purely path-based (``repro.a.b`` → ``repro/a/b.py``
    or ``repro/a/b/__init__.py``) so no module is ever imported while
    fingerprinting.
    """
    path = package_root.joinpath(*name.split("."))
    module = path.with_suffix(".py")
    if module.is_file():
        return module
    package = path / "__init__.py"
    if package.is_file():
        return package
    return None


def _imported_modules(source: str, package_root: Path):
    """Yield dotted names of every ``repro.*`` module ``source`` imports."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    yield alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                continue  # repro uses absolute imports throughout
            if module != "repro" and not module.startswith("repro."):
                continue
            yield module
            for alias in node.names:
                # ``from repro.pkg import name``: include the submodule
                # when ``name`` is one, otherwise the attr lives in
                # ``repro.pkg`` which is already yielded above.
                candidate = f"{module}.{alias.name}"
                if _module_file(candidate, package_root) is not None:
                    yield candidate


def source_closure(
    module_name: str, package_root: Optional[Path] = None
) -> Dict[str, Path]:
    """Map every module in ``module_name``'s static import closure to its file.

    Includes ``module_name`` itself and the ``__init__.py`` of every
    ancestor package of every member.  Unknown modules raise
    ``ModuleNotFoundError`` only for the root; unresolvable imports
    inside the closure are skipped (they can't contribute source).
    """
    root = Path(package_root) if package_root is not None else DEFAULT_PACKAGE_ROOT
    start = _module_file(module_name, root)
    if start is None:
        raise ModuleNotFoundError(f"cannot locate source for {module_name!r} under {root}")
    closure: Dict[str, Path] = {}
    pending = [(module_name, start)]
    while pending:
        name, path = pending.pop()
        if name in closure:
            continue
        closure[name] = path
        # Ancestor package __init__ files run at import time too.
        parts = name.split(".")
        for depth in range(1, len(parts)):
            ancestor = ".".join(parts[:depth])
            ancestor_file = _module_file(ancestor, root)
            if ancestor_file is not None and ancestor not in closure:
                closure[ancestor] = ancestor_file
        for imported in _imported_modules(path.read_text(encoding="utf-8"), root):
            if imported not in closure:
                imported_file = _module_file(imported, root)
                if imported_file is not None:
                    pending.append((imported, imported_file))
    return closure


def fingerprint(module_name: str, package_root: Optional[Path] = None) -> str:
    """Stable hex digest over the source bytes of the import closure.

    Changes whenever any member module's source changes, a member is
    added/removed from the closure, or a module is renamed.
    """
    closure = source_closure(module_name, package_root)
    digest = hashlib.sha256()
    for name in sorted(closure):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(closure[name].read_bytes()).digest())
    return digest.hexdigest()
