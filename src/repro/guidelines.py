"""The paper's guidelines G1–G6 (§6) as an executable advisor.

The paper distills its characterization into six programmer-facing
guidelines.  This module encodes them against the same calibration the
simulator uses, so applications (and tests) can ask "should this call
be offloaded, and how?" and get an answer with the guideline citations
attached.

The thresholds are not magic numbers pulled from the text: they are
derived from the calibrated cost models — the sync threshold is where
the modelled offload chain beats the software kernel, the async one is
where the submission path amortizes — so retuning the simulator also
retunes the advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import SoftwareKernels
from repro.dsa.config import DsaTimingParams, WqMode
from repro.dsa.opcodes import Opcode
from repro.mem.system import TierKind

#: Batch sizes the paper finds optimal for synchronous offload (G1).
SYNC_SWEET_SPOT_BATCH = (4, 8)


@dataclass
class Recommendation:
    """The advisor's verdict for one prospective offload."""

    use_dsa: bool
    asynchronous: bool = False
    batch_size: int = 1
    cache_control: bool = False
    wq_mode: WqMode = WqMode.DEDICATED
    guidelines: List[str] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)

    def cite(self, guideline: str, reason: str) -> None:
        if guideline not in self.guidelines:
            self.guidelines.append(guideline)
        self.reasons.append(reason)


class OffloadAdvisor:
    """G1–G6 decision support, tied to the model calibration."""

    def __init__(
        self,
        timing: Optional[DsaTimingParams] = None,
        kernels: Optional[SoftwareKernels] = None,
        costs: Optional[InstructionCosts] = None,
    ):
        self.timing = timing or DsaTimingParams()
        self.kernels = kernels or SoftwareKernels()
        self.costs = costs or InstructionCosts()

    # -- derived thresholds ----------------------------------------------------
    def sync_offload_latency_ns(self, size: int, read_latency_ns: float = 95.0) -> float:
        """Modelled one-shot offload latency (the Fig 5/6 chain)."""
        timing = self.timing
        return (
            self.costs.descriptor_prepare_ns
            + timing.portal_write_ns
            + timing.dispatch_ns
            + timing.pe_setup_ns
            + timing.atc_hit_ns
            + read_latency_ns
            + size / timing.fabric_bandwidth
            + timing.completion_write_ns
            + self.costs.poll_check_ns
        )

    def sync_threshold(self, opcode: Opcode = Opcode.MEMMOVE) -> int:
        """Smallest size where sync offload beats the software kernel."""
        size = 256
        while size < 1 << 24:
            if self.sync_offload_latency_ns(size) < self.kernels.time(opcode, size):
                return size
            size *= 2
        return size

    def async_threshold(self, opcode: Opcode = Opcode.MEMMOVE) -> int:
        """Smallest size where streamed submission beats software.

        Async throughput is paced by the per-descriptor core cost
        (prepare + MOVDIR64B + poll), software by its kernel time.
        """
        per_descriptor = (
            self.costs.descriptor_prepare_ns
            + self.costs.movdir64b_ns
            + self.costs.poll_check_ns
        )
        size = 64
        while size < 1 << 24:
            dsa_rate = size / max(per_descriptor, size / self.timing.fabric_bandwidth)
            software_rate = size / self.kernels.time(opcode, size)
            if dsa_rate > software_rate:
                return size
            size *= 2
        return size

    # -- the advisor -------------------------------------------------------------
    def recommend(
        self,
        size: int,
        opcode: Opcode = Opcode.MEMMOVE,
        asynchronous_possible: bool = True,
        contiguous: bool = True,
        consumer_reads_soon: bool = False,
        pollution_sensitive_corunners: bool = False,
        submitting_threads: int = 1,
        available_wqs: int = 1,
    ) -> Recommendation:
        """Apply G1–G6 to one prospective data-movement call."""
        if size <= 0:
            raise ValueError(f"size must be positive: {size}")
        rec = Recommendation(use_dsa=False)

        threshold = (
            self.async_threshold(opcode)
            if asynchronous_possible
            else self.sync_threshold(opcode)
        )
        if asynchronous_possible:
            rec.cite("G2", "asynchronous offload amortizes submission latency")
        if size >= threshold:
            rec.use_dsa = True
            rec.asynchronous = asynchronous_possible
            rec.reasons.append(
                f"{size}B >= modelled crossover of {threshold}B "
                f"({'async' if asynchronous_possible else 'sync'})"
            )
        elif pollution_sensitive_corunners:
            rec.use_dsa = True
            rec.asynchronous = asynchronous_possible
            rec.cite(
                "G2",
                "below the crossover, but offloading avoids polluting the "
                "LLC shared with latency-sensitive co-runners (§4.5)",
            )
        else:
            rec.reasons.append(
                f"{size}B < crossover {threshold}B and cache pollution is "
                "acceptable: run it on the core (G2)"
            )
            return rec

        # G1: batch vs transfer size for the chosen total.
        if contiguous:
            rec.batch_size = 1
            rec.cite("G1", "contiguous data: coalesce into one larger descriptor")
        elif rec.asynchronous:
            rec.batch_size = SYNC_SWEET_SPOT_BATCH[1]
            rec.cite("G1", "scattered data: batch descriptors to amortize submission")
        else:
            rec.batch_size = SYNC_SWEET_SPOT_BATCH[0]
            rec.cite("G1", "sync offload: modest batches (4-8) are the sweet spot")

        # G3: destination steering.
        rec.cache_control = consumer_reads_soon
        if consumer_reads_soon:
            rec.cite("G3", "data is consumed soon: steer writes into the LLC")
        else:
            rec.cite("G3", "streaming data: write to memory, keep the LLC clean")

        # G6: WQ configuration.
        if submitting_threads > available_wqs:
            rec.wq_mode = WqMode.SHARED
            rec.cite(
                "G6",
                f"{submitting_threads} threads > {available_wqs} WQs: a shared "
                "WQ offloads concurrency management to hardware",
            )
        else:
            rec.wq_mode = WqMode.DEDICATED
            rec.cite("G6", "enough WQs for every thread: dedicated WQs win")
        return rec

    def recommend_tier_destination(
        self, src_kind: TierKind, dst_kind: TierKind
    ) -> List[str]:
        """G4: which direction to prefer across heterogeneous tiers."""
        advice = ["G4: DSA is a good candidate for cross-tier movement"]
        if dst_kind is TierKind.CXL and src_kind is TierKind.DRAM:
            advice.append(
                "CXL write latency exceeds its read latency: if either "
                "direction works, put the *destination* on DRAM instead"
            )
        if src_kind is TierKind.CXL and dst_kind is TierKind.DRAM:
            advice.append("promotion direction (CXL read -> DRAM write) is the fast one")
        if src_kind is dst_kind is TierKind.CXL:
            advice.append(
                "both ends on CXL share the device's internal bus — expect "
                "the lowest throughput of any placement"
            )
        return advice

    def recommend_engines(self, typical_transfer: int) -> int:
        """G5: engines per group given the common transfer size."""
        # Small transfers are descriptor-rate-bound: one engine's serial
        # unit limits throughput, so give the group more engines.
        per_descriptor_ns = self.timing.pe_setup_ns + self.timing.dispatch_ns
        single_engine_rate = typical_transfer / per_descriptor_ns
        if single_engine_rate >= self.timing.fabric_bandwidth:
            return 1
        return min(4, max(2, round(self.timing.fabric_bandwidth / single_engine_rate)))
