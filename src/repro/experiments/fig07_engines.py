"""Fig 7 — Memory Copy throughput vs number of PEs per group.

More engines drain small/batched transfers in parallel (G5); a single
engine already saturates the fabric for large transfers.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig7",
        title="Throughput vs engines per group (TS x BS)",
        description=(
            "One WQ feeding 1/2/4 PEs.  Batched submission removes the "
            "submitting core as the bottleneck so engine-level "
            "parallelism is visible at small transfer sizes."
        ),
    )
    engine_counts = [1, 4] if quick else [1, 2, 4]
    points = [
        (512, 8),
        (4 * KB, 8),
        (64 * KB, 4),
    ]
    iterations = 30 if quick else 80
    table = Table(
        "Fig 7 — throughput (GB/s)",
        ["PEs"] + [f"TS {human_size(ts)} BS {bs}" for ts, bs in points],
    )
    for engines in engine_counts:
        series = Series(label=f"PE{engines}")
        cells = [str(engines)]
        for transfer_size, batch_size in points:
            cfg = MicrobenchConfig(
                transfer_size=transfer_size,
                batch_size=batch_size,
                queue_depth=16,
                engines_per_group=engines,
                iterations=max(10, iterations // batch_size),
            )
            throughput = run_dsa_microbench(cfg).throughput
            series.add(transfer_size, throughput)
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    small_one = result.series["PE1"].y_at(512)
    small_four = result.series["PE4"].y_at(512)
    result.check(
        "more PEs help small transfers (G5)",
        "throughput scales with engines at small TS",
        f"{small_one:.1f} -> {small_four:.1f} GB/s at 512B",
        small_four > 2 * small_one,
    )
    big_one = result.series["PE1"].y_at(64 * KB)
    big_four = result.series["PE4"].y_at(64 * KB)
    result.check(
        "single PE saturates large transfers",
        "levelling improvements at large TS",
        f"{big_one:.1f} vs {big_four:.1f} GB/s at 64KB",
        big_four <= 1.15 * big_one,
    )
    return result
