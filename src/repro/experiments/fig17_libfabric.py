"""Fig 17 — libfabric pingpong/RMA, OSU AllReduce, BERT pretraining.

Anchors: PP up to ~5.1x and RMA ~4.7x at 32 KB+; OSU AllReduce
5.0-5.2x for >= 1 MB regardless of rank count; BERT AR speedups of
2.8x/3.3x and end-to-end gains of 3.7%/8.8% at 2/8 ranks.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.libfabric import allreduce, bert_step, pingpong_speedup, rma_speedup

KB = 1024
MB = 1024 * KB


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig17",
        title="libfabric: pingpong, RMA, MPI AllReduce, BERT",
        description=(
            "SAR-protocol speedups of DSA-offloaded copies over the CPU "
            "path for the Appendix A workloads."
        ),
    )
    sizes = [16 * KB, 256 * KB, 4 * MB] if quick else [4 * KB, 16 * KB, 32 * KB, 256 * KB, 1 * MB, 4 * MB]
    pp = Series(label="pingpong")
    rma = Series(label="rma")
    table = Table(
        "Fig 17a — micro-benchmark speedups (DSA over CPU)",
        ["Message size", "Pingpong", "RMA"],
    )
    for size in sizes:
        pp_ratio = pingpong_speedup(size)
        rma_ratio = rma_speedup(size)
        pp.add(size, pp_ratio)
        rma.add(size, rma_ratio)
        table.add_row(human_size(size), f"{pp_ratio:.2f}x", f"{rma_ratio:.2f}x")
    result.add_series(pp)
    result.add_series(rma)
    result.tables.append(table)

    ar_table = Table(
        "Fig 17b — OSU AllReduce speedups (16 MB message)",
        ["Ranks", "CPU ms", "DSA ms", "Speedup"],
    )
    ar = Series(label="allreduce")
    for ranks in (2, 4, 8):
        res = allreduce(16 * MB, ranks)
        ar.add(ranks, res.speedup)
        ar_table.add_row(
            ranks, f"{res.cpu_ns / 1e6:.2f}", f"{res.dsa_ns / 1e6:.2f}", f"{res.speedup:.2f}x"
        )
    result.add_series(ar)
    result.tables.append(ar_table)

    bert_table = Table(
        "BERT pretraining step (MLPerf-style)",
        ["Ranks", "AR speedup", "End-to-end gain"],
    )
    bert = {}
    for ranks in (2, 8):
        step = bert_step(ranks)
        bert[ranks] = step
        bert_table.add_row(
            ranks,
            f"{step.allreduce_speedup:.2f}x",
            f"+{(step.end_to_end_speedup - 1) * 100:.1f}%",
        )
    result.tables.append(bert_table)

    big = max(sizes)
    result.check(
        "pingpong up to ~5.1x at large sizes",
        "as high as 5.1x",
        f"{pp.y_at(big):.2f}x at {human_size(big)}",
        4.0 <= pp.y_at(big) <= 5.6,
    )
    result.check(
        "RMA up to ~4.7x",
        "as high as 4.7x",
        f"{rma.y_at(big):.2f}x at {human_size(big)}",
        4.0 <= rma.y_at(big) <= 5.5,
    )
    result.check(
        "AllReduce ~5x for large messages, flat across ranks",
        "5.1x / 5.2x / 5.0x for 2/4/8 ranks",
        " / ".join(f"{v:.2f}x" for v in ar.ys),
        all(4.4 <= v <= 5.8 for v in ar.ys),
    )
    result.check(
        "BERT AR speedup grows with ranks",
        "2.8x at 2 ranks -> 3.3x at 8 ranks",
        f"{bert[2].allreduce_speedup:.2f}x -> {bert[8].allreduce_speedup:.2f}x",
        2.3 <= bert[2].allreduce_speedup <= 3.3
        and bert[8].allreduce_speedup > bert[2].allreduce_speedup,
    )
    result.check(
        "BERT end-to-end gains",
        "3.7% / 8.8% for 2 / 8 ranks",
        f"{(bert[2].end_to_end_speedup - 1) * 100:.1f}% / "
        f"{(bert[8].end_to_end_speedup - 1) * 100:.1f}%",
        0.02 <= bert[2].end_to_end_speedup - 1 <= 0.06
        and 0.06 <= bert[8].end_to_end_speedup - 1 <= 0.12,
    )
    return result
