"""traffic-crossover — open-loop serving: DSA vs CPU across size and load.

The paper's crossover story (§4.1, Fig 2) retold under open-loop
multi-tenant traffic instead of a closed loop: a tenant fleet offers
the same request stream to the DSA path (SWQ ENQCMD with bounded
retry/backoff) and to the CPU service pool (2 workers on the calibrated
software kernels), and the deliverable is *tail latency and goodput*
rather than throughput.

Two sweeps:

* **size** at a fixed moderate load (half the weaker path's planning
  capacity): small requests pay DSA's fixed offload cost (ENQCMD +
  dispatch + PE setup) and the CPU wins the tail; large requests hit
  the CPU's bandwidth wall and DSA wins.
* **load** at 16 KiB, as a multiple of the CPU pool's capacity: past
  saturation the CPU's bounded backlog sheds hard while the deeper
  128-entry SWQ keeps absorbing, so DSA degrades gracefully where the
  CPU falls off a cliff.

Scale comes from the active tier (``--tier``): the tier's request
budget is split evenly over sweep points, and the tenant fleet size
scales with the tier (see docs/TRAFFIC.md).
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.traffic.loadgen import drive_profile
from repro.traffic.profile import (
    SizeDist,
    TrafficProfile,
    cpu_capacity,
    dsa_capacity,
    make_tenants,
)
from repro.traffic.tiers import active_tier, default_traffic

KB = 1024
CPU_CORES = 2
LOAD_SIZE = 16 * KB
#: Bounded CPU backlog: small enough that a 1.2x overload sheds within
#: the small tier's per-point request budget instead of parking the
#: excess in an ever-growing queue.
CPU_QUEUE_LIMIT = 32


def _drive(size: int, rate: float, target: str, tenants: int, requests: int) -> dict:
    """One sweep point: a tenant fleet offering ``rate`` to one path."""
    profile = TrafficProfile(
        name=f"crossover-{target}-{size}",
        tenants=make_tenants(
            "t",
            tenants,
            rate,
            sizes=SizeDist(kind="fixed", size=size),
            target=target,
        ),
        cpu_cores=CPU_CORES,
        cpu_queue_limit=CPU_QUEUE_LIMIT,
    )
    generator, totals = drive_profile(
        profile, requests, arrival_override=default_traffic()
    )
    account = generator.accountant
    completed = totals["completed"]
    elapsed = generator.platform.env.now
    return {
        "p50": account.cohort_percentile("default", 50.0) if completed else 0.0,
        "p99": account.cohort_percentile("default", 99.0) if completed else 0.0,
        "completed": completed,
        "dropped": totals["dropped"],
        "drop_frac": totals["dropped"] / totals["offered"],
        "goodput": completed / elapsed if elapsed else 0.0,
    }


def run(quick: bool = False) -> ExperimentResult:
    tier = active_tier()
    result = ExperimentResult(
        exp_id="traffic-crossover",
        title="Open-loop serving crossover: DSA SWQ vs CPU pool",
        description=(
            "Multi-tenant open-loop traffic offered to the DSA path and the "
            f"{CPU_CORES}-core CPU pool across request size and load "
            f"({tier.name} tier: {tier.requests} requests, {tier.tenants} tenants)."
        ),
    )
    sizes = [1 * KB, 64 * KB] if quick else [1 * KB, 4 * KB, 16 * KB, 64 * KB]
    loads = [0.3, 1.2] if quick else [0.3, 0.6, 0.9, 1.2]
    # Tier budget split over every (point, path) run in both sweeps.
    n_runs = 2 * (len(sizes) + len(loads))
    requests = max(200, tier.requests // n_runs)
    tenants = max(8, tier.tenants // 8)

    runs = {}
    size_table = Table(
        "Size sweep at half capacity — p99 latency (ns)",
        ["Size", "CPU p99", "DSA p99", "CPU goodput (req/us)", "DSA goodput (req/us)"],
    )
    for target in ("cpu", "dsa0"):
        series = Series(label=f"{target}-size-p99")
        for size in sizes:
            rate = 0.5 * min(
                dsa_capacity(size), cpu_capacity(size, cores=CPU_CORES)
            )
            runs[(target, "size", size)] = _drive(size, rate, target, tenants, requests)
            series.add(size, runs[(target, "size", size)]["p99"])
        result.add_series(series)
    for size in sizes:
        cpu, dsa = runs[("cpu", "size", size)], runs[("dsa0", "size", size)]
        size_table.add_row(
            f"{size // KB} KiB",
            f"{cpu['p99']:.0f}",
            f"{dsa['p99']:.0f}",
            f"{1e3 * cpu['goodput']:.2f}",
            f"{1e3 * dsa['goodput']:.2f}",
        )
    result.tables.append(size_table)

    cpu_cap = cpu_capacity(LOAD_SIZE, cores=CPU_CORES)
    load_table = Table(
        f"Load sweep at {LOAD_SIZE // KB} KiB (x CPU capacity) — drops and p99",
        ["Load", "CPU drop %", "DSA drop %", "CPU p99", "DSA p99"],
    )
    for target in ("cpu", "dsa0"):
        series = Series(label=f"{target}-load-dropfrac")
        for load in loads:
            runs[(target, "load", load)] = _drive(
                LOAD_SIZE, load * cpu_cap, target, tenants, requests
            )
            series.add(load, runs[(target, "load", load)]["drop_frac"])
        result.add_series(series)
    for load in loads:
        cpu, dsa = runs[("cpu", "load", load)], runs[("dsa0", "load", load)]
        load_table.add_row(
            f"{load:.1f}x",
            f"{100 * cpu['drop_frac']:.1f}",
            f"{100 * dsa['drop_frac']:.1f}",
            f"{cpu['p99']:.0f}",
            f"{dsa['p99']:.0f}",
        )
    result.tables.append(load_table)

    small, large = sizes[0], sizes[-1]
    result.check(
        "CPU wins the tail at small sizes",
        "fixed offload cost dominates small requests (G1)",
        f"at {small}B: CPU p99 {runs[('cpu', 'size', small)]['p99']:.0f} vs "
        f"DSA p99 {runs[('dsa0', 'size', small)]['p99']:.0f} ns",
        runs[("cpu", "size", small)]["p99"] < runs[("dsa0", "size", small)]["p99"],
    )
    result.check(
        "DSA wins the tail at large sizes",
        "the CPU's per-core bandwidth wall binds first",
        f"at {large}B: DSA p99 {runs[('dsa0', 'size', large)]['p99']:.0f} vs "
        f"CPU p99 {runs[('cpu', 'size', large)]['p99']:.0f} ns",
        runs[("dsa0", "size", large)]["p99"] < runs[("cpu", "size", large)]["p99"],
    )
    top = loads[-1]
    cpu_top, dsa_top = runs[("cpu", "load", top)], runs[("dsa0", "load", top)]
    result.check(
        "overload sheds on the CPU path first",
        "the bounded CPU backlog drops past saturation; the SWQ absorbs",
        f"at {top:.1f}x: CPU drops {100 * cpu_top['drop_frac']:.1f}% vs "
        f"DSA {100 * dsa_top['drop_frac']:.1f}%",
        cpu_top["drop_frac"] > 0.05 and dsa_top["drop_frac"] < cpu_top["drop_frac"],
    )
    result.check(
        "DSA goodput holds at overload",
        "offloaded completions keep flowing past CPU saturation",
        f"at {top:.1f}x: DSA completed {dsa_top['completed']} vs "
        f"CPU {cpu_top['completed']}",
        dsa_top["completed"] >= cpu_top["completed"],
    )
    return result
