"""Table 2 — evaluated system configurations (ICX vs SPR presets)."""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.cbdma.device import CbdmaDevice
from repro.dsa.config import DeviceConfig
from repro.experiments.base import ExperimentResult
from repro.platform import icx_platform, spr_platform

MB = 1024 * 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table2",
        title="Evaluated system configurations",
        description=(
            "Both Table 2 platforms instantiated from the presets: the "
            "SPR system hosting DSA (8 WQs / 4 engines) and the ICX "
            "baseline hosting CBDMA with 16 channels."
        ),
    )
    spr = spr_platform(device_config=DeviceConfig.paper_default())
    icx = icx_platform()
    cbdma = CbdmaDevice(icx.env, icx.memsys)
    dsa = spr.driver.device("dsa0")

    table = Table(
        "Table 2 (reproduced)",
        ["Attribute", "Ice Lake (ICX)", "Sapphire Rapids (SPR)"],
    )
    table.add_row(
        "Shared LLC (MB)",
        f"{icx.memsys.llc.size // MB}",
        f"{spr.memsys.llc.size // MB}",
    )
    icx_node = icx.memsys.node(0)
    spr_node = spr.memsys.node(0)
    table.add_row(
        "Memory",
        "Six DDR4 channels",
        "Eight DDR5 channels",
    )
    table.add_row(
        "Node stream bandwidth (GB/s)",
        f"{icx_node.read_link.bandwidth:.0f}",
        f"{spr_node.read_link.bandwidth:.0f}",
    )
    table.add_row(
        "DMA engine",
        f"CBDMA w/ {cbdma.n_channels} channels",
        f"DSA w/ {len(dsa.wqs)} WQs, {sum(len(g.engines) for g in dsa.groups.values())} engines",
    )
    result.tables.append(table)

    result.check(
        "SPR LLC larger than ICX",
        "105 MB vs 57 MB",
        f"{spr.memsys.llc.size // MB} vs {icx.memsys.llc.size // MB}",
        spr.memsys.llc.size > icx.memsys.llc.size,
    )
    result.check(
        "DSA resources per Table 2",
        "8 WQs, 4 engines",
        f"{len(dsa.wqs)} WQs, {sum(len(g.engines) for g in dsa.groups.values())} engines",
        len(dsa.wqs) == 8
        and sum(len(g.engines) for g in dsa.groups.values()) == 4,
    )
    result.check(
        "CBDMA channels per Table 2",
        "16 channels",
        str(cbdma.n_channels),
        cbdma.n_channels == 16,
    )
    return result
