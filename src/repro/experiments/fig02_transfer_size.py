"""Fig 2 — speedup over software vs transfer size, sync and async.

Sweeps every analysed operation over transfer sizes and reports the
DSA-over-software throughput ratio for (a) synchronous offload (one
descriptor at a time) and (b) asynchronous offload at queue depth 32.
Paper anchors: sync becomes favourable above ~4 KB; async already
around 256 B.
"""

from __future__ import annotations

from typing import List

from repro.analysis.metrics import human_size, speedup
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.dif import DifContext
from repro.dsa.opcodes import Opcode
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024

OPERATIONS = [
    Opcode.MEMMOVE,
    Opcode.DUALCAST,
    Opcode.CRCGEN,
    Opcode.COPY_CRC,
    Opcode.COMPARE,
    Opcode.COMPARE_PATTERN,
    Opcode.FILL,
    Opcode.DIF_INSERT,
    Opcode.DIF_STRIP,
]


def _sizes(quick: bool) -> List[int]:
    if quick:
        return [256, 4 * KB, 64 * KB, 1024 * KB]
    return [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1024 * KB]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig2",
        title="Throughput improvement over software vs transfer size",
        description=(
            "Speedup of DSA over the optimized software library per "
            "operation: (a) synchronous, (b) asynchronous at QD 32."
        ),
    )
    iterations = 25 if quick else 60
    sizes = _sizes(quick)
    for mode, queue_depth in (("sync", 1), ("async", 32)):
        table = Table(
            f"Fig 2{'a' if mode == 'sync' else 'b'} — {mode} speedup over software",
            ["Operation"] + [human_size(s) for s in sizes],
        )
        for opcode in OPERATIONS:
            series = Series(label=f"{mode}:{opcode.name}")
            cells = [opcode.name]
            dif = (
                DifContext(block_size=512)
                if opcode in (Opcode.DIF_INSERT, Opcode.DIF_STRIP)
                else None
            )
            for size in sizes:
                cfg = MicrobenchConfig(
                    opcode=opcode,
                    transfer_size=size,
                    queue_depth=queue_depth,
                    iterations=iterations,
                    dif=dif,
                )
                ratio = speedup(
                    run_dsa_microbench(cfg).throughput,
                    run_software_microbench(cfg).throughput,
                )
                series.add(size, ratio)
                cells.append(f"{ratio:.2f}x")
            result.add_series(series)
            table.add_row(*cells)
        # Fig 2 also plots "NT-Memory Fill": the fill op against a
        # non-temporal-store software baseline (no LLC allocation).
        nt_series = Series(label=f"{mode}:NT_FILL")
        cells = ["FILL (vs nt-store)"]
        from repro.cpu.swlib import NT_FILL

        for size in sizes:
            cfg = MicrobenchConfig(
                opcode=Opcode.FILL,
                transfer_size=size,
                queue_depth=queue_depth,
                iterations=iterations,
            )
            dsa = run_dsa_microbench(cfg).throughput
            nt_software = size / NT_FILL.time(size)
            ratio = speedup(dsa, nt_software)
            nt_series.add(size, ratio)
            cells.append(f"{ratio:.2f}x")
        result.add_series(nt_series)
        table.add_row(*cells)
        result.tables.append(table)

    sync_copy = result.series["sync:MEMMOVE"]
    async_copy = result.series["async:MEMMOVE"]
    big = max(s for s in sizes if s >= 64 * KB)
    result.check(
        "sync copy favourable above ~4KB",
        "speedup > 1 for sizes above 4KB",
        f"{sync_copy.y_at(big):.2f}x at {human_size(big)}",
        sync_copy.y_at(big) > 1.0,
    )
    small = 256
    result.check(
        "async copy favourable around 256B",
        "speedup ~1 at 256B, rising beyond",
        f"{async_copy.y_at(small):.2f}x at 256B",
        async_copy.y_at(small) > 0.9,
    )
    if 64 in sizes:
        result.check(
            "async copy loses at 64B",
            "software wins at the smallest sizes",
            f"{async_copy.y_at(64):.2f}x at 64B",
            async_copy.y_at(64) < 1.0,
        )
    big_fill = result.series["async:FILL"].y_at(big)
    big_nt = result.series["async:NT_FILL"].y_at(big)
    result.check(
        "nt-store baseline narrows the fill speedup",
        "NT-Memory Fill shows smaller improvements than Memory Fill",
        f"{big_fill:.2f}x vs nt-store {big_nt:.2f}x at {human_size(big)}",
        big_nt < big_fill,
    )
    return result
