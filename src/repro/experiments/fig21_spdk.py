"""Fig 21 — SPDK NVMe/TCP target: read IOPS and latency vs target cores.

Anchors: with DSA CRC32 offload, IOPS and latency track the
digest-disabled configuration and saturate at few target cores; ISA-L
software digests need substantially more cores and add latency.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.spdk import DigestMode, SpdkConfig, run_spdk_target

KB = 1024


def _sweep(io_size: int, queue_depth: int, cores: List[int], ios: int):
    out: Dict[DigestMode, Dict[int, object]] = {mode: {} for mode in DigestMode}
    for mode in DigestMode:
        for n in cores:
            out[mode][n] = run_spdk_target(
                SpdkConfig(
                    io_size=io_size,
                    digest=mode,
                    target_cores=n,
                    queue_depth=queue_depth,
                    ios=ios,
                )
            )
    return out


def _saturation_cores(series: Series, threshold: float = 0.97) -> int:
    peak = max(series.ys)
    for cores, iops in series.points:
        if iops >= threshold * peak:
            return int(cores)
    return int(series.xs[-1])


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig21",
        title="SPDK NVMe/TCP target with DSA CRC32 data-digest offload",
        description=(
            "Read IOPS and mean latency vs target core count for 16 KB "
            "random reads and 128 KB sequential reads; digest disabled "
            "vs ISA-L vs DSA offload."
        ),
    )
    core_counts = [2, 4, 6, 8] if quick else [1, 2, 4, 6, 8, 10]
    ios = 1200 if quick else 3000

    workloads = [("16KB randread", 16 * KB, 256), ("128KB seqread", 128 * KB, 96)]
    saturation: Dict[str, Dict[DigestMode, int]] = {}
    for label, io_size, queue_depth in workloads:
        sweep = _sweep(io_size, queue_depth, core_counts, ios)
        table = Table(
            f"Fig 21 — {label}: kIOPS (mean latency us)",
            ["Cores", "No digest", "ISA-L", "DSA"],
        )
        saturation[label] = {}
        for mode in DigestMode:
            series = Series(label=f"{label}:{mode.value}")
            for n in core_counts:
                series.add(n, sweep[mode][n].iops)
            result.add_series(series)
            saturation[label][mode] = _saturation_cores(series)
        for n in core_counts:
            cells = [n]
            for mode in DigestMode:
                run_result = sweep[mode][n]
                cells.append(
                    f"{run_result.iops / 1e3:.0f} ({run_result.latency.mean / 1e3:.0f})"
                )
            table.add_row(*cells)
        result.tables.append(table)

        dsa_peak = sweep[DigestMode.DSA][core_counts[-1]]
        none_peak = sweep[DigestMode.NONE][core_counts[-1]]
        isal_mid = sweep[DigestMode.ISAL][core_counts[0]]
        none_mid = sweep[DigestMode.NONE][core_counts[0]]
        result.check(
            f"{label}: DSA latency ~ no digest",
            "nearly equivalent average latency",
            f"{dsa_peak.latency.mean / 1e3:.0f}us vs {none_peak.latency.mean / 1e3:.0f}us",
            dsa_peak.latency.mean <= 1.1 * none_peak.latency.mean,
        )
        result.check(
            f"{label}: ISA-L trails at low core counts",
            "ISA-L saturates only with more cores",
            f"{isal_mid.iops / 1e3:.0f} vs {none_mid.iops / 1e3:.0f} kIOPS "
            f"at {core_counts[0]} cores",
            isal_mid.iops < 0.9 * none_mid.iops,
        )

    rand = "16KB randread"
    result.check(
        "16KB: DSA saturates with ~6 cores, ISA-L needs more",
        "no-digest/DSA saturate at 6 target cores, ISA-L over 8",
        f"none {saturation[rand][DigestMode.NONE]}, "
        f"dsa {saturation[rand][DigestMode.DSA]}, "
        f"isal {saturation[rand][DigestMode.ISAL]} cores",
        saturation[rand][DigestMode.DSA] <= saturation[rand][DigestMode.ISAL]
        and saturation[rand][DigestMode.DSA] <= 8,
    )
    seq = "128KB seqread"
    result.check(
        "128KB: DSA saturates with ~2 cores, ISA-L needs more",
        "no-digest/DSA saturate at 2 cores, ISA-L at 6",
        f"none {saturation[seq][DigestMode.NONE]}, "
        f"dsa {saturation[seq][DigestMode.DSA]}, "
        f"isal {saturation[seq][DigestMode.ISAL]} cores",
        saturation[seq][DigestMode.DSA] < saturation[seq][DigestMode.ISAL],
    )
    return result
