"""Fig 14 — same total payload, different transfer-size:batch-size splits.

G1: for a fixed total, fewer larger descriptors beat many small ones;
synchronous offloads have a sweet spot at modest batches (4-8).
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024
MB = 1024 * KB


def _splits(total: int, quick: bool):
    batches = [1, 4, 16, 64] if not quick else [1, 8, 64]
    return [(total // bs, bs) for bs in batches if total // bs >= 256]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig14",
        title="Equal total payload: transfer size vs batch size trade-off",
        description=(
            "The same aggregate bytes offloaded as <TS:BS> splits, sync "
            "and async; coalescing into larger descriptors wins (G1)."
        ),
    )
    totals = [256 * KB] if quick else [64 * KB, 256 * KB, 1 * MB]
    iterations = 20 if quick else 40
    for mode, queue_depth in (("sync", 1), ("async", 8)):
        table = Table(
            f"Fig 14 — {mode} throughput (GB/s) for equal totals",
            ["Total"] + [f"BS {bs}" for _ts, bs in _splits(totals[0], quick)],
        )
        for total in totals:
            series = Series(label=f"{mode}:{human_size(total)}")
            cells = [human_size(total)]
            for transfer_size, batch_size in _splits(total, quick):
                cfg = MicrobenchConfig(
                    transfer_size=transfer_size,
                    batch_size=batch_size,
                    queue_depth=queue_depth,
                    iterations=iterations,
                )
                throughput = run_dsa_microbench(cfg).throughput
                series.add(batch_size, throughput)
                cells.append(f"{throughput:.2f}")
            result.add_series(series)
            table.add_row(*cells)
        result.tables.append(table)

    async_series = result.series[f"async:{human_size(totals[-1])}"]
    first_bs = async_series.xs[0]
    last_bs = async_series.xs[-1]
    result.check(
        "larger descriptors beat many small ones (G1, async)",
        "throughput decreases when splitting the same total into more descriptors",
        f"BS{int(first_bs)} {async_series.y_at(first_bs):.1f} vs "
        f"BS{int(last_bs)} {async_series.y_at(last_bs):.1f} GB/s",
        async_series.y_at(first_bs) >= async_series.y_at(last_bs),
    )
    sync_series = result.series[f"sync:{human_size(totals[-1])}"]
    best_bs = max(sync_series.points, key=lambda p: p[1])[0]
    result.check(
        "sync sweet spot at modest batches",
        "BS 4-8 yields the best sync results",
        f"best at BS {int(best_bs)}",
        1 < best_bs <= 16,
    )
    return result
