"""§4.2 headline — DSA vs CBDMA average throughput ratio (~2.1x)."""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_cbdma_microbench,
    run_dsa_microbench,
)

KB = 1024
MB = 1024 * KB


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="cbdma",
        title="DSA (SPR) vs CBDMA (ICX) throughput across transfer sizes",
        description=(
            "Asynchronous copy throughput of one DSA PE vs one CBDMA "
            "channel, logically equivalent resources per §4.1."
        ),
    )
    sizes = [4 * KB, 64 * KB, 1 * MB] if quick else [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB]
    iterations = 40 if quick else 120
    table = Table(
        "DSA vs CBDMA (async, QD 32)",
        ["Transfer size", "DSA GB/s", "CBDMA GB/s", "Ratio"],
    )
    ratios = Series(label="ratio")
    for size in sizes:
        cfg = MicrobenchConfig(transfer_size=size, queue_depth=32, iterations=iterations)
        dsa = run_dsa_microbench(cfg).throughput
        cbdma = run_cbdma_microbench(cfg).throughput
        ratio = dsa / cbdma
        ratios.add(size, ratio)
        table.add_row(human_size(size), dsa, cbdma, f"{ratio:.2f}x")
    result.add_series(ratios)
    result.tables.append(table)

    average = sum(ratios.ys) / len(ratios.ys)
    result.check(
        "average ratio ~2.1x",
        "DSA performs an average of 2.1x greater throughput than CBDMA",
        f"{average:.2f}x average over {len(sizes)} sizes",
        1.7 <= average <= 2.6,
    )
    big = ratios.y_at(1 * MB)
    result.check(
        "large-transfer ratio tracks the bandwidth gap",
        "30 GB/s fabric vs ~14 GB/s channel",
        f"{big:.2f}x at 1MB",
        1.9 <= big <= 2.4,
    )
    return result
