"""Fig 15 — offloading from/to LLC-resident vs DRAM-resident buffers.

Labels follow Fig 6's scheme with L = LLC, D = local DRAM.  LLC
sources shorten the critical read path (guideline G2/G3 interplay):
larger transfers belong on DSA, small LLC-hot ones on the core.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024

CONFIGS: List[Tuple[str, bool, bool]] = [
    ("D:L,L", True, True),
    ("D:L,D", True, False),
    ("D:D,L", False, True),
    ("D:D,D", False, False),
]


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig15",
        title="Throughput/latency with LLC vs DRAM buffer placement",
        description=(
            "Sync (BS 1) Memory Copy with source/destination resident "
            "in the LLC (L) or local DRAM (D)."
        ),
    )
    sizes = [512, 4 * KB, 64 * KB] if quick else [128, 512, 4 * KB, 16 * KB, 64 * KB]
    iterations = 25 if quick else 50
    table = Table(
        "Fig 15 — throughput GB/s (latency ns)",
        ["Config"] + [human_size(s) for s in sizes],
    )
    for label, src_llc, dst_llc in CONFIGS:
        series = Series(label=label)
        cells = [label]
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                queue_depth=1,
                iterations=iterations,
                src_in_llc=src_llc,
                dst_in_llc=dst_llc,
                cache_control=dst_llc,
            )
            bench = run_dsa_microbench(cfg)
            series.add(size, bench.throughput)
            cells.append(f"{bench.throughput:.2f} ({bench.mean_latency_ns:.0f})")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    probe = sizes[1]
    llc_src = result.series["D:L,L"].y_at(probe)
    dram_src = result.series["D:D,D"].y_at(probe)
    result.check(
        "LLC-resident sources are faster",
        "LLC data cuts the read latency off the critical path",
        f"L,L {llc_src:.2f} vs D,D {dram_src:.2f} GB/s at {human_size(probe)}",
        llc_src > dram_src,
    )
    small = sizes[0]
    sw = run_software_microbench(
        MicrobenchConfig(transfer_size=small, queue_depth=1, iterations=iterations)
    ).throughput
    dsa_small = result.series["D:D,D"].y_at(small)
    result.check(
        "small transfers belong on the core (G2)",
        "below ~4KB sync, software wins",
        f"software {sw:.2f} vs DSA {dsa_small:.2f} GB/s at {human_size(small)}",
        sw > dsa_small,
    )
    big = sizes[-1]
    sw_big = run_software_microbench(
        MicrobenchConfig(transfer_size=big, queue_depth=1, iterations=iterations)
    ).throughput
    dsa_big = result.series["D:D,D"].y_at(big)
    result.check(
        "large transfers belong on DSA",
        "beyond the crossover DSA wins even from DRAM",
        f"DSA {dsa_big:.2f} vs software {sw_big:.2f} GB/s at {human_size(big)}",
        dsa_big > sw_big,
    )
    return result
