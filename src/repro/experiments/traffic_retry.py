"""traffic-retry — ENQCMD retry storms under shared-WQ fan-in.

The paper's shared-mode caution (§3.3, G2): ENQCMD is non-posted, so a
full SWQ turns every submitter into a retry loop, and the damage scales
with how many tenants share the queue.  This experiment holds the WQ
small (16 entries) and sweeps *fan-in* — how many bursty tenants share
it — with per-tenant rate fixed, so aggregate load grows with the
tenant count: a handful of tenants submit politely, a full fleet
pushes the queue into a retry storm with backoff, shed requests, and a
blown-up tail.

This is also the showcase for per-submitter retry attribution
(``<owner>.wq<id>.source.<tenant>.enqcmd_retries``): the per-source
counters must sum exactly to the aggregate WQ counter, which is checked
as an anchor here and gated in ``scripts/bench_traffic.py``.

Tier scaling (``--tier``): fan-in steps are fractions of the tier's
tenant count; the request budget is split over sweep points.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.config import DeviceConfig, WqMode
from repro.experiments.base import ExperimentResult
from repro.fleet import DEFAULT_FLEET
from repro.traffic.loadgen import drive_profile
from repro.traffic.profile import (
    SizeDist,
    TrafficProfile,
    dsa_capacity,
    make_tenants,
)
from repro.traffic.tiers import active_tier, default_traffic

KB = 1024
SIZE = 8 * KB
WQ_SIZE = 16
ENGINES = 4
CV2 = 9.0
#: Per-tenant rate is pinned so aggregate rho = 1.25 * (fan_in / tier
#: tenants): the full fleet overcommits the device by 25%.
FULL_FLEET_RHO = 1.25


def _drive(fan_in: int, per_tenant_rate: float, requests: int) -> dict:
    profile = TrafficProfile(
        name=f"retry-{fan_in}",
        tenants=make_tenants(
            "t",
            fan_in,
            fan_in * per_tenant_rate,
            arrival="bursty",
            cv2=CV2,
            sizes=SizeDist(kind="fixed", size=SIZE),
            max_retries=8,
        ),
    )
    generator, totals = drive_profile(
        profile,
        requests,
        device_config=DeviceConfig.single(
            wq_size=WQ_SIZE, n_engines=ENGINES, mode=WqMode.SHARED
        ),
        arrival_override=default_traffic(),
        # The retry storm is calibrated against ONE 16-entry SWQ; a
        # --fleet topology would spread the fan-in and dissolve the
        # backpressure the anchors measure, so the layout is pinned.
        fleet=DEFAULT_FLEET,
    )
    snapshot = generator.platform.metrics_snapshot()
    aggregate = snapshot.get("dsa0.wq0.enqcmd_retries", 0.0)
    per_source = sum(
        value
        for name, value in snapshot.items()
        if name.startswith("dsa0.wq0.source.") and name.endswith(".enqcmd_retries")
    )
    account = generator.accountant
    completed = totals["completed"]
    return {
        "retries_per_req": totals["retries"] / totals["offered"],
        "dropped": totals["dropped"],
        "p999": account.cohort_percentile("default", 99.9) if completed else 0.0,
        "aggregate_retries": aggregate,
        "per_source_retries": per_source,
        "sources_seen": sum(
            1
            for name in snapshot
            if name.startswith("dsa0.wq0.source.") and name.endswith(".enqcmd_retries")
        ),
    }


def run(quick: bool = False) -> ExperimentResult:
    tier = active_tier()
    result = ExperimentResult(
        exp_id="traffic-retry",
        title="SWQ retry storms scale with tenant fan-in",
        description=(
            f"Bursty (cv2={CV2:.0f}) tenants share one {WQ_SIZE}-entry SWQ; "
            "per-tenant rate is fixed, so fan-in is also aggregate load "
            f"({tier.name} tier: {tier.requests} requests, up to "
            f"{tier.tenants} tenants)."
        ),
    )
    fleet = tier.tenants
    fan_ins = (
        [max(2, fleet // 16), fleet] if quick else [max(2, fleet // 16), max(4, fleet // 4), fleet]
    )
    per_tenant_rate = FULL_FLEET_RHO * dsa_capacity(SIZE, engines=ENGINES) / fleet
    requests = max(400, tier.requests // len(fan_ins))

    runs = {}
    retry_series = Series(label="retries-per-request")
    p999_series = Series(label="p999-ns")
    table = Table(
        "Fan-in sweep — retries, drops, tail",
        ["Tenants", "Retries/req", "Dropped", "p999 (ns)"],
    )
    for fan_in in fan_ins:
        runs[fan_in] = _drive(fan_in, per_tenant_rate, requests)
        retry_series.add(fan_in, runs[fan_in]["retries_per_req"])
        p999_series.add(fan_in, runs[fan_in]["p999"])
        table.add_row(
            str(fan_in),
            f"{runs[fan_in]['retries_per_req']:.3f}",
            str(runs[fan_in]["dropped"]),
            f"{runs[fan_in]['p999']:.0f}",
        )
    result.add_series(retry_series)
    result.add_series(p999_series)
    result.tables.append(table)

    low, full = fan_ins[0], fan_ins[-1]
    result.check(
        "retry rate explodes with fan-in",
        "shared-queue pressure grows with submitter count (G2)",
        f"{runs[low]['retries_per_req']:.3f} retries/req at {low} tenants vs "
        f"{runs[full]['retries_per_req']:.3f} at {full}",
        runs[full]["retries_per_req"] > 5.0 * max(runs[low]["retries_per_req"], 1e-6)
        and runs[full]["retries_per_req"] > 0.5,
    )
    result.check(
        "bounded retries shed load only under storm",
        "the retry budget never trips at low fan-in",
        f"dropped: {runs[low]['dropped']} at {low} tenants, "
        f"{runs[full]['dropped']} at {full}",
        runs[low]["dropped"] == 0 and runs[full]["dropped"] > 0,
    )
    result.check(
        "per-source retries sum to the WQ aggregate",
        "attribution is exact: every retry is booked to a tenant",
        f"{runs[full]['per_source_retries']:.0f} across "
        f"{runs[full]['sources_seen']} sources vs aggregate "
        f"{runs[full]['aggregate_retries']:.0f}",
        all(
            point["per_source_retries"] == point["aggregate_retries"]
            for point in runs.values()
        )
        and runs[full]["sources_seen"] > 1,
    )
    result.check(
        "the storm blows up the tail",
        "retry/backoff queueing multiplies p999",
        f"p999 {runs[low]['p999']:.0f} ns at {low} tenants vs "
        f"{runs[full]['p999']:.0f} ns at {full}",
        runs[full]["p999"] > 3.0 * runs[low]["p999"],
    )
    return result
