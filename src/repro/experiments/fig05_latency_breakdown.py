"""Fig 5 — offload latency breakdown (alloc / prepare / submit / wait).

Synchronous 4 KB Memory Copy offloads with the descriptor *allocated*
each time (the paper shows allocation dominating, then argues real
applications pre-allocate and it can be ignored).  The CPU bar is the
software memcpy of the equivalent payload.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.cpu.core import CycleCategory
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.experiments.base import ExperimentResult
from repro.mem.address import AddressSpace
from repro.platform import spr_platform
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for

KB = 1024


def _measure(batch_size: int, rounds: int):
    platform = spr_platform()
    env = platform.env
    space = AddressSpace()
    portal = platform.open_portal("dsa0", 0, space)
    core = platform.core(0)
    waits = []

    def driver(env):
        for round_index in range(rounds):
            members = []
            for _member in range(batch_size):
                src = space.allocate(4 * KB)
                dst = space.allocate(4 * KB)
                members.append(
                    WorkDescriptor(
                        opcode=Opcode.MEMMOVE,
                        pasid=space.pasid,
                        flags=DescriptorFlags.REQUEST_COMPLETION
                        | DescriptorFlags.BLOCK_ON_FAULT,
                        src=src.va,
                        dst=dst.va,
                        size=4 * KB,
                    )
                )
            unit = (
                members[0]
                if batch_size == 1
                else BatchDescriptor(descriptors=members, pasid=space.pasid)
            )
            yield from prepare_descriptor(env, core, unit, platform.costs, allocate=True)
            yield from submit(env, core, portal, unit, platform.costs)
            waited = yield from wait_for(env, core, unit, WaitMode.SPIN, platform.costs)
            waits.append(waited)

    env.process(driver(env))
    env.run()
    per_round = {
        "alloc": core.time_in(CycleCategory.ALLOC) / rounds,
        "prepare": core.time_in(CycleCategory.PREPARE) / rounds,
        "submit": core.time_in(CycleCategory.SUBMIT) / rounds,
        "wait": sum(waits) / len(waits),
    }
    return per_round


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig5",
        title="Latency breakdown of DSA offload vs batch size (4 KB)",
        description=(
            "Per-offload time in each lifecycle step; the CPU column is "
            "glibc memcpy of the same total payload."
        ),
    )
    rounds = 20 if quick else 60
    batches = [1, 4, 16] if quick else [1, 4, 16, 64]
    platform = spr_platform(n_devices=0)
    table = Table(
        "Fig 5 — per-offload latency (ns)",
        ["Batch size", "CPU memcpy", "alloc", "prepare", "submit", "wait", "DSA total"],
    )
    breakdowns = {}
    for batch in batches:
        breakdown = _measure(batch, rounds)
        breakdowns[batch] = breakdown
        cpu = batch * platform.kernels.memcpy_ns(4 * KB)
        total = sum(breakdown.values())
        table.add_row(
            batch,
            f"{cpu:.0f}",
            f"{breakdown['alloc']:.0f}",
            f"{breakdown['prepare']:.0f}",
            f"{breakdown['submit']:.0f}",
            f"{breakdown['wait']:.0f}",
            f"{total:.0f}",
        )
    result.tables.append(table)

    bs1 = breakdowns[1]
    result.check(
        "allocation dominates the host-side steps",
        "descriptor allocation is where most host time goes",
        f"alloc {bs1['alloc']:.0f}ns vs prepare {bs1['prepare']:.0f}ns "
        f"+ submit {bs1['submit']:.0f}ns",
        bs1["alloc"] > bs1["prepare"] + bs1["submit"],
    )
    result.check(
        "prepare is the cheapest step",
        "descriptor preparation takes the least time",
        f"prepare {bs1['prepare']:.0f}ns",
        bs1["prepare"] < min(bs1["alloc"], bs1["submit"], bs1["wait"]),
    )
    result.check(
        "queueing/processing (wait) is the device-side majority",
        "waiting dominates once allocation is amortized",
        f"wait {bs1['wait']:.0f}ns vs prepare+submit "
        f"{bs1['prepare'] + bs1['submit']:.0f}ns",
        bs1["wait"] > bs1["prepare"] + bs1["submit"],
    )
    last = batches[-1]
    per_desc_submit = breakdowns[last]["submit"] / last
    result.check(
        "batching amortizes submission",
        "per-descriptor submit cost shrinks with batch size",
        f"{bs1['submit']:.0f}ns at BS1 vs {per_desc_submit:.0f}ns/desc at BS{last}",
        per_desc_submit < bs1["submit"] / 4,
    )
    return result
