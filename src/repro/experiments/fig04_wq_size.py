"""Fig 4 — async Memory Copy throughput vs work-queue size.

Deeper WQs admit more in-flight descriptors, hiding translation and
memory latency (G6: 32 entries ≈ maximum throughput).
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig4",
        title="Async Memory Copy throughput vs WQ size",
        description=(
            "Throughput with queue depth capped by the WQ size; deeper "
            "queues pipeline more descriptors (saturating around 32)."
        ),
    )
    sizes = [4 * KB, 64 * KB] if quick else [1 * KB, 4 * KB, 16 * KB, 64 * KB]
    wq_sizes = [1, 8, 32] if quick else [1, 2, 4, 8, 16, 32, 64]
    iterations = 30 if quick else 80
    table = Table(
        "Fig 4 — throughput (GB/s) by WQ size (WQS)",
        ["WQS"] + [human_size(s) for s in sizes],
    )
    for wq_size in wq_sizes:
        series = Series(label=f"WQS{wq_size}")
        cells = [str(wq_size)]
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                queue_depth=wq_size,
                wq_size=wq_size,
                iterations=iterations,
            )
            throughput = run_dsa_microbench(cfg).throughput
            series.add(size, throughput)
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    probe = 4 * KB
    shallow = result.series[f"WQS{wq_sizes[0]}"].y_at(probe)
    deep = result.series["WQS32"].y_at(probe)
    result.check(
        "deeper WQs raise throughput",
        "throughput rises with WQ size up to saturation",
        f"{shallow:.1f} GB/s (WQS {wq_sizes[0]}) -> {deep:.1f} GB/s (WQS 32) at 4KB",
        deep > 2 * shallow,
    )
    if 64 in wq_sizes:
        deeper = result.series["WQS64"].y_at(probe)
        result.check(
            "32 entries ~ maximum (G6)",
            "little gain beyond 32 entries",
            f"WQS32 {deep:.1f} vs WQS64 {deeper:.1f} GB/s",
            deeper <= 1.1 * deep,
        )
    return result
