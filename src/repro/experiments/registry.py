"""Experiment registry: id → module, plus run helpers."""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.experiments.base import ExperimentResult

#: experiment id -> module path (each exposes ``run(quick=False)``).
_EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.experiments.table1_operations",
    "table2": "repro.experiments.table2_configs",
    "fig2": "repro.experiments.fig02_transfer_size",
    "fig3": "repro.experiments.fig03_batch",
    "fig4": "repro.experiments.fig04_wq_size",
    "fig5": "repro.experiments.fig05_latency_breakdown",
    "fig6": "repro.experiments.fig06_memory_configs",
    "fig7": "repro.experiments.fig07_engines",
    "fig8": "repro.experiments.fig08_huge_pages",
    "fig9": "repro.experiments.fig09_wq_configs",
    "fig10": "repro.experiments.fig10_multi_device",
    "fig11": "repro.experiments.fig11_umwait",
    "fig12": "repro.experiments.fig12_llc_occupancy",
    "fig13": "repro.experiments.fig13_xmem_latency",
    "fig14": "repro.experiments.fig14_equal_work",
    "fig15": "repro.experiments.fig15_llc_placement",
    "fig16": "repro.experiments.fig16_vhost",
    "fig17": "repro.experiments.fig17_libfabric",
    "fig19": "repro.experiments.fig19_cachelib",
    "fig21": "repro.experiments.fig21_spdk",
    "faults": "repro.experiments.fault_sweep",
    "cbdma": "repro.experiments.cbdma_comparison",
    "ablations": "repro.experiments.ablations",
    "guidelines": "repro.experiments.guidelines_validation",
    "traffic-crossover": "repro.experiments.traffic_crossover",
    "traffic-qos": "repro.experiments.traffic_qos",
    "traffic-retry": "repro.experiments.traffic_retry",
    "fleet-scaling": "repro.experiments.fleet_scaling",
}


def all_experiments() -> List[str]:
    """Every registered experiment id, in paper order."""
    return list(_EXPERIMENTS)


def get_experiment(exp_id: str):
    """Import and return the experiment module for ``exp_id``."""
    if exp_id not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return importlib.import_module(_EXPERIMENTS[exp_id])


def module_path(exp_id: str) -> str:
    """Dotted module path for ``exp_id`` (without importing it)."""
    if exp_id not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return _EXPERIMENTS[exp_id]


def resolve_ids(spec: str) -> List[str]:
    """Expand a CLI experiment spec into a validated id list.

    ``spec`` is ``"all"``, one id, or a comma-separated list
    (``"fig2,fig5,table1"``).  Every id is validated upfront so a typo
    fails before any experiment runs; unknown ids raise the same
    ``KeyError`` as :func:`get_experiment`.  Duplicates are kept in
    order of first appearance.
    """
    if spec == "all":
        return all_experiments()
    ids = [part.strip() for part in spec.split(",") if part.strip()]
    if not ids:
        raise KeyError(
            f"unknown experiment {spec!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    seen = []
    for exp_id in ids:
        if exp_id not in _EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {exp_id!r}; choose from {sorted(_EXPERIMENTS)}"
            )
        if exp_id not in seen:
            seen.append(exp_id)
    return seen


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment and return its result.

    When a shared metrics registry is installed (the CLI's
    ``--metrics`` path), the registry is cleared before the run and its
    state afterwards is attached to the result as a flat snapshot.  If
    the experiment raises mid-run, the registry is cleared on the way
    out too — a later ``run_experiment`` call must never attach a
    snapshot polluted by a failed run's partial metrics.
    """
    from repro.obs import installed_metrics

    module = get_experiment(exp_id)
    registry = installed_metrics()
    if registry is None:
        return module.run(quick=quick)
    registry.clear()
    completed = False
    try:
        result = module.run(quick=quick)
        result.metrics = registry.snapshot()
        # The invertible state rides along so worker histograms can be
        # merged exactly into a parent registry (absorb_state), not
        # flattened to their final leaf values.
        result.metrics_state = registry.export_state()
        completed = True
        return result
    finally:
        if not completed:
            registry.clear()
