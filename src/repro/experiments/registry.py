"""Experiment registry: id → module, plus run helpers."""

from __future__ import annotations

import importlib
from typing import Dict, List

from repro.experiments.base import ExperimentResult

#: experiment id -> module path (each exposes ``run(quick=False)``).
_EXPERIMENTS: Dict[str, str] = {
    "table1": "repro.experiments.table1_operations",
    "table2": "repro.experiments.table2_configs",
    "fig2": "repro.experiments.fig02_transfer_size",
    "fig3": "repro.experiments.fig03_batch",
    "fig4": "repro.experiments.fig04_wq_size",
    "fig5": "repro.experiments.fig05_latency_breakdown",
    "fig6": "repro.experiments.fig06_memory_configs",
    "fig7": "repro.experiments.fig07_engines",
    "fig8": "repro.experiments.fig08_huge_pages",
    "fig9": "repro.experiments.fig09_wq_configs",
    "fig10": "repro.experiments.fig10_multi_device",
    "fig11": "repro.experiments.fig11_umwait",
    "fig12": "repro.experiments.fig12_llc_occupancy",
    "fig13": "repro.experiments.fig13_xmem_latency",
    "fig14": "repro.experiments.fig14_equal_work",
    "fig15": "repro.experiments.fig15_llc_placement",
    "fig16": "repro.experiments.fig16_vhost",
    "fig17": "repro.experiments.fig17_libfabric",
    "fig19": "repro.experiments.fig19_cachelib",
    "fig21": "repro.experiments.fig21_spdk",
    "cbdma": "repro.experiments.cbdma_comparison",
    "ablations": "repro.experiments.ablations",
    "guidelines": "repro.experiments.guidelines_validation",
}


def all_experiments() -> List[str]:
    """Every registered experiment id, in paper order."""
    return list(_EXPERIMENTS)


def get_experiment(exp_id: str):
    """Import and return the experiment module for ``exp_id``."""
    if exp_id not in _EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; choose from {sorted(_EXPERIMENTS)}"
        )
    return importlib.import_module(_EXPERIMENTS[exp_id])


def run_experiment(exp_id: str, quick: bool = False) -> ExperimentResult:
    """Run one experiment and return its result.

    When a shared metrics registry is installed (the CLI's
    ``--metrics`` path), the registry's state after the run is attached
    to the result as a flat snapshot.
    """
    from repro.obs import installed_metrics

    result = get_experiment(exp_id).run(quick=quick)
    registry = installed_metrics()
    if registry is not None:
        result.metrics = registry.snapshot()
    return result
