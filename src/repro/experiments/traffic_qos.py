"""traffic-qos — WQ priorities isolate tenant cohorts under overload.

Two tenant cohorts share one DSA: a latency-sensitive **hi** cohort on
SWQ 0 (priority 15) and a best-effort **lo** cohort on SWQ 1 (priority
1), both queues in *one group* feeding the same four engines — the §3.4
QoS configuration, where the group arbiter's weighted round-robin is
what separates the classes (put each WQ in its own group and they
simply partition the engines instead).

The sweep raises aggregate offered load through the device's planning
capacity.  Below saturation both cohorts meet their SLOs; past it the
arbiter gives the hi cohort its 15/16 weight share, so hi tails stay
flat while the lo cohort eats the queueing, retries, and drops — but
smooth WRR still guarantees lo a 1/16 floor, so it degrades rather
than starves.

Tier scaling (``--tier``): the tenant fleet is the tier's tenant count
split evenly across cohorts; the request budget is split over sweep
points.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.config import DeviceConfig, EngineConfig, GroupConfig, WqConfig, WqMode
from repro.experiments.base import ExperimentResult
from repro.traffic.loadgen import drive_profile
from repro.traffic.profile import (
    SizeDist,
    Slo,
    TrafficProfile,
    dsa_capacity,
    make_tenants,
)
from repro.traffic.tiers import active_tier, default_traffic

KB = 1024
SIZE = 16 * KB
ENGINES = 4
HI_PRIORITY, LO_PRIORITY = 15, 1
#: Both cohorts declare the *same* contract — priority alone decides
#: who keeps it.  250 us clears the hi cohort's structural worst case
#: (full 64-entry WQ drain at 15/16 weight plus a capped backoff run,
#: ~120 us) while a squeezed lo queue at 1/16 weight sails past it.
HI_SLO = Slo(p99_ns=250_000.0)
LO_SLO = Slo(p99_ns=250_000.0)


def qos_device_config() -> DeviceConfig:
    """Two SWQs (priority 15 vs 1) sharing one group of 4 engines."""
    return DeviceConfig(
        wqs=(
            WqConfig(wq_id=0, size=64, mode=WqMode.SHARED, priority=HI_PRIORITY),
            WqConfig(wq_id=1, size=64, mode=WqMode.SHARED, priority=LO_PRIORITY),
        ),
        engines=tuple(EngineConfig(i) for i in range(ENGINES)),
        groups=(GroupConfig(0, wq_ids=(0, 1), engine_ids=tuple(range(ENGINES))),),
    )


def _drive(load: float, tenants_per_cohort: int, requests: int) -> dict:
    capacity = dsa_capacity(SIZE, engines=ENGINES)
    cohort_rate = 0.5 * load * capacity
    sizes = SizeDist(kind="fixed", size=SIZE)
    profile = TrafficProfile(
        name=f"qos-{load:.2f}",
        tenants=make_tenants(
            "hi",
            tenants_per_cohort,
            cohort_rate,
            cohort="hi",
            sizes=sizes,
            wq_id=0,
            qos_priority=HI_PRIORITY,
            slo=HI_SLO,
        )
        + make_tenants(
            "lo",
            tenants_per_cohort,
            cohort_rate,
            cohort="lo",
            sizes=sizes,
            wq_id=1,
            qos_priority=LO_PRIORITY,
            slo=LO_SLO,
        ),
    )
    generator, _ = drive_profile(
        profile,
        requests,
        device_config=qos_device_config(),
        arrival_override=default_traffic(),
    )
    account = generator.accountant
    point = {}
    for cohort in ("hi", "lo"):
        stats = account.cohort_stats(cohort)
        completed = stats["completed"]
        windows = stats["windows"]
        point[cohort] = {
            "p99": account.cohort_percentile(cohort, 99.0) if completed else 0.0,
            "p999": account.cohort_percentile(cohort, 99.9) if completed else 0.0,
            "offered": stats["offered"],
            "completed": completed,
            "dropped": stats["dropped"],
            "violation_windows": stats["violation_windows"],
            "violation_frac": stats["violation_windows"] / windows if windows else 0.0,
        }
    return point


def run(quick: bool = False) -> ExperimentResult:
    tier = active_tier()
    result = ExperimentResult(
        exp_id="traffic-qos",
        title="QoS under overload: WQ priorities isolate tenant cohorts",
        description=(
            "hi (priority 15) and lo (priority 1) SWQs share one group of "
            f"{ENGINES} engines; aggregate load sweeps through capacity "
            f"({tier.name} tier: {tier.requests} requests, {tier.tenants} tenants)."
        ),
    )
    loads = [0.5, 1.3] if quick else [0.5, 0.9, 1.3]
    requests = max(400, tier.requests // len(loads))
    tenants_per_cohort = max(4, tier.tenants // 2)

    runs = {}
    table = Table(
        "QoS sweep — per-cohort p999 (ns) and drops",
        ["Load", "hi p999", "lo p999", "hi drops", "lo drops", "hi viol.", "lo viol."],
    )
    hi_series, lo_series = Series(label="hi-p999"), Series(label="lo-p999")
    for load in loads:
        runs[load] = _drive(load, tenants_per_cohort, requests)
        hi_series.add(load, runs[load]["hi"]["p999"])
        lo_series.add(load, runs[load]["lo"]["p999"])
        table.add_row(
            f"{load:.1f}x",
            f"{runs[load]['hi']['p999']:.0f}",
            f"{runs[load]['lo']['p999']:.0f}",
            str(runs[load]["hi"]["dropped"]),
            str(runs[load]["lo"]["dropped"]),
            str(runs[load]["hi"]["violation_windows"]),
            str(runs[load]["lo"]["violation_windows"]),
        )
    result.add_series(hi_series)
    result.add_series(lo_series)
    result.tables.append(table)

    low, top = loads[0], loads[-1]
    result.check(
        "both cohorts meet their SLOs below saturation",
        "an unsaturated device needs no prioritization",
        f"at {low:.1f}x: hi {runs[low]['hi']['violation_windows']} / "
        f"lo {runs[low]['lo']['violation_windows']} violation windows",
        runs[low]["hi"]["violation_windows"] == 0
        and runs[low]["lo"]["violation_windows"] == 0,
    )
    result.check(
        "overload lands on the lo cohort's tail",
        "WRR gives hi its 15/16 share; lo eats the queueing (§3.4)",
        f"at {top:.1f}x: lo p999 {runs[top]['lo']['p999']:.0f} vs "
        f"hi p999 {runs[top]['hi']['p999']:.0f} ns",
        runs[top]["lo"]["p999"] > 3.0 * runs[top]["hi"]["p999"],
    )
    result.check(
        "hi cohort keeps its SLO through overload",
        "hi attainment stays >= 99% of windows while lo breaks materially",
        f"violation fraction at {top:.1f}x: hi "
        f"{100 * runs[top]['hi']['violation_frac']:.2f}% vs lo "
        f"{100 * runs[top]['lo']['violation_frac']:.2f}%",
        runs[top]["hi"]["violation_frac"] < 0.01
        and runs[top]["lo"]["violation_frac"] > 0.05,
    )
    lo_top = runs[top]["lo"]
    result.check(
        "smooth WRR degrades lo without starving it",
        "priority 1 still earns a 1/16 dispatch floor",
        f"lo completed {lo_top['completed']} of {lo_top['offered']} offered",
        lo_top["completed"] > 0.2 * lo_top["offered"],
    )
    return result
