"""Fig 11 — share of CPU cycles spent inside UMWAIT while offloading.

With 4 KB+ transfers most cycles sit in the optimized wait state; with
batching, UMWAIT dominates at every size (§4.4) — cycles the host can
spend elsewhere.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size, percent
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.runtime.wait import WaitMode
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig11",
        title="CPU cycles in UMWAIT vs transfer and batch size",
        description=(
            "Fraction of the offloading core's time inside the UMWAIT "
            "optimized wait state (sync offload, completion by UMWAIT)."
        ),
    )
    sizes = [512, 4 * KB, 64 * KB] if quick else [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]
    batches = [1, 16] if quick else [1, 4, 16, 64]
    iterations = 20 if quick else 50
    table = Table(
        "Fig 11 — % of cycles in UMWAIT",
        ["Batch size"] + [human_size(s) for s in sizes],
    )
    for batch in batches:
        series = Series(label=f"BS{batch}")
        cells = [str(batch)]
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                batch_size=batch,
                queue_depth=1,
                iterations=max(10, iterations // batch),
                wait_mode=WaitMode.UMWAIT,
            )
            fraction = run_dsa_microbench(cfg).umwait_fraction()
            series.add(size, fraction)
            cells.append(percent(fraction))
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    # §4.4 extension: translate the UMWAIT share into core energy by
    # comparing against the same offload pattern with spin-polling.
    from repro.cpu.power import CoreEnergyMeter
    from repro.runtime.wait import WaitMode as _WaitMode

    meter = CoreEnergyMeter()
    energy_table = Table(
        "Energy view (4 KB sync offloads): waiting strategy vs core power",
        ["Wait strategy", "Mean core power (W)"],
    )
    powers = {}
    for wait_mode in (_WaitMode.SPIN, _WaitMode.UMWAIT):
        cfg = MicrobenchConfig(
            transfer_size=4 * KB, queue_depth=1, iterations=30, wait_mode=wait_mode
        )
        bench = run_dsa_microbench(cfg)
        powers[wait_mode] = meter.average_power(bench.cores[0])
        energy_table.add_row(wait_mode.value, f"{powers[wait_mode]:.2f}")
    result.tables.append(energy_table)
    result.check(
        "UMWAIT cuts waiting power vs spin-polling",
        "the core saves dynamic energy in the optimized wait state (§4.4)",
        f"{powers[_WaitMode.UMWAIT]:.2f}W vs {powers[_WaitMode.SPIN]:.2f}W",
        powers[_WaitMode.UMWAIT] < 0.6 * powers[_WaitMode.SPIN],
    )

    at4k = result.series["BS1"].y_at(4 * KB)
    result.check(
        "UMWAIT majority at 4KB+ (BS 1)",
        "majority of cycles in UMWAIT at >=4KB",
        percent(at4k),
        at4k > 0.5,
    )
    batched = result.series[f"BS{batches[-1]}"]
    smallest = batched.y_at(sizes[0])
    result.check(
        "batched offloads UMWAIT-dominated at all sizes",
        "most cycles in UMWAIT across all transfer sizes when batched",
        f"{percent(smallest)} at {human_size(sizes[0])} (BS {batches[-1]})",
        smallest > 0.5,
    )
    result.check(
        "UMWAIT share grows with transfer size",
        "larger transfers leave the core waiting longer",
        " -> ".join(percent(v) for v in result.series["BS1"].ys),
        result.series["BS1"].is_monotonic_increasing(tolerance=0.02),
    )
    return result
