"""Common result container for all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.series import Series
from repro.analysis.tables import Table


@dataclass
class AnchorCheck:
    """One paper claim compared against this run's measurement."""

    name: str
    expected: str  # what the paper reports
    measured: str  # what this run produced
    holds: bool

    def render(self) -> str:
        verdict = "OK " if self.holds else "MISS"
        return f"[{verdict}] {self.name}: paper={self.expected} measured={self.measured}"


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    exp_id: str
    title: str
    description: str
    tables: List[Table] = field(default_factory=list)
    series: Dict[str, Series] = field(default_factory=dict)
    anchors: List[AnchorCheck] = field(default_factory=list)
    #: Flat metrics snapshot captured after the run when a shared
    #: registry is installed (``python -m repro run --metrics``).
    metrics: Dict[str, float] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        self.series[series.label] = series

    def check(self, name: str, expected: str, measured: str, holds: bool) -> None:
        self.anchors.append(
            AnchorCheck(name=name, expected=expected, measured=measured, holds=bool(holds))
        )

    @property
    def anchors_hold(self) -> bool:
        return all(anchor.holds for anchor in self.anchors)

    def render(self) -> str:
        lines = [f"=== {self.exp_id}: {self.title} ===", self.description, ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.anchors:
            lines.append("Anchors (paper vs this run):")
            for anchor in self.anchors:
                lines.append("  " + anchor.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
