"""Common result container for all experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.obs.sink import installed_sink


@dataclass
class AnchorCheck:
    """One paper claim compared against this run's measurement."""

    name: str
    expected: str  # what the paper reports
    measured: str  # what this run produced
    holds: bool

    def render(self) -> str:
        verdict = "OK " if self.holds else "MISS"
        return f"[{verdict}] {self.name}: paper={self.expected} measured={self.measured}"


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    exp_id: str
    title: str
    description: str
    tables: List[Table] = field(default_factory=list)
    series: Dict[str, Series] = field(default_factory=dict)
    anchors: List[AnchorCheck] = field(default_factory=list)
    #: Flat metrics snapshot captured after the run when a shared
    #: registry is installed (``python -m repro run --metrics``).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Invertible registry state (``MetricsRegistry.export_state``) for
    #: exact histogram/gauge merges across worker processes; the flat
    #: ``metrics`` dict above stays the rendering-friendly view.
    metrics_state: Dict[str, Any] = field(default_factory=dict)

    def add_series(self, series: Series) -> None:
        """Record a completed sweep series; streams it to any active sink.

        ``add_series`` is the sweep-point choke point every experiment
        already goes through, so installing a
        :class:`~repro.obs.sink.ResultSink` makes each finished figure
        line durable on disk the moment it exists — a crashed sweep
        keeps everything completed so far.
        """
        self.series[series.label] = series
        sink = installed_sink()
        if sink is not None:
            sink.series(self.exp_id, series.label, series.points)

    def check(self, name: str, expected: str, measured: str, holds: bool) -> None:
        self.anchors.append(
            AnchorCheck(name=name, expected=expected, measured=measured, holds=bool(holds))
        )
        sink = installed_sink()
        if sink is not None:
            sink.anchor(self.exp_id, name, expected, measured, holds)

    @property
    def anchors_hold(self) -> bool:
        return all(anchor.holds for anchor in self.anchors)

    def render(self) -> str:
        lines = [f"=== {self.exp_id}: {self.title} ===", self.description, ""]
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        if self.anchors:
            lines.append("Anchors (paper vs this run):")
            for anchor in self.anchors:
                lines.append("  " + anchor.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
