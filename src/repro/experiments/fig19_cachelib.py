"""Fig 19 — CacheBench operation rates and tail latency through DTO.

Anchors: throughput improves when >= 8 KB copies offload through four
shared WQs, gains flatten beyond eight cores, and high-percentile
latency drops substantially.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.cachelib import CacheBenchConfig, run_cachebench


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig19",
        title="CacheBench with transparent DSA offload (DTO)",
        description=(
            "get/set operation rate and tail latency for #h cores x #s "
            "threads, baseline vs DTO offloading copies >= 8 KB."
        ),
    )
    configs = [(4, 8), (8, 16)] if quick else [(2, 4), (4, 8), (8, 16), (12, 24)]
    ops = 150 if quick else 400
    tail_pct = 99.9 if quick else 99.9
    improvement = Series(label="throughput_improvement")
    tail_ratio = Series(label="tail_improvement")
    table = Table(
        "Fig 19 — relative improvements with DTO offload",
        ["#h cores", "#s threads", "base Mops", "DSA Mops", "Gain", "tail base us", "tail DSA us"],
    )
    for cores, threads in configs:
        base = run_cachebench(
            CacheBenchConfig(
                n_cores=cores, n_threads=threads, use_dsa=False, ops_per_thread=ops
            )
        )
        dsa = run_cachebench(
            CacheBenchConfig(
                n_cores=cores, n_threads=threads, use_dsa=True, ops_per_thread=ops
            )
        )
        gain = dsa.ops_per_second / base.ops_per_second
        improvement.add(cores, gain)
        base_tail = base.tail_latency(tail_pct)
        dsa_tail = dsa.tail_latency(tail_pct)
        tail_ratio.add(cores, base_tail / dsa_tail if dsa_tail else 0.0)
        table.add_row(
            cores,
            threads,
            f"{base.ops_per_second / 1e6:.2f}",
            f"{dsa.ops_per_second / 1e6:.2f}",
            f"{gain:.2f}x",
            f"{base_tail / 1e3:.1f}",
            f"{dsa_tail / 1e3:.1f}",
        )
    result.add_series(improvement)
    result.add_series(tail_ratio)
    result.tables.append(table)

    low_cores = configs[0][0]
    result.check(
        "offload improves operation rate",
        "greatly improved get/set rate",
        f"{improvement.y_at(low_cores):.2f}x at {low_cores} cores",
        improvement.y_at(low_cores) > 1.2,
    )
    if len(configs) > 2:
        result.check(
            "gains flatten beyond 8 cores (4 WQs)",
            "decreased rate improvement when using more than eight cores",
            f"{improvement.y_at(4):.2f}x at 4 cores vs "
            f"{improvement.y_at(12):.2f}x at 12 cores",
            improvement.y_at(12) < improvement.y_at(4),
        )
    result.check(
        "tail latency improves",
        "significant p99.999 improvements",
        f"{tail_ratio.y_at(low_cores):.2f}x lower tail at {low_cores} cores",
        tail_ratio.y_at(low_cores) > 1.3,
    )
    return result
