"""Fig 16 — DPDK Vhost packet forwarding with and without DSA.

Anchors: packet copying costs ~30% of cycles at 512 B and 50+% above
1 KB on the CPU path; the DSA-accelerated forwarding rate stays flat
with packet size and wins 1.14-2.29x above 256 B.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.vhost import VhostConfig, run_vhost


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig16",
        title="Vhost/TestPMD forwarding rate vs packet size",
        description=(
            "macfwd forwarding rate (Mpps) for the CPU copy path and "
            "the batched, pipelined DSA path (§6.4 optimizations)."
        ),
    )
    sizes = [256, 1024, 1518] if quick else [64, 128, 256, 512, 1024, 1518]
    bursts = 40 if quick else 120
    cpu = Series(label="CPU")
    dsa = Series(label="DSA")
    ratio_series = Series(label="speedup")
    copy_share = Series(label="copy_share")
    table = Table(
        "Fig 16b — forwarding rate (Mpps)",
        ["Packet size", "CPU", "DSA", "Speedup", "CPU copy cycles"],
    )
    for size in sizes:
        cpu_run = run_vhost(VhostConfig(packet_size=size, bursts=bursts, use_dsa=False))
        dsa_run = run_vhost(VhostConfig(packet_size=size, bursts=bursts, use_dsa=True))
        cpu.add(size, cpu_run.forwarding_rate_mpps)
        dsa.add(size, dsa_run.forwarding_rate_mpps)
        ratio = dsa_run.forwarding_rate_mpps / cpu_run.forwarding_rate_mpps
        ratio_series.add(size, ratio)
        copy_share.add(size, cpu_run.copy_cycle_fraction)
        table.add_row(
            size,
            f"{cpu_run.forwarding_rate_mpps:.2f}",
            f"{dsa_run.forwarding_rate_mpps:.2f}",
            f"{ratio:.2f}x",
            f"{cpu_run.copy_cycle_fraction * 100:.0f}%",
        )
    for series in (cpu, dsa, ratio_series, copy_share):
        result.add_series(series)
    result.tables.append(table)

    result.check(
        "DSA forwarding rate flat with packet size",
        "rate remains constant with increasing packet sizes",
        f"{min(dsa.ys):.2f}-{max(dsa.ys):.2f} Mpps",
        max(dsa.ys) <= 1.05 * min(dsa.ys),
    )
    above = [r for s, r in ratio_series.points if s > 256]
    result.check(
        "1.14-2.29x speedup above 256B",
        "1.14~2.29x improvement over CPU forwarding",
        f"{min(above):.2f}-{max(above):.2f}x",
        min(above) >= 1.05 and max(above) <= 2.6,
    )
    at1k = copy_share.y_at(1024)
    result.check(
        "copying dominates CPU cycles at 1KB+",
        "nearly 50+% of cycles for packets above 1024B",
        f"{at1k * 100:.0f}% at 1KB",
        at1k >= 0.45,
    )
    drop = 1 - cpu.y_at(1024) / cpu.y_at(256)
    result.check(
        "CPU rate drops ~38% from 256B to 1KB",
        "forwarding rate drops as high as 38%",
        f"{drop * 100:.0f}%",
        0.2 <= drop <= 0.45,
    )
    return result
