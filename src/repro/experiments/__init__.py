"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(quick: bool = False) -> ExperimentResult``
that regenerates the corresponding rows/series of the paper's
evaluation.  ``quick`` trades sweep resolution and iteration counts for
speed (used by CI-style runs); the benchmark suite under
``benchmarks/`` executes these and prints the output.

Use :func:`repro.experiments.registry.all_experiments` to enumerate.
"""

from repro.experiments.base import AnchorCheck, ExperimentResult
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    module_path,
    resolve_ids,
    run_experiment,
)

__all__ = [
    "AnchorCheck",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "module_path",
    "resolve_ids",
    "run_experiment",
]
