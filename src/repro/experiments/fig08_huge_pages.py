"""Fig 8 — throughput impact of huge pages.

Translations beyond a transfer's first page overlap with data movement
(the ATC pipelines them), so 2 MiB pages barely move throughput — the
paper's observation that page size has little effect.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.mem.pagetable import PAGE_2M, PAGE_4K
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig8",
        title="Throughput with 4 KiB vs 2 MiB pages",
        description="Async Memory Copy over transfer sizes for both page sizes.",
    )
    sizes = [4 * KB, 256 * KB] if quick else [4 * KB, 64 * KB, 256 * KB, 1024 * KB]
    iterations = 30 if quick else 60
    table = Table(
        "Fig 8 — throughput (GB/s)",
        ["Page size"] + [human_size(s) for s in sizes],
    )
    for label, page_size in (("4K", PAGE_4K), ("2M", PAGE_2M)):
        series = Series(label=label)
        cells = [label]
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                queue_depth=16,
                iterations=iterations,
                page_size=page_size,
            )
            throughput = run_dsa_microbench(cfg).throughput
            series.add(size, throughput)
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    worst_delta = max(
        abs(result.series["2M"].y_at(size) - result.series["4K"].y_at(size))
        / result.series["4K"].y_at(size)
        for size in sizes
    )
    result.check(
        "page size barely affects throughput",
        "nearly unaffected by the size of pages used",
        f"max deviation {worst_delta * 100:.1f}%",
        worst_delta < 0.05,
    )
    return result
