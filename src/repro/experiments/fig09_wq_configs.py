"""Fig 9 — throughput of different WQ configurations.

1) one DWQ with batching (BS:N), 2) N DWQs with one thread and PE per
queue (DWQ:N), 3) one SWQ with one PE and N submitting threads (SWQ:N).
Anchors: batching to one DWQ ≈ multiple DWQs; an SWQ with few threads
trails but matches once enough threads submit (G6).
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.config import WqMode
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig9",
        title="Throughput of WQ configurations (batching / DWQs / SWQ threads)",
        description=(
            "The same offered parallelism N expressed three ways: one "
            "batched DWQ, N dedicated WQs, or N threads on one SWQ."
        ),
    )
    n = 4
    sizes = [1 * KB, 4 * KB, 64 * KB] if quick else [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]
    iterations = 30 if quick else 60
    configs = {
        f"DWQ BS:{n}": MicrobenchConfig(
            batch_size=n, queue_depth=8, iterations=iterations // 2
        ),
        f"DWQ:{n}": MicrobenchConfig(
            n_workers=n,
            queue_depth=8,
            iterations=iterations // 2,
        ),
        "SWQ:1": MicrobenchConfig(
            wq_mode=WqMode.SHARED, queue_depth=8, iterations=iterations
        ),
        f"SWQ:{n}": MicrobenchConfig(
            wq_mode=WqMode.SHARED,
            n_workers=n,
            queue_depth=8,
            iterations=iterations // 2,
        ),
    }
    table = Table(
        "Fig 9 — throughput (GB/s)",
        ["Config"] + [human_size(s) for s in sizes],
    )
    from dataclasses import replace

    from repro.dsa.config import DeviceConfig
    from repro.platform import spr_platform

    for label, base in configs.items():
        series = Series(label=label)
        cells = [label]
        for size in sizes:
            cfg = replace(base, transfer_size=size)
            if label == f"DWQ:{n}":
                platform = spr_platform(
                    device_config=DeviceConfig.multi_wq(n, wq_size=16)
                )
            elif label.startswith("SWQ"):
                platform = spr_platform(
                    device_config=DeviceConfig.single(wq_size=32, mode=WqMode.SHARED)
                )
            else:
                platform = None
            throughput = run_dsa_microbench(cfg, platform=platform).throughput
            series.add(size, throughput)
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    probe = 4 * KB
    batched = result.series[f"DWQ BS:{n}"].y_at(probe)
    multi = result.series[f"DWQ:{n}"].y_at(probe)
    result.check(
        "batching one DWQ ~ multiple DWQs",
        "nearly identical throughput",
        f"BS:{n} {batched:.1f} vs DWQ:{n} {multi:.1f} GB/s at 4KB",
        0.6 <= batched / multi <= 1.5,
    )
    swq1 = result.series["SWQ:1"].y_at(probe)
    result.check(
        "single-thread SWQ trails between 1-8KB",
        "SWQ observes lower throughput between 1-8KB",
        f"SWQ:1 {swq1:.1f} vs DWQ:{n} {multi:.1f} GB/s at 4KB",
        swq1 < 0.7 * multi,
    )
    swqn = result.series[f"SWQ:{n}"].y_at(probe)
    result.check(
        "many-thread SWQ matches the other configs",
        "with enough threads the SWQ catches up",
        f"SWQ:{n} {swqn:.1f} vs DWQ:{n} {multi:.1f} GB/s at 4KB",
        swqn > 0.8 * multi,
    )
    return result
