"""Fig 12 — LLC occupancy timelines per core under co-running copies.

X-Mem instances run from 5s to 45s while the background copy traffic
runs 0-60s.  Software copies dominate the LLC; DSA offload leaves it
to the probes (writes confined to the DDIO ways).
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.platform import spr_platform
from repro.workloads.xmem import CoRunKind, run_xmem_scenario

MB = 1024 * 1024


def _max_occupancy(scenario, agent_prefix, count, window):
    total = 0.0
    for index in range(count):
        samples = scenario.occupancy_series[f"{agent_prefix}{index}"]
        in_window = [v for t, v in samples if window[0] <= t <= window[1]]
        total = max(total, max(in_window) if in_window else 0.0)
    return total


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig12",
        title="LLC occupancy of probes vs background copies",
        description=(
            "Peak per-core LLC occupancy during the X-Mem window (5-45s "
            "scaled) for each co-running scenario, 4 MB working sets."
        ),
    )
    duration = 2.0 if quick else 6.0
    window = (duration * 0.1, duration * 0.75)
    scenarios = {}
    occupancy = {}
    for kind in CoRunKind:
        platform = spr_platform(n_devices=0)
        scenario = run_xmem_scenario(
            kind,
            working_set=4 * MB,
            duration_s=duration,
            platform=platform,
            xmem_window=window,
        )
        scenarios[kind] = scenario
        probe_peak = _max_occupancy(scenario, "xmem", 8, window)
        copy_peak = (
            _max_occupancy(scenario, "copy", 4, window)
            if kind is not CoRunKind.NONE
            else 0.0
        )
        occupancy[kind] = (probe_peak, copy_peak)

    table = Table(
        "Fig 12 — peak LLC occupancy during the probe window",
        ["Scenario", "X-Mem core (max)", "copy core (max)"],
    )
    for kind, (probe_peak, copy_peak) in occupancy.items():
        table.add_row(kind.value, human_size(probe_peak), human_size(copy_peak))
    result.tables.append(table)

    # Timeline view (the figure's x-axis): occupancy at sampled times.
    sample_times = [duration * f for f in (0.05, 0.25, 0.5, 0.7, 0.9)]
    timeline = Table(
        "Fig 12 — occupancy timeline (xmem0 / copy0, software & DSA scenarios)",
        ["t (s)", "sw xmem0", "sw copy0", "dsa xmem0", "dsa copy0"],
    )

    def occupancy_at(scenario, agent, when):
        best = 0.0
        for t, value in scenario.occupancy_series[agent]:
            if t <= when:
                best = value
            else:
                break
        return best

    for when in sample_times:
        timeline.add_row(
            f"{when:.2f}",
            human_size(occupancy_at(scenarios[CoRunKind.SOFTWARE], "xmem0", when)),
            human_size(occupancy_at(scenarios[CoRunKind.SOFTWARE], "copy0", when)),
            human_size(occupancy_at(scenarios[CoRunKind.DSA], "xmem0", when)),
            human_size(occupancy_at(scenarios[CoRunKind.DSA], "copy0", when)),
        )
    result.tables.append(timeline)

    soft_probe, soft_copy = occupancy[CoRunKind.SOFTWARE]
    result.check(
        "software copies dominate the LLC (12b)",
        "memcpy processes dominate the LLC occupation",
        f"copy core {human_size(soft_copy)} vs probe {human_size(soft_probe)}",
        soft_copy > 4 * soft_probe,
    )
    dsa_probe, dsa_copy = occupancy[CoRunKind.DSA]
    llc = spr_platform(n_devices=0).memsys.llc
    result.check(
        "DSA leaves almost no LLC footprint (12c)",
        "almost no LLC occupation when using DSA",
        f"copy agents {human_size(dsa_copy)} <= DDIO partition "
        f"{human_size(llc.io_capacity)}",
        dsa_copy <= llc.io_capacity * 1.01,
    )
    none_probe, _ = occupancy[CoRunKind.NONE]
    result.check(
        "probes keep their footprint under DSA",
        "X-Mem occupancy like the no-co-runner case",
        f"{human_size(dsa_probe)} vs {human_size(none_probe)} (none)",
        dsa_probe > 0.9 * none_probe,
    )
    return result
