"""Fig 13 — X-Mem access latency vs working-set size, three scenarios.

Anchor: at a 4 MB working set the software co-runners inflate latency
~43%; the DSA co-runners leave it essentially unchanged.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.xmem import CoRunKind, run_fig13_sweep

MB = 1024 * 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig13",
        title="X-Mem latency vs working-set size under co-running copies",
        description=(
            "Eight probe instances; background: none, four software "
            "memcpy processes, or the same copies offloaded to DSA."
        ),
    )
    working_sets = (
        [1 * MB, 4 * MB, 64 * MB] if quick else [1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB, 64 * MB]
    )
    duration = 1.0 if quick else 3.0
    curves = run_fig13_sweep(working_sets, duration_s=duration)
    table = Table(
        "Fig 13 — mean access latency (ns)",
        ["Scenario"] + [human_size(w) for w in working_sets],
    )
    for kind in CoRunKind:
        series = Series(label=kind.value)
        cells = [kind.value]
        for wss, latency in curves[kind]:
            series.add(wss, latency)
            cells.append(f"{latency:.1f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    none4 = result.series["none"].y_at(4 * MB)
    soft4 = result.series["software"].y_at(4 * MB)
    dsa4 = result.series["dsa"].y_at(4 * MB)
    ratio = soft4 / none4
    result.check(
        "software co-run inflates 4MB latency ~43%",
        "+43% at 4 MB working set",
        f"+{(ratio - 1) * 100:.0f}%",
        1.25 <= ratio <= 1.75,
    )
    result.check(
        "DSA co-run leaves latency unchanged",
        "cache pollution significantly mitigated by DSA",
        f"dsa/none = {dsa4 / none4:.3f} at 4MB",
        dsa4 <= 1.05 * none4,
    )
    biggest = working_sets[-1]
    none_big = result.series["none"].y_at(biggest)
    soft_big = result.series["software"].y_at(biggest)
    result.check(
        "curves converge beyond the LLC",
        "scenarios meet at large working sets",
        f"software/none = {soft_big / none_big:.2f} at {human_size(biggest)}",
        soft_big <= 1.2 * none_big,
    )
    return result
