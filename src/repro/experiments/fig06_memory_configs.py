"""Fig 6 — throughput/latency across memory configurations.

(a) NUMA: source/destination on the local or remote socket's DRAM.
(b) CXL: source/destination on DRAM or the CXL-attached device.
Synchronous offload, batch size 1, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024

#: Fig 6a configurations: [<Device>: <Source>,<Destination>] with
#: L = local socket DRAM (node 0), R = remote socket DRAM (node 1).
NUMA_CONFIGS: List[Tuple[str, int, int]] = [
    ("D:L,L", 0, 0),
    ("D:L,R", 0, 1),
    ("D:R,L", 1, 0),
    ("D:R,R", 1, 1),
]

#: Fig 6b: D = DRAM (node 0), C = CXL device (node 2).
CXL_CONFIGS: List[Tuple[str, int, int]] = [
    ("D:D,D", 0, 0),
    ("D:C,D", 2, 0),
    ("D:D,C", 0, 2),
    ("D:C,C", 2, 2),
]


def _measure_matrix(
    configs: List[Tuple[str, int, int]], sizes: List[int], iterations: int
) -> Dict[str, Dict[int, Tuple[float, float]]]:
    """label -> size -> (throughput GB/s, mean latency ns)."""
    out: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for label, src_node, dst_node in configs:
        out[label] = {}
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                queue_depth=1,
                iterations=iterations,
                src_node=src_node,
                dst_node=dst_node,
            )
            result = run_dsa_microbench(cfg)
            out[label][size] = (result.throughput, result.mean_latency_ns)
    return out


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig6",
        title="Memory configurations: NUMA (a) and CXL (b)",
        description=(
            "Sync (BS 1) Memory Copy throughput and latency with "
            "buffers placed on local/remote DRAM and on CXL memory."
        ),
    )
    sizes = [4 * KB, 64 * KB] if quick else [1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB]
    iterations = 20 if quick else 50

    for sub, configs in (("6a (NUMA)", NUMA_CONFIGS), ("6b (CXL)", CXL_CONFIGS)):
        matrix = _measure_matrix(configs, sizes, iterations)
        table = Table(
            f"Fig {sub} — throughput GB/s (latency ns)",
            ["Config"] + [human_size(s) for s in sizes],
        )
        for label, _s, _d in configs:
            cells = [label]
            series = Series(label=f"{sub}:{label}")
            for size in sizes:
                throughput, latency = matrix[label][size]
                series.add(size, throughput)
                cells.append(f"{throughput:.2f} ({latency:.0f})")
            result.add_series(series)
            table.add_row(*cells)
        result.tables.append(table)

    big = sizes[-1]
    local = result.series["6a (NUMA):D:L,L"].y_at(big)
    remote = result.series["6a (NUMA):D:R,R"].y_at(big)
    result.check(
        "remote throughput close to local once pipelined",
        "DSA hides the UPI hop at larger sizes",
        f"local {local:.1f} vs remote {remote:.1f} GB/s at {human_size(big)}",
        remote > 0.85 * local,
    )

    # Break-even vs software memcpy between 4 and 10 KB.
    sw4 = run_software_microbench(
        MicrobenchConfig(transfer_size=4 * KB, queue_depth=1, iterations=iterations)
    )
    breakeven_low = result.series["6a (NUMA):D:L,L"].y_at(4 * KB) < sw4.throughput * 1.15
    dsa16 = run_dsa_microbench(
        MicrobenchConfig(transfer_size=16 * KB, queue_depth=1, iterations=iterations)
    )
    sw16 = run_software_microbench(
        MicrobenchConfig(transfer_size=16 * KB, queue_depth=1, iterations=iterations)
    )
    result.check(
        "latency break-even at 4-10KB",
        "DSA catches software memcpy between 4 and 10 KB",
        f"near-parity at 4KB, DSA ahead at 16KB "
        f"({dsa16.throughput:.1f} vs {sw16.throughput:.1f} GB/s)",
        breakeven_low and dsa16.throughput > sw16.throughput,
    )

    ordering = [
        result.series["6b (CXL):D:D,D"].y_at(big),
        result.series["6b (CXL):D:C,D"].y_at(big),
        result.series["6b (CXL):D:D,C"].y_at(big),
        result.series["6b (CXL):D:C,C"].y_at(big),
    ]
    result.check(
        "CXL ordering D,D > C,D > D,C > C,C (G4)",
        "CXL reads beat CXL writes; both-CXL slowest",
        " > ".join(f"{value:.1f}" for value in ordering),
        ordering == sorted(ordering, reverse=True),
    )
    return result
