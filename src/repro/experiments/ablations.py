"""Ablations — which modelling choices carry the paper's shapes.

Four of the model's load-bearing mechanisms are switched off or swept,
and the affected figure-anchor is re-measured:

* **read-buffer pipelining** (Figs 3/4): with one buffer per engine the
  async saturation disappears;
* **non-posted ENQCMD** (Figs 3/9): with ENQCMD as cheap as MOVDIR64B
  the single-thread SWQ penalty vanishes;
* **DDIO way count** (Fig 10): more IO ways push the leaky-DMA onset to
  larger footprints;
* **leaky write amplification** (Fig 10): without the write-path stall
  the multi-device collapse disappears.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.tables import Table
from repro.dsa.config import DeviceConfig, DsaTimingParams, WqMode
from repro.experiments.base import ExperimentResult
from repro.mem.cache import SharedLLC
from repro.mem.numa import NumaTopology
from repro.mem.system import MemorySystem
from repro.platform import Platform, spr_platform
from repro.sim.engine import Environment
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024
MB = 1024 * KB


def _platform_with_timing(timing: DsaTimingParams, n_devices: int = 1, wq_mode=WqMode.DEDICATED):
    # Paper testbed: every measured instance sits on one socket.
    return spr_platform(
        n_devices=n_devices,
        device_config=DeviceConfig.single(wq_size=32, mode=wq_mode),
        timing=timing,
        socket_of=lambda _index: 0,
    )


def _platform_with_ddio_ways(ddio_ways: int, n_devices: int) -> Platform:
    from repro.cpu.instructions import InstructionCosts
    from repro.cpu.swlib import SoftwareKernels
    from repro.mem.dram import DDR5_8CH
    from repro.runtime.driver import IdxdDriver

    env = Environment()
    memsys = MemorySystem(
        env,
        llc=SharedLLC(size=105 * MB, ways=15, ddio_ways=ddio_ways),
        topology=NumaTopology(sockets=2),
    )
    for socket in range(2):
        memsys.add_dram_node(socket, socket=socket, params=DDR5_8CH)
    platform = Platform(
        env=env,
        memsys=memsys,
        driver=IdxdDriver(env, memsys),
        kernels=SoftwareKernels(),
        costs=InstructionCosts(),
    )
    for index in range(n_devices):
        platform.add_device(f"dsa{index}", config=DeviceConfig.single(wq_size=32))
    return platform


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="ablations",
        title="Model ablations: the mechanisms behind the paper's shapes",
        description=(
            "Each row disables or sweeps one modelled mechanism and "
            "re-measures the figure anchor it produces."
        ),
    )
    iterations = 40 if quick else 100
    base_timing = DsaTimingParams()

    # -- 1. read-buffer pipelining ------------------------------------------------
    table = Table(
        "Ablation 1 — read buffers per engine (async 4KB copy)",
        ["Read buffers", "Throughput GB/s"],
    )
    depth_results = {}
    for depth in (1, 4, 8, 32):
        timing = dataclasses.replace(base_timing, read_buffers_per_engine=depth)
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=32, iterations=iterations)
        depth_results[depth] = run_dsa_microbench(
            cfg, platform=_platform_with_timing(timing)
        ).throughput
        table.add_row(depth, depth_results[depth])
    result.tables.append(table)
    result.check(
        "pipelining produces the async saturation",
        "deep read buffers hide memory latency (Fig 4)",
        f"{depth_results[1]:.1f} GB/s at depth 1 vs {depth_results[32]:.1f} at 32",
        depth_results[32] > 2 * depth_results[1],
    )

    # -- 2. ENQCMD round trip -------------------------------------------------------
    table = Table(
        "Ablation 2 — ENQCMD cost (single-thread SWQ, async 4KB)",
        ["ENQCMD ns", "Throughput GB/s"],
    )
    enq_results = {}
    for enqcmd_ns in (60.0, 350.0):
        cfg = MicrobenchConfig(
            transfer_size=4 * KB,
            queue_depth=32,
            wq_mode=WqMode.SHARED,
            iterations=iterations,
        )
        platform = _platform_with_timing(base_timing, wq_mode=WqMode.SHARED)
        # The submission instruction cost is a core-side property.
        platform.costs = dataclasses.replace(platform.costs, enqcmd_ns=enqcmd_ns)
        enq_results[enqcmd_ns] = run_dsa_microbench(cfg, platform=platform).throughput
        table.add_row(f"{enqcmd_ns:.0f}", enq_results[enqcmd_ns])
    result.tables.append(table)
    result.check(
        "the non-posted round trip causes the SWQ penalty",
        "cheap ENQCMD would erase the Fig 3/9 SWQ gap",
        f"{enq_results[350.0]:.1f} GB/s at 350ns vs {enq_results[60.0]:.1f} at 60ns",
        enq_results[60.0] > 1.8 * enq_results[350.0],
    )

    # -- 3. DDIO way count -------------------------------------------------------------
    table = Table(
        "Ablation 3 — DDIO ways (3 devices, 512KB transfers)",
        ["DDIO ways", "Aggregate GB/s"],
    )
    ddio_results = {}
    for ways in (2, 4):
        cfg = MicrobenchConfig(
            transfer_size=512 * KB,
            queue_depth=16,
            n_devices=3,
            n_workers=3,
            iterations=max(20, iterations // 2),
        )
        ddio_results[ways] = run_dsa_microbench(
            cfg, platform=_platform_with_ddio_ways(ways, n_devices=3)
        ).throughput
        table.add_row(ways, ddio_results[ways])
    result.tables.append(table)
    result.check(
        "more DDIO ways defer the leaky collapse",
        "allocate more LLC ways for DDIO at large transfers (§4.3/G3)",
        f"{ddio_results[2]:.1f} GB/s (2 ways) vs {ddio_results[4]:.1f} (4 ways)",
        ddio_results[4] > 1.1 * ddio_results[2],
    )

    # -- 4. leaky write amplification -----------------------------------------------------
    table = Table(
        "Ablation 4 — leaky write-path stall (4 devices, 1MB transfers)",
        ["Amplification", "Aggregate GB/s"],
    )
    leak_results = {}
    for amplification in (1.0, base_timing.leaky_write_amplification):
        timing = dataclasses.replace(
            base_timing, leaky_write_amplification=amplification
        )
        cfg = MicrobenchConfig(
            transfer_size=1 * MB,
            queue_depth=16,
            n_devices=4,
            n_workers=4,
            iterations=max(16, iterations // 3),
        )
        leak_results[amplification] = run_dsa_microbench(
            cfg,
            platform=spr_platform(
                n_devices=4,
                device_config=DeviceConfig.single(wq_size=32),
                timing=timing,
                socket_of=lambda _index: 0,
            ),
        ).throughput
        table.add_row(f"{amplification:.2f}", leak_results[amplification])
    result.tables.append(table)
    amplified = leak_results[base_timing.leaky_write_amplification]
    result.check(
        "the write-path stall deepens the Fig 10 drop",
        "the leaky regime combines the DRAM write-bandwidth bound with "
        "per-device write stalls; removing the stall recovers part of it",
        f"{leak_results[1.0]:.0f} GB/s without vs {amplified:.0f} with the stall",
        leak_results[1.0] > 1.08 * amplified and 80.0 <= amplified <= 100.0,
    )
    return result
