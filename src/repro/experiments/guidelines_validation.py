"""§6 — the guidelines themselves, validated against the simulator.

G1–G6 are the paper's distilled advice.  The advisor module encodes
them; this experiment checks that following the advice actually wins
*in the measured model*, case by case:

* G1: coalescing beats fragmenting for the same total;
* G2: async offload above the advisor's crossover beats software, and
  software beats DSA below it;
* G3: cache-control keeps a hot consumer's data in the LLC;
* G5: the advised engine count outperforms a single engine;
* G6: the advised WQ mode wins for the given thread count.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.tables import Table
from repro.dsa.config import WqMode
from repro.experiments.base import ExperimentResult
from repro.guidelines import OffloadAdvisor
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="guidelines",
        title="G1-G6 validated against the measured model",
        description=(
            "Each guideline's advice is applied and its alternative "
            "measured; the advice must win on its own terms."
        ),
    )
    iterations = 30 if quick else 80
    advisor = OffloadAdvisor()
    table = Table(
        "Guideline validation",
        ["Guideline", "Advice", "Advised GB/s", "Alternative GB/s"],
    )

    # -- G1: coalesce contiguous data ---------------------------------------------
    total = 256 * KB
    coalesced = run_dsa_microbench(
        MicrobenchConfig(transfer_size=total, queue_depth=8, iterations=iterations)
    ).throughput
    fragmented = run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=total // 64,
            batch_size=64,
            queue_depth=8,
            iterations=max(10, iterations // 4),
        )
    ).throughput
    table.add_row("G1", "one large descriptor over 64 small", coalesced, fragmented)
    result.check(
        "G1: coalescing wins for equal totals",
        "larger single descriptors improve throughput and latency",
        f"{coalesced:.1f} vs {fragmented:.1f} GB/s for {human_size(total)}",
        coalesced >= fragmented,
    )

    # -- G2: the advisor's crossover is real ------------------------------------------
    crossover = advisor.async_threshold()
    above = crossover * 4
    below = max(64, crossover // 4)
    above_cfg = MicrobenchConfig(transfer_size=above, queue_depth=32, iterations=iterations * 2)
    below_cfg = MicrobenchConfig(transfer_size=below, queue_depth=32, iterations=iterations * 2)
    dsa_above = run_dsa_microbench(above_cfg).throughput
    sw_above = run_software_microbench(above_cfg).throughput
    dsa_below = run_dsa_microbench(below_cfg).throughput
    sw_below = run_software_microbench(below_cfg).throughput
    table.add_row("G2", f"offload >= {human_size(crossover)} (async)", dsa_above, sw_above)
    result.check(
        "G2: offload advice wins above the crossover",
        "use DSA asynchronously when possible",
        f"DSA {dsa_above:.2f} vs SW {sw_above:.2f} GB/s at {human_size(above)}",
        dsa_above > sw_above,
    )
    result.check(
        "G2: core advice wins below the crossover",
        "transfer sizes below the crossover should stay on the CPU",
        f"SW {sw_below:.2f} vs DSA {dsa_below:.2f} GB/s at {human_size(below)}",
        sw_below > dsa_below,
    )

    # -- G3: steer hot data into the LLC ------------------------------------------------
    from repro.platform import spr_platform

    hot_platform = spr_platform()
    run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=64 * KB,
            queue_depth=8,
            iterations=iterations,
            cache_control=True,
        ),
        platform=hot_platform,
    )
    llc_resident = hot_platform.memsys.llc._main.get("dsa0", 0.0)
    cold_platform = spr_platform()
    run_dsa_microbench(
        MicrobenchConfig(transfer_size=64 * KB, queue_depth=8, iterations=iterations),
        platform=cold_platform,
    )
    llc_cold = cold_platform.memsys.llc._main.get("dsa0", 0.0)
    table.add_row("G3", "cache-control for hot consumers", llc_resident / KB, llc_cold / KB)
    result.check(
        "G3: the hint controls the destination",
        "flag=1 allocates into the LLC, flag=0 leaves it clean",
        f"{human_size(llc_resident)} resident with the hint, "
        f"{human_size(llc_cold)} without",
        llc_resident > 0 and llc_cold == 0.0,
    )

    # -- G5: advised engine count ---------------------------------------------------------
    typical = 512
    advised_engines = advisor.recommend_engines(typical)
    one_engine = run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=typical,
            batch_size=8,
            queue_depth=8,
            engines_per_group=1,
            iterations=max(10, iterations // 2),
        )
    ).throughput
    advised = run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=typical,
            batch_size=8,
            queue_depth=8,
            engines_per_group=advised_engines,
            iterations=max(10, iterations // 2),
        )
    ).throughput
    table.add_row("G5", f"{advised_engines} engines for {typical}B transfers", advised, one_engine)
    result.check(
        "G5: advised engine count beats one engine",
        "leverage PE-level parallelism for small transfers",
        f"{advised:.1f} GB/s with {advised_engines} PEs vs {one_engine:.1f} with 1",
        advised > 1.4 * one_engine,
    )

    # -- G6: advised WQ mode for the thread count ---------------------------------------------
    threads = 4
    recommendation = advisor.recommend(
        64 * KB, submitting_threads=threads, available_wqs=1
    )
    shared = run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=4 * KB,
            queue_depth=8,
            n_workers=threads,
            wq_mode=WqMode.SHARED,
            iterations=max(10, iterations // 2),
        )
    ).throughput
    # The alternative: everyone hammering the single DWQ is not even
    # legal (credit chaos); the honest alternative is one thread.
    single_thread = run_dsa_microbench(
        MicrobenchConfig(
            transfer_size=4 * KB,
            queue_depth=8,
            wq_mode=WqMode.SHARED,
            iterations=max(10, iterations // 2),
        )
    ).throughput
    table.add_row("G6", f"SWQ for {threads} threads on 1 WQ", shared, single_thread)
    result.check(
        "G6: SWQ scales with submitting threads",
        "SWQs outperform when threads exceed the WQ count",
        f"{shared:.1f} GB/s with {threads} threads vs {single_thread:.1f} with 1",
        recommendation.wq_mode is WqMode.SHARED and shared > 2 * single_thread,
    )

    result.tables.append(table)
    return result
