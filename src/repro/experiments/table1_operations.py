"""Table 1 — the supported data-streaming operations, exercised.

The paper's Table 1 is an inventory; this experiment goes one step
further and *runs* every operation through the device model on backed
buffers, checking functional correctness and reporting the modelled
async throughput next to the software counterpart.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import speedup
from repro.analysis.tables import Table
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.dif import DifContext
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.experiments.base import ExperimentResult
from repro.mem.address import AddressSpace
from repro.platform import spr_platform
from repro.sim.rng import make_rng
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_dsa_microbench,
    run_software_microbench,
)

KB = 1024

#: (opcode, description from Table 1, analysed in §4?)
OPERATIONS = [
    (Opcode.MEMMOVE, "Copy from source to destination", True),
    (Opcode.DUALCAST, "Copy to two destinations", True),
    (Opcode.CRCGEN, "CRC32 checksum on source data", True),
    (Opcode.COPY_CRC, "Copy + CRC32 in one pass", True),
    (Opcode.DIF_CHECK, "Verify DIF on 512/4096-byte blocks", True),
    (Opcode.DIF_INSERT, "Insert DIF per block", True),
    (Opcode.DIF_STRIP, "Strip DIF per block", True),
    (Opcode.DIF_UPDATE, "Update DIF per block", True),
    (Opcode.FILL, "Fill region with 8-byte pattern", True),
    (Opcode.COMPARE, "Compare two source regions", True),
    (Opcode.COMPARE_PATTERN, "Compare region against pattern", True),
    (Opcode.CREATE_DELTA, "Create delta record (niche, not analysed)", False),
    (Opcode.APPLY_DELTA, "Apply delta record (niche, not analysed)", False),
    (Opcode.CACHE_FLUSH, "Evict address range (niche, not analysed)", False),
]


def _functional_check(opcode: Opcode) -> bool:
    """Run the operation on real bytes through the device pipeline."""
    platform = spr_platform()
    device = platform.driver.device("dsa0")
    space = AddressSpace()
    device.attach_space(space)
    rng = make_rng(42)
    size = 2048 if opcode not in (Opcode.DIF_CHECK, Opcode.DIF_STRIP, Opcode.DIF_UPDATE) else 2080
    src = space.allocate(4 * KB, backed=True)
    src2 = space.allocate(4 * KB, backed=True)
    dst = space.allocate(8 * KB, backed=True)
    dst2 = space.allocate(8 * KB, backed=True)
    src.fill_random(rng)
    src2.data[:] = src.data
    dif = DifContext(block_size=512)
    if opcode in (Opcode.DIF_CHECK, Opcode.DIF_STRIP, Opcode.DIF_UPDATE):
        from repro.dsa.dif import dif_insert

        protected = dif_insert(src.data[:2048], dif)
        src.data[: len(protected)] = protected
    descriptor = WorkDescriptor(
        opcode=opcode,
        pasid=space.pasid,
        flags=DescriptorFlags.REQUEST_COMPLETION
        | DescriptorFlags.BLOCK_ON_FAULT,
        src=src.va,
        src2=src2.va,
        dst=dst.va,
        dst2=dst2.va,
        size=size,
        pattern=0xABABABABABABABAB,
        dif=dif,
        dif_new=DifContext(block_size=512, app_tag=5),
    )
    device.submit(descriptor)
    platform.env.run()
    status = descriptor.completion.status
    if not status.is_success:
        return False
    if opcode is Opcode.MEMMOVE:
        return bool(np.array_equal(dst.data[:size], src.data[:size]))
    if opcode is Opcode.FILL:
        return bool((dst.data[:size] == 0xAB).all())
    return True


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table1",
        title="Data streaming operations supported by DSA",
        description=(
            "Every Table 1 operation executed functionally through the "
            "device model, with modelled async throughput at 64 KB vs "
            "its software counterpart."
        ),
    )
    iterations = 30 if quick else 100
    table = Table(
        "Table 1 (reproduced, 64 KB transfers, async QD32)",
        ["Operation", "Description", "Functional", "DSA GB/s", "SW GB/s", "Speedup"],
    )
    for opcode, description, analysed in OPERATIONS:
        functional = "pass" if _functional_check(opcode) else "FAIL"
        if analysed:
            cfg = MicrobenchConfig(
                opcode=opcode,
                transfer_size=64 * KB,
                queue_depth=16,
                iterations=iterations,
                dif=DifContext(block_size=512) if "DIF" in opcode.name else None,
            )
            dsa = run_dsa_microbench(cfg).throughput
            sw = run_software_microbench(cfg).throughput
            table.add_row(
                opcode.name, description, functional, dsa, sw, speedup(dsa, sw)
            )
        else:
            table.add_row(opcode.name, description, functional, "-", "-", "-")
    result.tables.append(table)
    functional_ok = all("FAIL" not in row[2] for row in table.rows)
    result.check(
        "all operations functional",
        "Table 1 lists them as supported",
        "all pass" if functional_ok else "failures present",
        functional_ok,
    )
    return result
