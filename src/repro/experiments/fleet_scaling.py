"""Fleet scaling — multi-socket device fleets, placement, and failover.

Extends the paper's single-socket multi-instance result (Fig 10) to
the fleet question a deployment actually faces: how does aggregate
throughput scale across ``sockets × devices_per_socket`` topologies,
how much does placement policy matter once descriptors can cross the
UPI (and pay the remote-IOMMU translation round trip), and what does
losing a device mid-run cost?

Fleet guideline (G7-style): *scale out with NUMA-local placement —
remote-socket descriptors pay the UPI crossing and serialize at the
home socket's translation agent, so a local device is strictly
preferable when one is live; and provision for failover, because a
disabled device's queued descriptors can re-route with zero loss.*
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.fleet import FleetConfig, run_fleet

KB = 1024


def _config(
    sockets: int,
    devices: int,
    placement: str,
    quick: bool,
    **overrides,
) -> FleetConfig:
    base = dict(
        transfer_size=64 * KB,
        queue_depth=4,
        iterations=8 if quick else 24,
        workers_per_socket=2,
    )
    base.update(overrides)
    return FleetConfig(
        sockets=sockets,
        devices_per_socket=devices,
        placement=placement,
        **base,
    )


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fleet-scaling",
        title="Fleet scaling across sockets, placement policies, failover",
        description=(
            "Aggregate 64 KB Memory Copy throughput over "
            "sockets x devices_per_socket topologies; NUMA-local vs "
            "topology-blind placement; zero-loss failover when a device "
            "is disabled mid-run."
        ),
    )

    # -- scaling curve: devices per socket at 1 and 2 sockets ---------------
    per_socket = [1, 2] if quick else [1, 2, 4]
    table = Table(
        "Fleet scaling — aggregate throughput (GB/s, numa-local)",
        ["Topology"] + [f"{d}/socket" for d in per_socket],
    )
    curves = {}
    for sockets in (1, 2):
        series = Series(label=f"{sockets}-socket")
        cells = [f"{sockets}-socket"]
        for devices in per_socket:
            run_result = run_fleet(_config(sockets, devices, "numa-local", quick))
            throughput = run_result.throughput
            series.add(sockets * devices, throughput)
            curves[(sockets, devices)] = throughput
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    one_socket = [curves[(1, d)] for d in per_socket]
    two_socket = [curves[(2, d)] for d in per_socket]
    result.check(
        "throughput scales monotonically with devices per socket",
        "adding devices never hurts",
        " / ".join(f"{v:.0f}" for v in one_socket),
        all(b >= 0.95 * a for a, b in zip(one_socket, one_socket[1:]))
        and all(b >= 0.95 * a for a, b in zip(two_socket, two_socket[1:])),
    )
    result.check(
        "second socket adds throughput",
        "2-socket fleet beats 1-socket at equal devices/socket",
        f"{two_socket[0]:.0f} vs {one_socket[0]:.0f} GB/s",
        two_socket[0] > 1.3 * one_socket[0],
    )

    # -- placement policy: NUMA-local vs topology-blind round robin --------
    policy_table = Table(
        "Placement policy at 2x2 (GB/s)", ["Policy", "Throughput"]
    )
    policy_curve = Series(label="placement")
    throughputs = {}
    for index, placement in enumerate(("numa-local", "round-robin", "least-loaded")):
        run_result = run_fleet(_config(2, 2, placement, quick))
        throughputs[placement] = run_result.throughput
        policy_table.add_row(placement, f"{run_result.throughput:.2f}")
        policy_curve.add(index, run_result.throughput)
    result.add_series(policy_curve)
    result.tables.append(policy_table)
    result.check(
        "NUMA-local placement beats topology-blind round robin",
        "no UPI crossing, no remote-IOMMU serialization",
        f"{throughputs['numa-local']:.1f} vs {throughputs['round-robin']:.1f} GB/s",
        throughputs["numa-local"] >= throughputs["round-robin"],
    )

    # -- failover: disable dsa0 while its WQ is occupied -------------------
    failover = run_fleet(
        _config(
            2,
            2,
            "numa-local",
            quick,
            queue_depth=8,
            workers_per_socket=3,
            disable_device="dsa0",
            disable_at_ns=500.0,
        )
    )
    fail_table = Table(
        "Failover (disable dsa0 at 500 ns)",
        ["Offered", "Completed", "Rerouted", "To software", "Lost"],
    )
    fail_table.add_row(
        str(failover.offered),
        str(failover.completed),
        str(failover.rerouted),
        str(failover.to_software),
        str(failover.lost),
    )
    result.tables.append(fail_table)
    failover_curve = Series(label="failover")
    failover_curve.add(0, float(failover.rerouted))
    failover_curve.add(1, float(failover.lost))
    result.add_series(failover_curve)
    result.check(
        "device loss loses zero descriptors",
        "every descriptor completes on a survivor or software",
        f"{failover.completed}/{failover.offered} completed, "
        f"{failover.rerouted} rerouted, {failover.lost} lost",
        failover.lost == 0 and failover.rerouted > 0,
    )
    result.check(
        "failover accounting balances",
        "rerouted descriptors booked on the absorbing device",
        f"rerouted={failover.rerouted}",
        failover.metrics.get("fleet.dsa0.failover.rerouted", 0.0)
        == float(failover.rerouted),
    )
    return result
