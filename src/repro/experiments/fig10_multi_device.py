"""Fig 10 — throughput scaling with multiple DSA instances.

Scaling is linear (~30 GB/s per device) until large transfers overflow
the DDIO ways: the leaky-DMA regime caps 3 and 4 devices near 70 and
90 GB/s (§4.3).
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024
MB = 1024 * KB


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig10",
        title="Throughput with 1-4 DSA instances",
        description=(
            "Aggregate Memory Copy throughput; beyond 64 KB the write "
            "footprint overflows the DDIO LLC ways and 3-4 instances "
            "drop to the leaky-DMA regime."
        ),
    )
    sizes = [16 * KB, 64 * KB, 1 * MB] if quick else [4 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB]
    devices = [1, 2, 3, 4]
    iterations = 20 if quick else 40
    table = Table(
        "Fig 10 — aggregate throughput (GB/s)",
        ["Devices"] + [human_size(s) for s in sizes],
    )
    for n in devices:
        series = Series(label=f"{n}xDSA")
        cells = [str(n)]
        for size in sizes:
            cfg = MicrobenchConfig(
                transfer_size=size,
                queue_depth=16,
                n_devices=n,
                n_workers=n,
                iterations=iterations,
            )
            throughput = run_dsa_microbench(cfg).throughput
            series.add(size, throughput)
            cells.append(f"{throughput:.2f}")
        result.add_series(series)
        table.add_row(*cells)
    result.tables.append(table)

    at64k = [result.series[f"{n}xDSA"].y_at(64 * KB) for n in devices]
    result.check(
        "linear scaling at 64KB",
        "throughput increases linearly with device count",
        " / ".join(f"{value:.0f}" for value in at64k),
        at64k[1] > 1.8 * at64k[0] and at64k[3] > 3.5 * at64k[0],
    )
    three_big = result.series["3xDSA"].y_at(1 * MB)
    four_big = result.series["4xDSA"].y_at(1 * MB)
    result.check(
        "leaky-DMA drop for 3 devices at large sizes",
        "drops to ~70 GB/s",
        f"{three_big:.0f} GB/s at 1MB",
        60.0 <= three_big <= 80.0,
    )
    result.check(
        "leaky-DMA drop for 4 devices at large sizes",
        "drops to ~90 GB/s",
        f"{four_big:.0f} GB/s at 1MB",
        80.0 <= four_big <= 100.0,
    )
    one_big = result.series["1xDSA"].y_at(1 * MB)
    result.check(
        "single device unaffected at large sizes",
        "one instance keeps ~30 GB/s",
        f"{one_big:.1f} GB/s at 1MB",
        one_big > 28.0,
    )
    return result
