"""Fig 3 — Memory Copy throughput vs transfer size and batch size.

Sync and async submission, DWQ (MOVDIR64B streaming) and SWQ (ENQCMD),
with batch sizes 1–64.  Anchors: batching lifts small sync transfers
dramatically; a DWQ streams to saturation even at BS 1; an SWQ batch of
n behaves like n streaming cores; saturation at 30 GB/s.
"""

from __future__ import annotations

from repro.analysis.metrics import human_size
from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.config import WqMode
from repro.experiments.base import ExperimentResult
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig3",
        title="Memory Copy throughput: sync/async x transfer size x batch size",
        description=(
            "GB/s of the Memory Copy operation when varying batch size "
            "for synchronous offload, asynchronous DWQ streaming, and "
            "asynchronous single-thread SWQ submission."
        ),
    )
    sizes = [1 * KB, 4 * KB, 64 * KB] if quick else [256, 1 * KB, 4 * KB, 16 * KB, 64 * KB, 256 * KB]
    batches = [1, 8] if quick else [1, 4, 16, 64]
    iterations = 20 if quick else 50

    modes = [
        ("sync DWQ", WqMode.DEDICATED, 1),
        ("async DWQ", WqMode.DEDICATED, 16),
        ("async SWQ", WqMode.SHARED, 16),
    ]
    for label, wq_mode, queue_depth in modes:
        table = Table(
            f"Fig 3 — {label} (GB/s)",
            ["Batch size"] + [human_size(s) for s in sizes],
        )
        for batch in batches:
            series = Series(label=f"{label}:BS{batch}")
            cells = [f"BS {batch}"]
            for size in sizes:
                cfg = MicrobenchConfig(
                    transfer_size=size,
                    batch_size=batch,
                    queue_depth=queue_depth,
                    wq_mode=wq_mode,
                    iterations=max(10, iterations // batch) if batch > 1 else iterations,
                )
                throughput = run_dsa_microbench(cfg).throughput
                series.add(size, throughput)
                cells.append(f"{throughput:.2f}")
            result.add_series(series)
            table.add_row(*cells)
        result.tables.append(table)

    probe = 4 * KB
    sync_bs1 = result.series["sync DWQ:BS1"].y_at(probe)
    sync_bsN = result.series[f"sync DWQ:BS{batches[-1]}"].y_at(probe)
    result.check(
        "sync batching lifts small transfers",
        "throughput rises steeply with batch size at small sizes",
        f"{sync_bs1:.1f} -> {sync_bsN:.1f} GB/s at 4KB",
        sync_bsN > 2 * sync_bs1,
    )
    dwq_bs1 = result.series["async DWQ:BS1"].y_at(probe)
    swq_bs1 = result.series["async SWQ:BS1"].y_at(probe)
    result.check(
        "DWQ streaming beats single-thread SWQ at BS1",
        "ENQCMD round trips throttle the SWQ between 1-8KB",
        f"DWQ {dwq_bs1:.1f} vs SWQ {swq_bs1:.1f} GB/s at 4KB",
        dwq_bs1 > 1.5 * swq_bs1,
    )
    swq_bsN = result.series[f"async SWQ:BS{batches[-1]}"].y_at(probe)
    result.check(
        "SWQ batch of n ~ n streaming cores",
        "batching recovers SWQ throughput",
        f"SWQ BS{batches[-1]} reaches {swq_bsN:.1f} GB/s at 4KB",
        swq_bsN > 2.5 * swq_bs1,
    )
    big = sizes[-1]
    dwq_big = result.series["async DWQ:BS1"].y_at(big)
    result.check(
        "async saturation at ~30 GB/s",
        "30 GB/s I/O fabric limit",
        f"{dwq_big:.1f} GB/s at {human_size(big)}",
        28.0 <= dwq_big <= 31.0,
    )
    return result
