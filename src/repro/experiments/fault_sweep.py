"""Fault sweep — page faults erase DSA's advantage (paper §4.3, App. B).

Sweeps an injected per-page fault rate against three configurations of
a synchronous 64 KiB ``memcpy`` stream through DTO:

* **BOF=1** — the engine stalls for the full fault-service latency on
  every injected fault;
* **BOF=0 + resume** — the engine reports a partial completion and the
  :mod:`repro.runtime.recovery` layer touches the faulting page and
  resubmits the remainder (bounded retries, software degradation);
* **software** — the calibrated CPU kernels, which never take device
  faults.

The paper's observation this reproduces: a fault-free offload beats
the CPU handily, but even modest fault rates push both fault-handling
modes below the software baseline — hence guideline G5, touch/pin
pages before offloading.  Injection draws from the installed run seed,
so serial and ``--jobs N`` runs produce identical sweeps.
"""

from __future__ import annotations

from repro.analysis.series import Series
from repro.analysis.tables import Table
from repro.dsa.opcodes import Opcode
from repro.experiments.base import ExperimentResult
from repro.faults import FaultPlan, injection
from repro.mem import AddressSpace
from repro.platform import spr_platform
from repro.runtime.dml import Dml
from repro.runtime.dto import Dto
from repro.runtime.recovery import RetryPolicy

KB = 1024
TRANSFER = 64 * KB

#: Short leash for the sweep: a couple of resume attempts, then finish
#: the tail on the CPU — the behaviour a latency-sensitive caller wants.
SWEEP_POLICY = RetryPolicy(max_retries=2, backoff_base_ns=500.0, backoff_cap_ns=8_000.0)


def _run_stream(iterations: int, fault_rate: float, mode: str) -> dict:
    """One configuration: returns throughput (GB/s) and DTO stats."""
    platform = spr_platform(n_devices=1)
    space = AddressSpace()
    portal = platform.open_portal("dsa0", 0, space)
    dml = Dml(
        platform.env,
        [portal],
        kernels=platform.kernels,
        costs=platform.costs,
        space=space,
    )
    dto = Dto(
        dml,
        min_size=8 * KB,
        policy=SWEEP_POLICY,
        block_on_fault=(mode == "bof1"),
    )
    core = platform.core(0)
    src = space.allocate(TRANSFER)
    dst = space.allocate(TRANSFER)

    def workload(env):
        for _ in range(iterations):
            if mode == "software":
                descriptor = dml.make_descriptor(
                    Opcode.MEMMOVE, TRANSFER, src=src, dst=dst
                )
                yield from dml.run_software(core, descriptor)
            else:
                yield from dto.memcpy(core, dst, src, TRANSFER)

    plan = FaultPlan(page_fault_rate=fault_rate, seed=None)
    with injection(plan):
        platform.env.process(workload(platform.env))
        platform.env.run()
    elapsed = platform.env.now
    gbps = iterations * TRANSFER / elapsed if elapsed else 0.0
    return {
        "throughput": gbps,
        "fault_fallbacks": dto.stats.fault_fallbacks,
        "bytes_offloaded": dto.stats.bytes_offloaded,
        "bytes_software": dto.stats.bytes_software,
        "resumes": platform.env.metrics.counter("recovery.resumes").value,
    }


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="faults",
        title="Fault-rate sweep: BOF=1 vs BOF=0+resume vs software",
        description=(
            "Synchronous 64 KiB memcpy stream under injected per-page fault "
            "rates; DSA throughput vs the software kernels (paper §4.3 / "
            "Appendix B shape)."
        ),
    )
    rates = [0.0, 0.2] if quick else [0.0, 0.02, 0.08, 0.2]
    iterations = 20 if quick else 50
    modes = {"bof1": "BOF=1", "bof0": "BOF=0 + resume", "software": "software"}
    table = Table(
        "Fault sweep — throughput (GB/s)",
        ["Fault rate"] + list(modes.values()),
    )
    runs = {}
    for mode in modes:
        series = Series(label=mode)
        for rate in rates:
            # The software baseline never touches the device; skip
            # re-running it per rate (it cannot see injected faults).
            if mode == "software" and rate != rates[0]:
                runs[(mode, rate)] = runs[(mode, rates[0])]
            else:
                runs[(mode, rate)] = _run_stream(iterations, rate, mode)
            series.add(rate, runs[(mode, rate)]["throughput"])
        result.add_series(series)
    for rate in rates:
        table.add_row(
            f"{rate:.2f}",
            *(f"{runs[(mode, rate)]['throughput']:.2f}" for mode in modes),
        )
    result.tables.append(table)

    top = rates[-1]
    sw = runs[("software", rates[0])]["throughput"]
    result.check(
        "fault-free offload beats software",
        "DSA outperforms the cores when pages are resident",
        f"DSA {runs[('bof1', 0.0)]['throughput']:.2f} vs CPU {sw:.2f} GB/s",
        runs[("bof1", 0.0)]["throughput"] > sw
        and runs[("bof0", 0.0)]["throughput"] > sw,
    )
    result.check(
        "high fault rates drop DSA below software",
        "page faults erase the offload advantage (Appendix B)",
        f"at rate {top:.2f}: BOF=1 {runs[('bof1', top)]['throughput']:.2f}, "
        f"BOF=0 {runs[('bof0', top)]['throughput']:.2f} vs CPU {sw:.2f} GB/s",
        runs[("bof1", top)]["throughput"] < sw
        and runs[("bof0", top)]["throughput"] < sw,
    )
    blocked = runs[("bof1", top)]
    result.check(
        "BOF=1 stalls dominate at the top rate",
        "blocking faults stall the engine for the service latency",
        f"{blocked['throughput']:.2f} GB/s vs "
        f"{runs[('bof1', 0.0)]['throughput']:.2f} GB/s fault-free",
        blocked["throughput"] < 0.5 * runs[("bof1", 0.0)]["throughput"],
    )
    resumed = runs[("bof0", top)]
    total_bytes = iterations * TRANSFER
    result.check(
        "BOF=0 resumes from the partial completion",
        "software touches the page and resubmits the remainder (§4.3)",
        f"{resumed['resumes']:.0f} resumes; "
        f"{resumed['bytes_offloaded']} hw + {resumed['bytes_software']} sw bytes",
        resumed["resumes"] > 0
        and resumed["fault_fallbacks"] > 0
        and resumed["bytes_offloaded"] + resumed["bytes_software"] == total_bytes
        and resumed["bytes_offloaded"] > 0,
    )
    return result
