"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig10            # run one, print its output
    python -m repro run all --quick      # everything, reduced sweeps
    python -m repro run fig5 --trace out.json --metrics   # observability
    python -m repro advise 65536         # G1-G6 advice for one transfer
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.tables import Table
from repro.experiments import all_experiments, run_experiment
from repro.guidelines import OffloadAdvisor
from repro.obs import (
    MetricsRegistry,
    Tracer,
    install_metrics,
    install_tracer,
    metrics_table,
    uninstall_metrics,
    uninstall_tracer,
    write_chrome_trace,
)


def _cmd_list(_args) -> int:
    for exp_id in all_experiments():
        print(exp_id)
    return 0


def _cmd_run(args) -> int:
    targets = all_experiments() if args.experiment == "all" else [args.experiment]
    tracer = None
    if args.trace:
        tracer = Tracer()
        install_tracer(tracer)
    registry = MetricsRegistry()
    install_metrics(registry)
    summary_rows = []
    failures = 0
    try:
        for exp_id in targets:
            registry.clear()  # per-experiment snapshots under shared names
            start = time.time()
            result = run_experiment(exp_id, quick=args.quick)
            wall = time.time() - start
            print(result.render())
            if args.chart and result.series:
                from repro.analysis.ascii_chart import render_experiment_charts

                print()
                print(render_experiment_charts(result))
            if args.metrics:
                print()
                print(metrics_table(registry, title=f"Metrics — {exp_id}").render())
            print(f"[{exp_id} finished in {wall:.1f}s]\n")
            held = sum(1 for anchor in result.anchors if anchor.holds)
            summary_rows.append(
                (exp_id, held, len(result.anchors), wall, len(result.metrics))
            )
            if not result.anchors_hold:
                failures += 1
    finally:
        uninstall_metrics()
        if tracer is not None:
            uninstall_tracer()
    if tracer is not None:
        count = write_chrome_trace(tracer, args.trace)
        print(f"wrote {count} trace events to {args.trace} (open in ui.perfetto.dev)")
    if len(targets) > 1:
        table = Table(
            "Run summary",
            ["Experiment", "Anchors", "Status", "Wall (s)", "Metrics"],
        )
        for exp_id, held, total, wall, n_metrics in summary_rows:
            table.add_row(
                exp_id,
                f"{held}/{total}",
                "pass" if held == total else "FAIL",
                f"{wall:.1f}",
                n_metrics,
            )
        print(table.render())
    if failures:
        print(f"{failures} experiment(s) missed paper anchors", file=sys.stderr)
    return 1 if failures else 0


def _cmd_advise(args) -> int:
    advisor = OffloadAdvisor()
    recommendation = advisor.recommend(
        args.size,
        asynchronous_possible=not args.sync_only,
        contiguous=not args.scattered,
        consumer_reads_soon=args.hot,
        pollution_sensitive_corunners=args.pollution_sensitive,
        submitting_threads=args.threads,
        available_wqs=args.wqs,
    )
    verdict = "OFFLOAD to DSA" if recommendation.use_dsa else "keep on the CPU"
    print(f"{args.size} bytes -> {verdict}")
    if recommendation.use_dsa:
        print(f"  mode:          {'async' if recommendation.asynchronous else 'sync'}")
        print(f"  batch size:    {recommendation.batch_size}")
        print(f"  cache control: {recommendation.cache_control}")
        print(f"  WQ mode:       {recommendation.wq_mode.value}")
    for reason in recommendation.reasons:
        print(f"  - {reason}")
    if recommendation.guidelines:
        print(f"  guidelines applied: {', '.join(sorted(recommendation.guidelines))}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction harness for the ASPLOS'24 DSA paper",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    run_parser.add_argument("--chart", action="store_true", help="ASCII plots of the series")
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="export a Chrome/Perfetto trace.json of the run to PATH",
    )
    run_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics-registry snapshot after each experiment",
    )
    run_parser.set_defaults(func=_cmd_run)

    advise = sub.add_parser("advise", help="G1-G6 advice for a transfer size")
    advise.add_argument("size", type=int)
    advise.add_argument("--sync-only", action="store_true")
    advise.add_argument("--scattered", action="store_true")
    advise.add_argument("--hot", action="store_true", help="consumer reads the data soon")
    advise.add_argument("--pollution-sensitive", action="store_true")
    advise.add_argument("--threads", type=int, default=1)
    advise.add_argument("--wqs", type=int, default=1)
    advise.set_defaults(func=_cmd_advise)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
