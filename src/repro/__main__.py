"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro run fig10            # run one, print its output
    python -m repro run fig2,fig5,table1 # a comma-separated subset
    python -m repro run all --quick --jobs 4   # everything, in parallel
    python -m repro run fig5 --trace out.json --metrics   # observability
    python -m repro cache stats          # inspect the result cache
    python -m repro advise 65536         # G1-G6 advice for one transfer

Repeat runs are served from a content-addressed result cache under
``.repro-cache/`` (disable with ``--no-cache``, relocate with
``REPRO_CACHE_DIR``); ``--jobs``/``REPRO_JOBS`` fans experiments out
over worker processes.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.tables import Table
from repro.exec import ParallelRunner, ResultCache
from repro.experiments import all_experiments, resolve_ids
from repro.guidelines import OffloadAdvisor
from repro.obs import (
    MemoryWatermark,
    MetricsRegistry,
    ResultSink,
    RingTracer,
    Tracer,
    install_metrics,
    install_tracer,
    publish_overhead,
    set_default_hist_backend,
    snapshot_table,
    uninstall_metrics,
    uninstall_tracer,
    write_chrome_trace,
)
from repro.fleet import policy_names, set_default_fleet, set_default_placement
from repro.sim.calendar import set_default_calendar
from repro.traffic.tiers import set_default_tier, set_default_traffic


def _cmd_list(_args) -> int:
    for exp_id in all_experiments():
        print(exp_id)
    return 0


def _default_jobs() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def _cmd_run(args) -> int:
    try:
        targets = resolve_ids(args.experiment)
    except KeyError as err:
        print(err.args[0], file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        if args.trace_buffer > 0:
            # Bounded memory: ring of recent records, full segments
            # spilled to JSONL shards, merged back at export time.
            tracer = RingTracer(capacity=args.trace_buffer)
        else:
            tracer = Tracer()
        install_tracer(tracer)
    set_default_hist_backend(args.hist_backend)
    set_default_calendar(args.calendar)
    set_default_tier(args.tier)
    set_default_traffic(args.traffic)
    set_default_placement(args.placement)
    try:
        set_default_fleet(args.fleet)
    except ValueError as err:
        print(err.args[0], file=sys.stderr)
        return 2
    sink = ResultSink(args.results) if args.results else None
    profiler = None
    if args.profile:
        import cProfile

        # Profiling needs the simulation in *this* process and actually
        # running: worker processes would escape the profiler, cached
        # results would profile nothing but pickle loads.
        if args.jobs != 1:
            print("--profile forces --jobs 1", file=sys.stderr)
        profiler = cProfile.Profile()
    injected = False
    if args.fault_rate is not None:
        from repro.faults import FaultPlan, install_injector

        # Injection is session-wide mutable state, like --profile: run
        # in-process and skip the cache (results no longer match the
        # injection-free fingerprint).
        if args.jobs != 1:
            print("--fault-rate forces --jobs 1", file=sys.stderr)
        install_injector(
            FaultPlan(page_fault_rate=args.fault_rate, seed=args.fault_seed)
        )
        injected = True
    in_process = profiler is not None or injected
    registry = MetricsRegistry()
    install_metrics(registry)
    runner = ParallelRunner(
        jobs=1 if in_process else args.jobs,
        quick=args.quick,
        seed=args.seed,
        cache=None if (args.no_cache or in_process) else ResultCache(),
        trace=tracer is not None,
        sink=sink,
        hist_backend=args.hist_backend,
        fidelity=args.fidelity,
        calendar=args.calendar,
        tier=args.tier,
        traffic=args.traffic,
        fleet=args.fleet,
        placement=args.placement,
    )
    summary_rows = []
    failures = 0
    errors = 0
    watermark = MemoryWatermark().start() if args.metrics else None
    if profiler is not None:
        profiler.enable()
    try:
        for outcome in runner.run_iter(targets):
            exp_id = outcome.exp_id
            if not outcome.ok:
                print(f"[{exp_id} FAILED]", file=sys.stderr)
                print(outcome.error, file=sys.stderr)
                errors += 1
                summary_rows.append((exp_id, 0, 0, outcome.wall, 0, "ERROR"))
                continue
            result = outcome.result
            print(result.render())
            if args.chart and result.series:
                from repro.analysis.ascii_chart import render_experiment_charts

                print()
                print(render_experiment_charts(result))
            if args.metrics:
                print()
                print(snapshot_table(result.metrics, title=f"Metrics — {exp_id}").render())
            suffix = " (cached)" if outcome.cached else ""
            print(f"[{exp_id} finished in {outcome.wall:.1f}s{suffix}]\n")
            held = sum(1 for anchor in result.anchors if anchor.holds)
            status = "pass" if result.anchors_hold else "FAIL"
            if outcome.cached:
                status += " (cached)"
            summary_rows.append(
                (exp_id, held, len(result.anchors), outcome.wall, len(result.metrics), status)
            )
            if not result.anchors_hold:
                failures += 1
    finally:
        if profiler is not None:
            profiler.disable()
        if injected:
            from repro.faults import uninstall_injector

            uninstall_injector()
        uninstall_metrics()
        if tracer is not None:
            uninstall_tracer()
    if profiler is not None:
        import pstats

        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    if watermark is not None or tracer is not None:
        # Self-metering: what did observing this run itself cost?
        overhead = publish_overhead(
            MetricsRegistry(), tracer=tracer, source_registry=registry,
            watermark=watermark,
        )
        if args.metrics:
            print(snapshot_table(overhead.snapshot(), title="Observability overhead").render())
            print()
    if watermark is not None:
        watermark.stop()
    if tracer is not None:
        count = write_chrome_trace(tracer, args.trace)
        spilled = ""
        if tracer.spilled_records:
            spilled = (
                f" ({tracer.spilled_records} spilled across "
                f"{tracer.shard_count} shards, {tracer.spilled_bytes / 1024:.0f} KiB)"
            )
        print(f"wrote {count} trace events to {args.trace} (open in ui.perfetto.dev){spilled}")
        if isinstance(tracer, RingTracer):
            tracer.cleanup()
    if sink is not None:
        summary = sink.finalize()
        print(
            f"streamed {summary['lines']} result lines to {args.results} "
            f"({summary['series']} series, {summary['anchors_held']}/{summary['anchors']} "
            f"anchors); summary at {args.results}.summary.json"
        )
    if len(targets) > 1:
        table = Table(
            "Run summary",
            ["Experiment", "Anchors", "Status", "Wall (s)", "Metrics"],
        )
        for exp_id, held, total, wall, n_metrics, status in summary_rows:
            table.add_row(exp_id, f"{held}/{total}", status, f"{wall:.1f}", n_metrics)
        print(table.render())
    if failures:
        print(f"{failures} experiment(s) missed paper anchors", file=sys.stderr)
    if errors:
        print(f"{errors} experiment(s) raised", file=sys.stderr)
    return 1 if failures or errors else 0


def _cmd_cache(args) -> int:
    cache = ResultCache()
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} from {cache.root}")
        return 0
    stats = cache.stats()
    print(f"cache root: {stats.root}")
    print(f"entries:    {stats.entries}")
    print(f"size:       {stats.total_bytes / 1024:.1f} KiB")
    print(f"saved wall: {stats.saved_wall_s:.1f}s of simulation")
    if stats.unreadable:
        print(f"unreadable: {stats.unreadable}")
    if stats.by_experiment:
        table = Table("Entries by experiment", ["Experiment", "Entries"])
        for exp_id in sorted(stats.by_experiment):
            table.add_row(exp_id, stats.by_experiment[exp_id])
        print(table.render())
    return 0


def _cmd_advise(args) -> int:
    advisor = OffloadAdvisor()
    recommendation = advisor.recommend(
        args.size,
        asynchronous_possible=not args.sync_only,
        contiguous=not args.scattered,
        consumer_reads_soon=args.hot,
        pollution_sensitive_corunners=args.pollution_sensitive,
        submitting_threads=args.threads,
        available_wqs=args.wqs,
    )
    verdict = "OFFLOAD to DSA" if recommendation.use_dsa else "keep on the CPU"
    print(f"{args.size} bytes -> {verdict}")
    if recommendation.use_dsa:
        print(f"  mode:          {'async' if recommendation.asynchronous else 'sync'}")
        print(f"  batch size:    {recommendation.batch_size}")
        print(f"  cache control: {recommendation.cache_control}")
        print(f"  WQ mode:       {recommendation.wq_mode.value}")
    for reason in recommendation.reasons:
        print(f"  - {reason}")
    if recommendation.guidelines:
        print(f"  guidelines applied: {', '.join(sorted(recommendation.guidelines))}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction harness for the ASPLOS'24 DSA paper",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser(
        "run", help="run experiments: one id, a comma-separated list, or 'all'"
    )
    run_parser.add_argument("experiment", help="'all', one id, or e.g. fig2,fig5,table1")
    run_parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    run_parser.add_argument("--chart", action="store_true", help="ASCII plots of the series")
    run_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=_default_jobs(),
        metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1)",
    )
    run_parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="SEED",
        help="run seed for every experiment's default RNG streams",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the result cache",
    )
    run_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="export a Chrome/Perfetto trace.json of the run to PATH "
        "(bypasses cache reads)",
    )
    run_parser.add_argument(
        "--trace-buffer",
        type=int,
        default=0,
        metavar="N",
        help="bound trace memory to a ring of N records; full segments "
        "spill to JSONL shards and are merged at export (0 = unbounded "
        "in-memory tracer, the default); see docs/OBSERVABILITY.md",
    )
    run_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics-registry snapshot after each experiment "
        "plus a final observability-overhead table",
    )
    run_parser.add_argument(
        "--hist-backend",
        choices=["auto", "exact", "streaming"],
        default="auto",
        help="histogram metric backend: exact (store samples), streaming "
        "(fixed log buckets, <=1%% percentile error, O(1) memory), or "
        "auto (exact until 65536 samples, then streaming; the default)",
    )
    run_parser.add_argument(
        "--fidelity",
        choices=["des", "auto", "analytical"],
        default="des",
        help="simulation fidelity tier: des (full per-event simulation, "
        "byte-identical default — all anchors are validated here), auto "
        "(batch detected steady-state regions analytically, cross-validated "
        "within a declared 5%% tolerance, DES fallback at transients), or "
        "analytical (loose gates, best-effort accuracy); see "
        "docs/PERFORMANCE.md section 6",
    )
    run_parser.add_argument(
        "--calendar",
        choices=["heap", "wheel", "auto"],
        default="heap",
        help="event-calendar backend: heap (binary heap, byte-identical "
        "default), wheel (hierarchical timing wheel, O(1) amortized — for "
        "open-loop runs with millions of pending timers), or auto (heap "
        "until 65536 pending entries, then promote to a wheel); both pop "
        "in the identical order, see docs/PERFORMANCE.md section 7",
    )
    run_parser.add_argument(
        "--tier",
        choices=["small", "medium", "large"],
        default="small",
        help="scale tier for the traffic-* experiments: small (~10K "
        "requests, tier-1 CI), medium (~200K), or large (~2M, the nightly "
        "constant-memory soak); see docs/TRAFFIC.md for expected timings",
    )
    run_parser.add_argument(
        "--traffic",
        choices=["default", "poisson", "bursty", "diurnal"],
        default="default",
        help="override every traffic tenant's arrival process (default: "
        "each tenant's declared kind); see docs/TRAFFIC.md",
    )
    run_parser.add_argument(
        "--fleet",
        metavar="SxD",
        default=None,
        help="fleet topology for the traffic experiments: SOCKETSxDEVICES "
        "(e.g. 2x4 = 2 sockets with 4 DSA instances each); requests are "
        "placed across the fleet by --placement and disabled devices fail "
        "over (default: the historical single-device 1x1 layout); see "
        "docs/ARCHITECTURE.md",
    )
    run_parser.add_argument(
        "--placement",
        choices=sorted(policy_names()),
        default="round-robin",
        help="fleet placement policy: round-robin (topology-blind), "
        "numa-local (prefer the submitter's socket, no UPI crossing), or "
        "least-loaded (fewest bytes in flight); only meaningful with "
        "--fleet",
    )
    run_parser.add_argument(
        "--results",
        metavar="PATH",
        help="stream completed sweep series, anchors, and per-experiment "
        "outcomes to a JSONL file as they finish; writes PATH.summary.json "
        "at the end",
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run in-process (forces --jobs 1 and --no-cache); "
        "prints the top 25 functions by cumulative time",
    )
    run_parser.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="P",
        help="inject page faults on a fraction P of device page translations "
        "(forces --jobs 1 and --no-cache); see docs/ARCHITECTURE.md",
    )
    run_parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed for the injection streams (default: the run seed)",
    )
    run_parser.set_defaults(func=_cmd_run)

    cache_parser = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_parser.add_argument(
        "cache_command",
        choices=["stats", "clear"],
        help="stats: summarize entries; clear: delete every entry",
    )
    cache_parser.set_defaults(func=_cmd_cache)

    advise = sub.add_parser("advise", help="G1-G6 advice for a transfer size")
    advise.add_argument("size", type=int)
    advise.add_argument("--sync-only", action="store_true")
    advise.add_argument("--scattered", action="store_true")
    advise.add_argument("--hot", action="store_true", help="consumer reads the data soon")
    advise.add_argument("--pollution-sensitive", action="store_true")
    advise.add_argument("--threads", type=int, default=1)
    advise.add_argument("--wqs", type=int, default=1)
    advise.set_defaults(func=_cmd_advise)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
