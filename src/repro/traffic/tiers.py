"""Scale tiers for the traffic serving mode (SCALE_THRESHOLDS style).

The traffic experiments are the first part of the reproduction whose
interesting regime is *production scale* — hundreds to thousands of
tenants, millions of requests — which no CI budget can afford on every
push.  Instead of quietly shrinking the workload, the scale is an
explicit, documented contract: a small tier that anchors in tier-1 CI,
a medium tier for local calibration, and a large tier a nightly job
runs at the full ~2M-request scale.  ``docs/TRAFFIC.md`` carries the
same table with expected timings.

The active tier follows the install pattern of
:mod:`repro.sim.fidelity` / :func:`repro.sim.calendar.set_default_calendar`:
the CLI installs a process-wide default (``--tier``), the parallel
runner re-installs it in every worker call, and experiments read
:func:`active_tier` — no threading through ``run(quick=...)``
signatures.  The same module holds the ``--traffic`` arrival-process
override (force every tenant to Poisson/bursty/diurnal arrivals) since
the two flags travel together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "ScaleTier",
    "TIERS",
    "TRAFFIC_MODES",
    "tier_names",
    "set_default_tier",
    "default_tier",
    "active_tier",
    "set_default_traffic",
    "default_traffic",
]


@dataclass(frozen=True)
class ScaleTier:
    """One row of the scale-threshold table.

    ``requests`` is the total arrival budget *per traffic experiment*
    (split across that experiment's sweep points); ``tenants`` is the
    tenant population the profiles scale to.  ``expected_wall_s`` is
    the documented per-experiment wall-clock guidance the nightly job's
    timeout is derived from — a contract, not a benchmark result.
    """

    name: str
    requests: int
    tenants: int
    expected_wall_s: float
    use_case: str

    def validate(self) -> None:
        if self.requests < 1 or self.tenants < 1:
            raise ValueError(f"tier {self.name}: requests and tenants must be >= 1")


#: The scale-threshold table.  Keep in sync with docs/TRAFFIC.md.
TIERS: Dict[str, ScaleTier] = {
    "small": ScaleTier(
        name="small",
        requests=10_000,
        tenants=128,
        expected_wall_s=30.0,
        use_case="tier-1 CI: anchor-checked on every push",
    ),
    "medium": ScaleTier(
        name="medium",
        requests=200_000,
        tenants=512,
        expected_wall_s=300.0,
        use_case="local calibration / memory-envelope baseline",
    ),
    "large": ScaleTier(
        name="large",
        requests=2_000_000,
        tenants=2048,
        expected_wall_s=3000.0,
        use_case="nightly job: production-scale tails at constant memory",
    ),
}

#: ``--traffic`` override values: ``default`` keeps each tenant's own
#: declared arrival process; the rest force one process family on all.
TRAFFIC_MODES: Tuple[str, ...] = ("default", "poisson", "bursty", "diurnal")

_default_tier = "small"
_default_traffic = "default"


def tier_names() -> Tuple[str, ...]:
    return tuple(TIERS)


def set_default_tier(name: str) -> None:
    """Install the process-wide scale tier (the CLI's ``--tier``)."""
    global _default_tier
    if name not in TIERS:
        raise ValueError(f"unknown scale tier {name!r}; choose from {sorted(TIERS)}")
    _default_tier = name


def default_tier() -> str:
    """The installed tier name."""
    return _default_tier


def active_tier() -> ScaleTier:
    """The installed tier's row of the table."""
    return TIERS[_default_tier]


def set_default_traffic(mode: str) -> None:
    """Install the process-wide arrival override (the CLI's ``--traffic``)."""
    global _default_traffic
    if mode not in TRAFFIC_MODES:
        raise ValueError(
            f"unknown traffic mode {mode!r}; choose from {list(TRAFFIC_MODES)}"
        )
    _default_traffic = mode


def default_traffic() -> str:
    """The installed arrival override (``"default"`` = per-tenant)."""
    return _default_traffic
