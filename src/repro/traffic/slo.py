"""Per-tenant SLO accounting at constant memory.

The serving mode's deliverable is SLO-grade numbers — per-tenant
p50/p99/p999 latency, goodput, retry counts, drops, and SLO-violation
windows — at a scale (~2M requests, thousands of tenants) where keeping
raw samples is exactly the unbounded accumulation the observability
stack was built to avoid.  So every latency lands in a per-tenant
:class:`~repro.obs.streaming.StreamingHistogram` (≤1% relative
percentile error, O(buckets) memory) plus a per-window histogram that
is *replaced* each window — total footprint O(tenants × buckets),
independent of request count.

Window semantics: time is cut into fixed ``window_ns`` windows per
tenant.  A window is **evaluated** only if the tenant offered or
completed anything in it (idle windows don't count against an idle
tenant).  An evaluated window **violates** the tenant's declared
:class:`~repro.traffic.profile.Slo` when at least
:data:`STARVATION_MIN_OFFERED` requests were offered and none completed
(starvation), or a declared percentile target was exceeded.
Violated windows are streamed through the installed
:class:`~repro.obs.ResultSink` as ``traffic_window`` lines the moment
they close; per-tenant summaries go out as ``traffic_tenant`` lines at
:meth:`SloAccountant.finalize`, which also publishes the aggregate
``traffic.*`` metric family (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.sink import installed_sink
from repro.obs.streaming import StreamingHistogram
from repro.traffic.profile import TenantSpec

__all__ = ["SloAccountant", "TenantAccount", "STARVATION_MIN_OFFERED"]

#: Starvation rule floor: a window counts as starved only when at least
#: this many requests were offered and *none* completed.  At low
#: per-tenant rates a window routinely holds one arrival whose
#: completion lands in the next window — that is pipelining, not
#: starvation, and must not read as an SLO violation.
STARVATION_MIN_OFFERED = 4


class TenantAccount:
    """Running totals and histograms for one tenant."""

    __slots__ = (
        "spec",
        "hist",
        "offered",
        "completed",
        "dropped",
        "retries",
        "bytes_completed",
        "window_start",
        "window_hist",
        "window_offered",
        "window_completed",
        "windows",
        "violation_windows",
        "shadow_samples",
    )

    def __init__(self, spec: TenantSpec, shadow: bool):
        self.spec = spec
        self.hist = StreamingHistogram()
        self.offered = 0
        self.completed = 0
        self.dropped = 0
        self.retries = 0
        self.bytes_completed = 0
        self.window_start = 0.0
        self.window_hist = StreamingHistogram()
        self.window_offered = 0
        self.window_completed = 0
        self.windows = 0
        self.violation_windows = 0
        #: Exact raw latencies, kept only in ``shadow_exact`` mode so a
        #: bench/test can bound the streaming percentile error.
        self.shadow_samples: Optional[List[float]] = [] if shadow else None

    def percentile(self, pct: float) -> float:
        return self.hist.percentile(pct)

    @property
    def goodput_fraction(self) -> float:
        """Completed share of offered requests (1.0 when nothing offered)."""
        return self.completed / self.offered if self.offered else 1.0


class SloAccountant:
    """Streams per-tenant latency/SLO accounting through constant memory."""

    def __init__(
        self,
        window_ns: float = 100_000.0,
        shadow_exact: bool = False,
        sink_tag: str = "traffic",
    ):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.shadow_exact = shadow_exact
        self.sink_tag = sink_tag
        self._accounts: Dict[str, TenantAccount] = {}
        self._finalized = False

    # -- registration ----------------------------------------------------
    def register(self, spec: TenantSpec) -> TenantAccount:
        if spec.name in self._accounts:
            raise ValueError(f"tenant {spec.name!r} already registered")
        account = TenantAccount(spec, self.shadow_exact)
        self._accounts[spec.name] = account
        return account

    def account(self, name: str) -> TenantAccount:
        return self._accounts[name]

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, name: str) -> bool:
        return name in self._accounts

    # -- recording -------------------------------------------------------
    def offered(self, name: str, now: float) -> None:
        account = self._accounts[name]
        self._roll(account, now)
        account.offered += 1
        account.window_offered += 1

    def dropped(self, name: str, now: float, retries: int = 0) -> None:
        """A shed request: retry budget exhausted or the backlog full."""
        account = self._accounts[name]
        self._roll(account, now)
        account.dropped += 1
        account.retries += retries

    def completed(
        self, name: str, now: float, latency_ns: float, nbytes: int, retries: int = 0
    ) -> None:
        account = self._accounts[name]
        self._roll(account, now)
        account.completed += 1
        account.retries += retries
        account.bytes_completed += nbytes
        account.window_completed += 1
        account.hist.add(latency_ns)
        account.window_hist.add(latency_ns)
        if account.shadow_samples is not None:
            account.shadow_samples.append(latency_ns)

    # -- windows ---------------------------------------------------------
    def _roll(self, account: TenantAccount, now: float) -> None:
        """Close every window that ended before ``now``.

        Only windows with activity are evaluated; runs of idle windows
        are skipped in O(1) by jumping the window start forward.
        """
        window = self.window_ns
        if now < account.window_start + window:
            return
        if account.window_offered or account.window_completed:
            self._evaluate(account)
        # Jump directly to the window containing ``now`` — constant
        # work even after arbitrarily long idle stretches.
        elapsed = now - account.window_start
        account.window_start += int(elapsed / window) * window

    def _evaluate(self, account: TenantAccount) -> None:
        account.windows += 1
        violated = self._violates(account)
        if violated:
            account.violation_windows += 1
            sink = installed_sink()
            if sink is not None:
                spec = account.spec
                window_hist = account.window_hist
                p99 = window_hist.percentile(99.0) if len(window_hist) else None
                sink.write(
                    "traffic_window",
                    exp=self.sink_tag,
                    tenant=spec.name,
                    cohort=spec.cohort,
                    start_ns=round(account.window_start, 1),
                    offered=account.window_offered,
                    completed=account.window_completed,
                    p99_ns=None if p99 is None else round(p99, 1),
                    violated=True,
                )
        account.window_hist = StreamingHistogram()
        account.window_offered = 0
        account.window_completed = 0

    def _violates(self, account: TenantAccount) -> bool:
        slo = account.spec.slo
        if slo is None:
            return False
        if (
            account.window_offered >= STARVATION_MIN_OFFERED
            and not account.window_completed
        ):
            return True  # starved outright
        hist = account.window_hist
        if not len(hist):
            return False
        if slo.p99_ns is not None and hist.percentile(99.0) > slo.p99_ns:
            return True
        if slo.p999_ns is not None and hist.percentile(99.9) > slo.p999_ns:
            return True
        return False

    # -- aggregation -----------------------------------------------------
    def cohorts(self) -> List[str]:
        seen: List[str] = []
        for account in self._accounts.values():
            if account.spec.cohort not in seen:
                seen.append(account.spec.cohort)
        return seen

    def cohort_hist(self, cohort: str) -> StreamingHistogram:
        """Exact bucket-wise merge of the cohort's tenant histograms."""
        merged = StreamingHistogram()
        for account in self._accounts.values():
            if account.spec.cohort == cohort:
                merged.merge(account.hist)
        return merged

    def cohort_percentile(self, cohort: str, pct: float) -> float:
        return self.cohort_hist(cohort).percentile(pct)

    def cohort_stats(self, cohort: str) -> Dict[str, float]:
        stats = {
            "offered": 0,
            "completed": 0,
            "dropped": 0,
            "retries": 0,
            "bytes_completed": 0,
            "windows": 0,
            "violation_windows": 0,
        }
        for account in self._accounts.values():
            if account.spec.cohort != cohort:
                continue
            stats["offered"] += account.offered
            stats["completed"] += account.completed
            stats["dropped"] += account.dropped
            stats["retries"] += account.retries
            stats["bytes_completed"] += account.bytes_completed
            stats["windows"] += account.windows
            stats["violation_windows"] += account.violation_windows
        return stats

    def totals(self) -> Dict[str, int]:
        totals = {
            "offered": 0,
            "completed": 0,
            "dropped": 0,
            "retries": 0,
            "bytes_completed": 0,
            "windows": 0,
            "violation_windows": 0,
        }
        for cohort in self.cohorts():
            for key, value in self.cohort_stats(cohort).items():
                totals[key] += value
        return totals

    # -- finalize --------------------------------------------------------
    def finalize(self, now: float, registry=None) -> Dict[str, int]:
        """Close open windows, publish ``traffic.*`` metrics, emit summaries.

        Idempotent-ish by refusal: a second call raises, because window
        evaluation is destructive (per-window histograms reset).
        Returns the aggregate totals.
        """
        if self._finalized:
            raise RuntimeError("SloAccountant.finalize called twice")
        self._finalized = True
        sink = installed_sink()
        for account in self._accounts.values():
            if account.window_offered or account.window_completed:
                self._evaluate(account)
            if sink is not None:
                spec = account.spec
                hist = account.hist
                sink.write(
                    "traffic_tenant",
                    exp=self.sink_tag,
                    tenant=spec.name,
                    cohort=spec.cohort,
                    offered=account.offered,
                    completed=account.completed,
                    dropped=account.dropped,
                    retries=account.retries,
                    bytes=account.bytes_completed,
                    p50_ns=round(hist.percentile(50.0), 1) if len(hist) else None,
                    p99_ns=round(hist.percentile(99.0), 1) if len(hist) else None,
                    p999_ns=round(hist.percentile(99.9), 1) if len(hist) else None,
                    windows=account.windows,
                    violation_windows=account.violation_windows,
                )
        totals = self.totals()
        if registry is not None:
            registry.counter("traffic.offered").add(totals["offered"])
            registry.counter("traffic.completed").add(totals["completed"])
            registry.counter("traffic.dropped").add(totals["dropped"])
            registry.counter("traffic.enqcmd_retries").add(totals["retries"])
            registry.counter("traffic.bytes_completed").add(totals["bytes_completed"])
            registry.counter("traffic.windows").add(totals["windows"])
            registry.counter("traffic.violation_windows").add(totals["violation_windows"])
            for cohort in self.cohorts():
                stats = self.cohort_stats(cohort)
                prefix = f"traffic.cohort.{cohort}"
                registry.counter(f"{prefix}.offered").add(stats["offered"])
                registry.counter(f"{prefix}.completed").add(stats["completed"])
                registry.counter(f"{prefix}.dropped").add(stats["dropped"])
                registry.counter(f"{prefix}.violation_windows").add(
                    stats["violation_windows"]
                )
        return totals
