"""repro.traffic — open-loop multi-tenant serving mode.

Declares tenants (:mod:`~repro.traffic.profile`), drives them over SWQs
and a CPU pool (:mod:`~repro.traffic.loadgen`), accounts per-tenant
SLOs at constant memory (:mod:`~repro.traffic.slo`), and scales runs
through the small/medium/large tier table (:mod:`~repro.traffic.tiers`).
See docs/TRAFFIC.md.
"""

from repro.traffic.loadgen import CpuServicePool, LoadGenerator, drive_profile
from repro.traffic.profile import (
    SIZE_STREAM_BASE,
    SizeDist,
    Slo,
    TenantSpec,
    TrafficProfile,
    cpu_capacity,
    dsa_capacity,
    make_tenants,
)
from repro.traffic.slo import SloAccountant, TenantAccount
from repro.traffic.tiers import (
    TIERS,
    TRAFFIC_MODES,
    ScaleTier,
    active_tier,
    default_tier,
    default_traffic,
    set_default_tier,
    set_default_traffic,
    tier_names,
)

__all__ = [
    "CpuServicePool",
    "LoadGenerator",
    "drive_profile",
    "SIZE_STREAM_BASE",
    "SizeDist",
    "Slo",
    "TenantSpec",
    "TrafficProfile",
    "cpu_capacity",
    "dsa_capacity",
    "make_tenants",
    "SloAccountant",
    "TenantAccount",
    "TIERS",
    "TRAFFIC_MODES",
    "ScaleTier",
    "active_tier",
    "default_tier",
    "default_traffic",
    "set_default_tier",
    "set_default_traffic",
    "tier_names",
]
