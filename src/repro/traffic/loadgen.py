"""Open-loop multi-tenant load generator over DSA SWQs + a CPU pool.

The serving mode the ROADMAP calls for: hundreds to thousands of
:class:`~repro.traffic.profile.TenantSpec` tenants, each driven by its
own arrival process through :func:`repro.sim.arrivals.open_loop`,
multiplexed onto shared work queues with bounded ENQCMD retry/backoff
and explicit shed accounting — nothing blocks an open-loop arrival
stream, requests that exhaust their retry budget are *dropped* and
counted, exactly like an overloaded server.

Tenants targeting ``"cpu"`` instead run on a :class:`CpuServicePool`:
``cpu_cores`` workers serving the calibrated software-kernel times from
a bounded backlog (arrivals beyond ``cpu_queue_limit`` shed).  That
gives the crossover experiment a CPU completion path with the same
open-loop drop semantics as the device path.

Memory discipline matches the rest of the repo: per-tenant buffers are
pre-allocated at the size distribution's ceiling, descriptors recycle
through a per-tenant :class:`~repro.dsa.descriptor.DescriptorPool`, and
all accounting streams through the
:class:`~repro.traffic.slo.SloAccountant` — a 2M-request run holds no
per-request state beyond what is in flight.

Determinism: tenant ``i`` draws arrivals from derived stream ``i`` and
sizes from stream ``SIZE_STREAM_BASE + i``, both seeded from the
installed run seed, so serial and ``--jobs N`` runs (and any request
batching) are draw-for-draw identical.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.cpu.swlib import SoftwareKernels
from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import DescriptorPool, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.fleet.policy import make_policy
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.topology import FleetSpec, active_fleet
from repro.mem.address import AddressSpace
from repro.platform import Platform, fleet_platform, spr_platform
from repro.sim.arrivals import open_loop
from repro.sim.engine import Environment, Event, Process
from repro.traffic.profile import TenantSpec, TrafficProfile
from repro.traffic.slo import SloAccountant

__all__ = ["CpuServicePool", "LoadGenerator", "drive_profile"]

#: Per-tenant descriptor free-list depth; beyond this, completions in
#: flight simply allocate (the pool is a fast path, not a correctness
#: bound).
TENANT_POOL_LIMIT = 64


class CpuServicePool:
    """Bounded-backlog pool of CPU workers serving software kernels.

    ``try_submit`` is the open-loop admission point: it returns a
    completion :class:`~repro.sim.engine.Event` or ``None`` when the
    backlog is at ``queue_limit`` (the request is shed — the caller
    accounts the drop).  Workers serve FIFO, each request occupying one
    worker for the calibrated ``kernels.time(opcode, size)``.
    """

    def __init__(
        self,
        env: Environment,
        kernels: SoftwareKernels,
        cores: int = 2,
        queue_limit: int = 256,
        name: str = "cpu_pool",
    ):
        if cores < 1:
            raise ValueError(f"need at least one worker core, got {cores}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.env = env
        self.kernels = kernels
        self.cores = cores
        self.queue_limit = queue_limit
        self.name = name
        self._queue: Deque[Tuple[float, Event]] = deque()
        self._idle: List[Event] = []
        self.admitted = 0
        self.shed = 0
        self.served = 0
        self._m_shed = env.metrics.counter(f"{name}.shed")
        self._m_depth = env.metrics.gauge(f"{name}.depth")
        for _ in range(cores):
            env.process(self._worker(), name=f"{name}.worker")

    @property
    def depth(self) -> int:
        return len(self._queue)

    def try_submit(self, opcode: Opcode, size: int, in_llc: bool = False) -> Optional[Event]:
        """Admit one request, or shed it (``None``) when the backlog is full."""
        if len(self._queue) >= self.queue_limit:
            self.shed += 1
            self._m_shed.add()
            return None
        done = Event(self.env)
        self._queue.append((self.kernels.time(opcode, size, in_llc=in_llc), done))
        self.admitted += 1
        self._m_depth.update(self.env.now, len(self._queue))
        if self._idle:
            self._idle.pop().succeed(None)
        return done

    def _worker(self):
        env = self.env
        while True:
            while not self._queue:
                # Park on a fresh one-shot event; try_submit wakes one
                # parked worker per admission.  A run ends cleanly with
                # workers parked (untriggered events hold no calendar
                # entries).
                wake = Event(env)
                self._idle.append(wake)
                yield wake
            service_ns, done = self._queue.popleft()
            self._m_depth.update(env.now, len(self._queue))
            yield env.timeout(service_ns)
            self.served += 1
            done.succeed(env.now)


class _TenantState:
    """Runtime companion of one TenantSpec (buffers, pool, samplers)."""

    __slots__ = ("spec", "index", "sizes", "pool", "src", "dst", "device", "wq", "socket")

    def __init__(self, spec: TenantSpec, index: int):
        self.spec = spec
        self.index = index
        self.sizes = spec.size_sampler(index)
        self.pool = DescriptorPool(limit=TENANT_POOL_LIMIT)
        self.src = None
        self.dst = None
        self.device = None
        self.wq = None
        #: Submitter socket under fleet placement (NUMA-aware policies).
        self.socket = 0


class LoadGenerator:
    """Drives one :class:`TrafficProfile` through a platform, open loop.

    Per-tenant request counts are apportioned from ``requests`` by the
    largest-remainder rule over tenant rates, so the total is exactly
    ``requests`` and the split is deterministic.  Call :meth:`start`
    (or :func:`drive_profile`) and then run the environment; every
    request ends in exactly one of the accountant's ``completed`` or
    ``dropped`` ledgers.
    """

    def __init__(
        self,
        platform: Platform,
        profile: TrafficProfile,
        requests: int,
        accountant: Optional[SloAccountant] = None,
        arrival_override: Optional[str] = None,
        fleet: Optional[FleetSpec] = None,
    ):
        profile.validate()
        if requests < 1:
            raise ValueError(f"requests must be >= 1, got {requests}")
        self.platform = platform
        self.profile = profile
        self.requests = requests
        self.arrival_override = arrival_override
        self.fleet = fleet
        # Explicit None test: a fresh SloAccountant has len() == 0 and is
        # falsy, so ``accountant or ...`` would silently discard it.
        if accountant is None:
            accountant = SloAccountant(window_ns=profile.window_ns)
        self.accountant = accountant
        self.space = AddressSpace()
        self.cpu_pool: Optional[CpuServicePool] = None
        self._states: List[_TenantState] = []
        self._drivers: List[Process] = []
        self._finalized_totals: Optional[Dict[str, int]] = None

        env = platform.env
        needs_cpu = any(t.targets_cpu for t in profile.tenants)
        if needs_cpu:
            self.cpu_pool = CpuServicePool(
                env,
                platform.kernels,
                cores=profile.cpu_cores,
                queue_limit=profile.cpu_queue_limit,
                name="traffic.cpu_pool",
            )
        self.scheduler: Optional[FleetScheduler] = None
        fleet_sockets = 1
        if fleet is not None and not fleet.is_default:
            # Fleet placement: open one SWQ portal per device and let the
            # placement policy (not the tenant's static ``target``) route
            # every request.  Tenants spread round-robin across sockets
            # so NUMA-aware policies see submitters on every socket.
            fleet_sockets = platform.memsys.topology.sockets
            portals = [
                platform.open_portal(name, 0, self.space)
                for name in sorted(platform.driver.devices)
            ]
            for portal in portals:
                if portal.device.wq(portal.wq_id).mode is not WqMode.SHARED:
                    raise ValueError(
                        f"fleet device {portal.device.name} WQ {portal.wq_id} is "
                        "dedicated; fleet traffic placement needs shared WQs"
                    )
            self.scheduler = FleetScheduler(
                platform.driver, portals, policy=make_policy(fleet.placement)
            )
        for index, spec in enumerate(profile.tenants):
            state = _TenantState(spec, index)
            self.accountant.register(spec)
            if not spec.targets_cpu:
                if self.scheduler is not None and spec.qos_priority is None:
                    # Fleet-placed tenant: the scheduler routes every
                    # request; no static portal.  QoS-pinned tenants fall
                    # through and keep their declared target/WQ — a
                    # priority contract is device-local by construction.
                    state.socket = index % fleet_sockets
                    bound = spec.sizes.resolved_max
                    state.src = self.space.allocate(bound, node=state.socket)
                    state.dst = self.space.allocate(bound, node=state.socket)
                    self._states.append(state)
                    continue
                portal = platform.open_portal(spec.target, spec.wq_id, self.space)
                state.device = portal.device
                state.wq = portal.device.wq(spec.wq_id)
                if state.wq.mode is not WqMode.SHARED:
                    raise ValueError(
                        f"tenant {spec.name}: target {spec.target} WQ {spec.wq_id} is "
                        "dedicated; open-loop multi-tenant traffic needs a shared WQ"
                    )
                if (
                    spec.qos_priority is not None
                    and state.wq.priority != spec.qos_priority
                ):
                    raise ValueError(
                        f"tenant {spec.name}: declared qos_priority "
                        f"{spec.qos_priority} but {spec.target} WQ {spec.wq_id} is "
                        f"configured at priority {state.wq.priority}"
                    )
                bound = spec.sizes.resolved_max
                state.src = self.space.allocate(bound)
                state.dst = self.space.allocate(bound)
            self._states.append(state)

    # -- request apportionment -------------------------------------------
    def request_counts(self) -> List[int]:
        """Largest-remainder split of ``requests`` proportional to rate."""
        tenants = self.profile.tenants
        total_rate = self.profile.total_rate
        raw = [self.requests * t.rate / total_rate for t in tenants]
        counts = [int(x) for x in raw]
        shortfall = self.requests - sum(counts)
        by_remainder = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for i in by_remainder[:shortfall]:
            counts[i] += 1
        return counts

    # -- lifecycle --------------------------------------------------------
    def start(self) -> List[Process]:
        """Launch one open-loop driver per tenant; returns the drivers."""
        if self._drivers:
            raise RuntimeError("LoadGenerator.start called twice")
        env = self.platform.env
        for state, count in zip(self._states, self.request_counts()):
            if count == 0:
                continue
            arrivals = state.spec.arrivals(
                state.index, override=self.arrival_override
            )
            handler = self._handler(state)
            self._drivers.append(
                open_loop(env, arrivals, handler, count=count)
            )
        return self._drivers

    def _handler(self, state: _TenantState):
        env = self.platform.env
        if state.spec.targets_cpu:
            def on_arrival(index: int, now: float) -> None:
                self._cpu_arrival(state, now)
        else:
            def on_arrival(index: int, now: float) -> None:
                env.process(
                    self._dsa_request(state, now), name=f"req.{state.spec.name}"
                )
        return on_arrival

    # -- CPU completion path ----------------------------------------------
    def _cpu_arrival(self, state: _TenantState, now: float) -> None:
        spec = state.spec
        acct = self.accountant
        acct.offered(spec.name, now)
        size = state.sizes.next()
        done = self.cpu_pool.try_submit(spec.opcode, size)
        if done is None:
            acct.dropped(spec.name, now)
            return
        self.platform.env.process(
            self._cpu_wait(spec, now, size, done), name=f"req.{spec.name}"
        )

    def _cpu_wait(self, spec: TenantSpec, arrived: float, size: int, done: Event):
        finished = yield done
        self.accountant.completed(spec.name, finished, finished - arrived, size)

    # -- DSA completion path ----------------------------------------------
    def _dsa_request(self, state: _TenantState, arrived: float):
        env = self.platform.env
        spec = state.spec
        acct = self.accountant
        acct.offered(spec.name, arrived)
        size = state.sizes.next()
        descriptor = state.pool.acquire()
        if descriptor is None:
            descriptor = WorkDescriptor(opcode=spec.opcode)
        descriptor.opcode = spec.opcode
        descriptor.pasid = self.space.pasid
        descriptor.src = state.src.va
        descriptor.dst = state.dst.va
        descriptor.size = size
        attempts = 0
        failed_device: Optional[str] = None
        while True:
            if self.scheduler is not None and state.device is None:
                try:
                    portal = self.scheduler.select(
                        socket=state.socket,
                        exclude=(failed_device,) if failed_device else (),
                    )
                except RuntimeError:
                    # Fleet-wide device loss: nothing live to place on.
                    env.metrics.counter("traffic.fleet.no_live_portal").add()
                    if failed_device is not None:
                        self.scheduler.record_failover(failed_device, None)
                    acct.dropped(spec.name, env.now, retries=attempts)
                    state.pool.release(descriptor)
                    return
                if failed_device is not None:
                    self.scheduler.record_failover(
                        failed_device, portal.device.name
                    )
                    env.metrics.counter("traffic.fleet.reroutes").add()
                    failed_device = None
                device = portal.device
                wq_id = portal.wq_id
            else:
                device = state.device
                wq_id = spec.wq_id
            wq = device.wq(wq_id)
            enqcmd_ns = device.timing.enqcmd_ns
            while True:
                # Each attempt pays the full non-posted ENQCMD round trip.
                yield env.timeout(enqcmd_ns)
                if device.submit(descriptor, wq_id, source=spec.name):
                    break
                attempts += 1
                if attempts > spec.max_retries:
                    # Retry budget exhausted: shed the request.  The retries
                    # still hit the WQ's attribution counters — congestion
                    # must not vanish from the metrics when it sheds load.
                    wq.record_retries(attempts, source=spec.name)
                    acct.dropped(spec.name, env.now, retries=attempts)
                    state.pool.release(descriptor)
                    return
                yield env.timeout(
                    min(
                        spec.backoff_base_ns * (2.0 ** (attempts - 1)),
                        spec.backoff_cap_ns,
                    )
                )
            if attempts:
                wq.record_retries(attempts, source=spec.name)
            yield descriptor.completion_event
            status = descriptor.completion.status
            if status.is_success:
                acct.completed(
                    spec.name, env.now, env.now - arrived, size, retries=attempts
                )
                state.pool.release(descriptor)
                return
            # The device failed the request (DEVICE_DISABLED from a
            # driver disable or reset window).  Under fleet placement a
            # disabled device triggers failover: re-place on a survivor
            # within the tenant's retry budget.  Without a scheduler
            # there is nowhere else to go — the request is dropped, not
            # silently counted as completed.
            attempts += 1
            if (
                self.scheduler is None
                or state.device is not None
                or status is not StatusCode.DEVICE_DISABLED
                or attempts > spec.max_retries
            ):
                acct.dropped(spec.name, env.now, retries=attempts)
                state.pool.release(descriptor)
                return
            failed_device = device.name
            # Scrub the consumed completion so resubmission gets a fresh
            # completion event on the surviving device.
            descriptor.completion_event = None
            descriptor.completion.status = StatusCode.NONE
            descriptor.completion.bytes_completed = 0

    # -- results ----------------------------------------------------------
    def finalize(self) -> Dict[str, int]:
        """Close SLO windows and publish ``traffic.*`` metrics (idempotent)."""
        if self._finalized_totals is None:
            self._finalized_totals = self.accountant.finalize(
                self.platform.env.now, self.platform.env.metrics
            )
        return self._finalized_totals


def drive_profile(
    profile: TrafficProfile,
    requests: int,
    device_config=None,
    timing=None,
    n_devices: int = 1,
    arrival_override: Optional[str] = None,
    shadow_exact: bool = False,
    fleet: Optional[FleetSpec] = None,
) -> Tuple[LoadGenerator, Dict[str, int]]:
    """Build a platform, run ``profile`` to completion, finalize accounts.

    The one-call harness the experiments and benches use: returns the
    generator (for accountant/percentile queries) and the finalized
    totals.  Conservation is asserted here — every offered request must
    land in exactly one of completed/dropped.  The default device layout
    is one 128-entry SWQ fed by 4 engines (multi-tenant ENQCMD needs a
    shared queue; ``DeviceConfig.single()``'s DWQ would reject it).

    ``fleet`` (default: the installed ``--fleet`` topology, see
    :mod:`repro.fleet.topology`) switches the platform to
    ``sockets × devices_per_socket`` devices with scheduler-routed
    placement; the default ``1x1`` spec keeps the historical
    single-device layout byte-identical.
    """
    if device_config is None:
        device_config = DeviceConfig.single(wq_size=128, n_engines=4, mode=WqMode.SHARED)
    spec = fleet if fleet is not None else active_fleet()
    if not spec.is_default:
        if n_devices != 1:
            raise ValueError(
                "pass either n_devices or a fleet topology, not both "
                f"(n_devices={n_devices}, fleet={spec.key()})"
            )
        platform = fleet_platform(
            sockets=spec.sockets,
            devices_per_socket=spec.devices_per_socket,
            device_config=device_config,
            timing=timing,
        )
    else:
        platform = spr_platform(
            n_devices=n_devices, device_config=device_config, timing=timing
        )
    accountant = SloAccountant(
        window_ns=profile.window_ns, shadow_exact=shadow_exact
    )
    generator = LoadGenerator(
        platform,
        profile,
        requests,
        accountant=accountant,
        arrival_override=arrival_override,
        fleet=spec if not spec.is_default else None,
    )
    generator.start()
    platform.env.run()
    totals = generator.finalize()
    if totals["offered"] != totals["completed"] + totals["dropped"]:
        raise RuntimeError(
            f"traffic conservation broken: offered {totals['offered']} != "
            f"completed {totals['completed']} + dropped {totals['dropped']}"
        )
    if totals["offered"] != requests:
        raise RuntimeError(
            f"traffic drive incomplete: offered {totals['offered']} of "
            f"{requests} requested"
        )
    return generator, totals
