"""Tenant and profile declarations for the traffic serving mode.

A :class:`TenantSpec` is one tenant's contract with the load generator:
its arrival process (Poisson / bursty H2 / diurnal rate envelope), its
request-size distribution, the completion path it targets (a device SWQ
or the CPU service pool), its bounded ENQCMD retry policy, and its SLO
declaration.  A :class:`TrafficProfile` is a named set of tenants plus
the knobs shared by a run (SLO window length, CPU pool shape).

Everything here is frozen declaration — the runtime state (arrival
cursors, size-draw buffers, descriptor pools) lives in
:mod:`repro.traffic.loadgen` so one profile can drive many runs.

Determinism: per-tenant randomness derives from the installed run seed
through disjoint stream ids (tenant index for arrivals, a separate
namespace for sizes), so serial and ``--jobs N`` runs are draw-for-draw
identical — same rule as :mod:`repro.sim.arrivals`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from repro.dsa.config import DsaTimingParams
from repro.dsa.opcodes import Opcode
from repro.sim.arrivals import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    PoissonProcess,
)
from repro.sim.rng import DEFAULT_BATCH, derive, make_rng

__all__ = [
    "Slo",
    "SizeDist",
    "TenantSpec",
    "TrafficProfile",
    "make_tenants",
    "dsa_capacity",
    "cpu_capacity",
    "SIZE_STREAM_BASE",
]

#: Stream-id namespace offset for per-tenant size draws, keeping them
#: disjoint from the arrival streams (which use the bare tenant index).
SIZE_STREAM_BASE = 1_000_000

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")
TARGET_CPU = "cpu"


@dataclass(frozen=True)
class Slo:
    """A tenant's latency objective, in the repo-wide ns time unit.

    ``None`` fields are unconstrained.  A window violates the SLO when
    requests were offered but none completed (starvation), or when a
    declared percentile target is exceeded (see
    :class:`repro.traffic.slo.SloAccountant`).
    """

    p99_ns: Optional[float] = None
    p999_ns: Optional[float] = None

    def validate(self) -> None:
        for label, value in (("p99_ns", self.p99_ns), ("p999_ns", self.p999_ns)):
            if value is not None and value <= 0:
                raise ValueError(f"slo {label} must be positive, got {value}")


@dataclass(frozen=True)
class SizeDist:
    """Request-size distribution (bytes).

    * ``fixed`` — every request is ``size`` bytes.
    * ``lognormal`` — median ``size``, shape ``sigma``; draws clamp to
      ``[min_size, max_size]`` so tenant buffers can be pre-allocated.
    * ``choice`` — discrete ``choices`` with ``weights``.
    """

    kind: str = "fixed"
    size: int = 4096
    sigma: float = 0.8
    choices: Tuple[int, ...] = ()
    weights: Tuple[float, ...] = ()
    min_size: int = 64
    max_size: int = 0  # 0 = derived (see resolved_max)

    def validate(self) -> None:
        if self.kind not in ("fixed", "lognormal", "choice"):
            raise ValueError(f"unknown size distribution kind {self.kind!r}")
        if self.kind == "choice":
            if not self.choices:
                raise ValueError("choice size distribution needs choices")
            if self.weights and len(self.weights) != len(self.choices):
                raise ValueError("weights must match choices 1:1")
            if any(c < 1 for c in self.choices):
                raise ValueError("choice sizes must be >= 1 byte")
        elif self.size < 1:
            raise ValueError(f"size must be >= 1 byte, got {self.size}")
        if self.kind == "lognormal" and self.sigma <= 0:
            raise ValueError(f"lognormal sigma must be positive, got {self.sigma}")
        if self.min_size < 1:
            raise ValueError("min_size must be >= 1")

    @property
    def resolved_max(self) -> int:
        """Largest size a draw can produce (buffer pre-allocation bound)."""
        if self.kind == "fixed":
            return self.size
        if self.kind == "choice":
            return max(self.choices)
        if self.max_size:
            return self.max_size
        # +3 sigma in log space, rounded up — the clamp ceiling.
        return int(math.ceil(self.size * math.exp(3.0 * self.sigma)))

    @property
    def mean(self) -> float:
        """Expected request size (capacity-planning estimate)."""
        if self.kind == "fixed":
            return float(self.size)
        if self.kind == "choice":
            if not self.weights:
                return float(sum(self.choices)) / len(self.choices)
            total = float(sum(self.weights))
            return sum(c * w for c, w in zip(self.choices, self.weights)) / total
        return float(self.size) * math.exp(0.5 * self.sigma * self.sigma)

    def sampler(self, rng: np.random.Generator, batch: int = DEFAULT_BATCH):
        """A batched scalar sampler bound to ``rng`` (see loadgen)."""
        return _SizeSampler(self, rng, batch)


class _SizeSampler:
    """Amortized-O(1) size draws: vectorized refills, scalar hand-out.

    ``fixed`` consumes no randomness at all, so mixing fixed and
    stochastic tenants never perturbs each other's streams.
    """

    __slots__ = ("dist", "rng", "batch", "_buf", "_pos")

    def __init__(self, dist: SizeDist, rng: np.random.Generator, batch: int):
        self.dist = dist
        self.rng = rng
        self.batch = batch
        self._buf: Optional[np.ndarray] = None
        self._pos = 0

    def _refill(self) -> np.ndarray:
        dist = self.dist
        if dist.kind == "lognormal":
            draws = self.rng.lognormal(math.log(dist.size), dist.sigma, size=self.batch)
            return np.clip(np.rint(draws), dist.min_size, dist.resolved_max)
        # choice
        weights = None
        if dist.weights:
            weights = np.asarray(dist.weights, dtype=float)
            weights = weights / weights.sum()
        return self.rng.choice(np.asarray(dist.choices), size=self.batch, p=weights)

    def next(self) -> int:
        if self.dist.kind == "fixed":
            return self.dist.size
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            buf = self._buf = self._refill()
            self._pos = 0
        value = int(buf[self._pos])
        self._pos += 1
        return value


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's declaration (arrivals, sizes, target, retry, SLO)."""

    name: str
    rate: float                        # arrivals per simulated ns
    cohort: str = "default"            # aggregation class for reporting
    arrival: str = "poisson"           # poisson | bursty | diurnal
    cv2: float = 4.0                   # bursty: squared coeff. of variation
    period_ns: float = 1_000_000.0     # diurnal: rate-envelope period
    amplitude: float = 0.5             # diurnal: envelope swing, [0, 1)
    phase: float = 0.0                 # diurnal: envelope phase offset
    sizes: SizeDist = field(default_factory=SizeDist)
    opcode: Opcode = Opcode.MEMMOVE
    target: str = "dsa0"               # device name, or "cpu"
    wq_id: int = 0
    qos_priority: Optional[int] = None  # informational; WQ config is binding
    max_retries: int = 8               # failed ENQCMDs before shedding
    backoff_base_ns: float = 200.0     # exponential backoff base...
    backoff_cap_ns: float = 10_000.0   # ...and its cap
    slo: Optional[Slo] = None

    def validate(self) -> None:
        if not self.name or any(sep in self.name for sep in (".", ",", "=")):
            raise ValueError(
                f"tenant name {self.name!r} must be non-empty and free of '.', ',', '='"
                " (it becomes a metric-name component)"
            )
        if self.rate <= 0:
            raise ValueError(f"tenant {self.name}: rate must be positive, got {self.rate}")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"tenant {self.name}: unknown arrival kind {self.arrival!r}; "
                f"choose from {ARRIVAL_KINDS}"
            )
        if self.max_retries < 0:
            raise ValueError(f"tenant {self.name}: max_retries must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < self.backoff_base_ns:
            raise ValueError(
                f"tenant {self.name}: need 0 <= backoff_base_ns <= backoff_cap_ns"
            )
        self.sizes.validate()
        if self.slo is not None:
            self.slo.validate()

    @property
    def targets_cpu(self) -> bool:
        return self.target == TARGET_CPU

    def arrivals(self, stream: int, override: Optional[str] = None) -> ArrivalProcess:
        """Build this tenant's arrival process on derived stream ``stream``.

        ``override`` (the ``--traffic`` flag) replaces the declared kind
        while keeping the tenant's rate and shape parameters.
        """
        kind = self.arrival if override in (None, "default") else override
        if kind == "poisson":
            return PoissonProcess(self.rate, stream=stream)
        if kind == "bursty":
            return BurstyProcess(self.rate, cv2=max(1.0, self.cv2), stream=stream)
        return DiurnalProcess(
            self.rate,
            period_ns=self.period_ns,
            amplitude=self.amplitude,
            phase=self.phase,
            stream=stream,
        )

    def size_sampler(self, index: int) -> _SizeSampler:
        """Size sampler on the tenant's disjoint size stream."""
        rng = derive(make_rng(None), SIZE_STREAM_BASE + index)
        return self.sizes.sampler(rng)


@dataclass(frozen=True)
class TrafficProfile:
    """A named tenant mix plus run-wide serving knobs."""

    name: str
    tenants: Tuple[TenantSpec, ...]
    #: SLO accounting window (ns): violations are counted per window.
    window_ns: float = 100_000.0
    #: CPU completion path: worker cores and bounded backlog.
    cpu_cores: int = 2
    cpu_queue_limit: int = 256

    def validate(self) -> None:
        if not self.tenants:
            raise ValueError(f"profile {self.name}: needs at least one tenant")
        if self.window_ns <= 0:
            raise ValueError(f"profile {self.name}: window_ns must be positive")
        if self.cpu_cores < 1 or self.cpu_queue_limit < 1:
            raise ValueError(f"profile {self.name}: cpu pool shape must be >= 1")
        seen = set()
        for tenant in self.tenants:
            tenant.validate()
            if tenant.name in seen:
                raise ValueError(f"profile {self.name}: duplicate tenant {tenant.name}")
            seen.add(tenant.name)

    @property
    def total_rate(self) -> float:
        return sum(t.rate for t in self.tenants)

    def with_arrival(self, mode: str) -> "TrafficProfile":
        """A copy with every tenant's arrival kind forced to ``mode``."""
        if mode in (None, "default"):
            return self
        return replace(
            self, tenants=tuple(replace(t, arrival=mode) for t in self.tenants)
        )


def make_tenants(
    prefix: str,
    n: int,
    total_rate: float,
    **common,
) -> Tuple[TenantSpec, ...]:
    """``n`` equal-rate tenants named ``{prefix}{i:03d}``.

    ``total_rate`` is split evenly so a profile's aggregate load is
    independent of its fan-in — the knob the retry-storm experiment
    sweeps.  Remaining keyword arguments pass through to
    :class:`TenantSpec`.
    """
    if n < 1:
        raise ValueError(f"need at least one tenant, got {n}")
    rate = total_rate / n
    return tuple(TenantSpec(name=f"{prefix}{i:03d}", rate=rate, **common) for i in range(n))


def dsa_capacity(
    size: int,
    timing: Optional[DsaTimingParams] = None,
    engines: int = 4,
) -> float:
    """Planning estimate of one device's service rate (requests/ns).

    The binding constraint is the fabric for KB-scale transfers
    (``fabric_bandwidth`` is in GB/s == bytes/ns) and the per-descriptor
    engine-serial work (dispatch + PE setup) for tiny ones.  This is a
    load-planning estimate for choosing offered rates, not a model
    output — experiments measure the real thing.
    """
    timing = timing or DsaTimingParams()
    serial_ns = timing.dispatch_ns + timing.pe_setup_ns
    engine_bound = engines / serial_ns
    fabric_bound = timing.fabric_bandwidth / size
    return min(engine_bound, fabric_bound)


def cpu_capacity(size: int, opcode: Opcode = Opcode.MEMMOVE, cores: int = 2, kernels=None) -> float:
    """Planning estimate of the CPU pool's service rate (requests/ns)."""
    if kernels is None:
        from repro.cpu.swlib import SoftwareKernels

        kernels = SoftwareKernels()
    return cores / kernels.time(opcode, size)
