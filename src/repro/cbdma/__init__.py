"""CBDMA — the previous-generation DMA engine baseline (paper §2).

Crystal Beach DMA shipped in Ice Lake Xeons: a channel-based copy
engine programmed through descriptor rings, requiring pinned physical
memory and carrying a higher offload cost than DSA.  The paper
measures DSA at ~2.1x CBDMA throughput; this model provides the
comparison target.
"""

from repro.cbdma.device import CbdmaChannelBusyError, CbdmaDevice, CbdmaRequest, CbdmaTimingParams

__all__ = ["CbdmaDevice", "CbdmaRequest", "CbdmaTimingParams", "CbdmaChannelBusyError"]
