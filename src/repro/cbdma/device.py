"""Channel-based CBDMA engine model.

Differences from DSA that the model keeps (paper §2, §3):

* **memory pinning** — buffers must be registered (pinned) before any
  transfer; there is no SVM/PASID path;
* **ring + doorbell programming** — higher per-request offload cost
  than a single MOVDIR64B;
* **copy-only** — no CRC/DIF/delta/compare operations;
* **lower per-channel streaming bandwidth** — the generational gap
  that yields DSA's ~2.1x average advantage (§4.2);
* **shallow channel pipelining** — the ring prefetcher keeps only a
  few descriptors in flight (vs. DSA's deeper read buffering), so less
  memory latency is hidden at small transfer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Set

from repro.dsa.descriptor import Timestamps
from repro.mem.address import Buffer
from repro.mem.link import FairShareLink
from repro.mem.system import MemorySystem
from repro.sim.engine import Environment, Event
from repro.sim.resources import Resource, Store


class CbdmaChannelBusyError(RuntimeError):
    """Submission to a channel whose ring is full."""


class PinningError(RuntimeError):
    """Transfer references a buffer that was not pinned."""


@dataclass(frozen=True)
class CbdmaTimingParams:
    """Calibrated CBDMA costs (ns / GB/s)."""

    ring_write_ns: float = 90.0
    doorbell_ns: float = 280.0
    #: Serial per-descriptor programming inside the channel.
    channel_setup_ns: float = 100.0
    completion_write_ns: float = 60.0
    #: Per-channel streaming rate; also the device aggregate is capped.
    channel_bandwidth: float = 14.0
    device_bandwidth: float = 14.0
    ring_entries: int = 64
    #: Descriptors a channel keeps in flight (far fewer than DSA's
    #: read buffers — the ring prefetcher hides some memory latency).
    pipeline_depth: int = 4

    def validate(self) -> None:
        if self.channel_bandwidth <= 0 or self.device_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.ring_entries < 1:
            raise ValueError("ring needs at least one entry")


@dataclass
class CbdmaRequest:
    """One copy request (CBDMA's only operation)."""

    src: Buffer
    dst: Buffer
    size: int
    times: Timestamps = field(default_factory=Timestamps)
    completion_event: Optional[Event] = None
    done: bool = False


class CbdmaDevice:
    """A CBDMA instance with ``n_channels`` independent channels."""

    def __init__(
        self,
        env: Environment,
        memsys: MemorySystem,
        n_channels: int = 16,
        timing: Optional[CbdmaTimingParams] = None,
        name: str = "cbdma0",
        socket: int = 0,
    ):
        if n_channels < 1:
            raise ValueError(f"need at least one channel, got {n_channels}")
        self.env = env
        self.memsys = memsys
        self.timing = timing or CbdmaTimingParams()
        self.timing.validate()
        self.name = name
        self.socket = socket
        self.port = FairShareLink(env, self.timing.device_bandwidth, f"{name}.port")
        self._rings = [
            Store(env, capacity=self.timing.ring_entries) for _ in range(n_channels)
        ]
        self._pinned: Set[int] = set()
        self.requests_completed = 0
        self.bytes_copied = 0
        for channel_id in range(n_channels):
            env.process(self._channel(channel_id), name=f"{name}.ch{channel_id}")

    @property
    def n_channels(self) -> int:
        return len(self._rings)

    # -- pinning -------------------------------------------------------------
    def pin(self, buffer: Buffer) -> None:
        """Register a buffer's physical pages (required before use)."""
        self._pinned.add(buffer.va)

    def unpin(self, buffer: Buffer) -> None:
        self._pinned.discard(buffer.va)

    def is_pinned(self, buffer: Buffer) -> bool:
        return buffer.va in self._pinned

    # -- submission ---------------------------------------------------------------
    def submit(self, request: CbdmaRequest, channel_id: int = 0) -> Event:
        """Program the ring entry; returns the completion event."""
        if not 0 <= channel_id < self.n_channels:
            raise ValueError(f"channel {channel_id} out of range")
        for buffer in (request.src, request.dst):
            if not self.is_pinned(buffer):
                raise PinningError(
                    f"buffer at {buffer.va:#x} is not pinned; CBDMA has no SVM"
                )
        if request.size <= 0:
            raise ValueError(f"invalid transfer size: {request.size}")
        ring = self._rings[channel_id]
        request.completion_event = Event(self.env)
        request.times.submitted = self.env.now
        if not ring.try_put(request):
            raise CbdmaChannelBusyError(f"channel {channel_id} ring is full")
        return request.completion_event

    # -- channel engine ---------------------------------------------------------------
    def _channel(self, channel_id: int) -> Generator:
        """Serial descriptor programming + shallow data pipelining."""
        timing = self.timing
        pipeline = Resource(self.env, capacity=timing.pipeline_depth)
        while True:
            request = yield self._rings[channel_id].get()
            request.times.dispatched = self.env.now
            yield self.env.timeout(timing.channel_setup_ns)
            yield pipeline.request()
            self.env.process(self._transfer(request, pipeline))

    def _transfer(self, request: CbdmaRequest, pipeline: Resource) -> Generator:
        timing = self.timing
        memsys = self.memsys
        try:
            yield self.env.timeout(memsys.read_latency(request.src.node, self.socket))
            flows = [
                self.port.transfer(request.size),
                memsys.read_flow(request.src.node, request.size, self.socket),
                memsys.write_flow(request.dst.node, request.size, self.socket),
            ]
            yield self.env.all_of(flows)
            yield self.env.timeout(
                memsys.write_latency(
                    request.dst.node,
                    self.socket,
                    same_node_as_read=request.dst.node == request.src.node,
                )
            )
            yield self.env.timeout(timing.completion_write_ns)
            request.done = True
            request.times.completed = self.env.now
            self.requests_completed += 1
            self.bytes_copied += request.size
            request.completion_event.succeed(request)
        finally:
            pipeline.release()
