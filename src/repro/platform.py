"""Platform presets: composed systems matching the paper's Table 2.

A :class:`Platform` bundles everything one experiment run needs — the
simulation environment, memory system, driver with registered DSA (or
CBDMA) devices, software kernel library, and instruction costs — so
experiments and tests build identical stacks from one line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cpu.core import CpuCore
from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import SoftwareKernels
from repro.dsa.config import DeviceConfig, DsaTimingParams
from repro.dsa.device import DsaDevice
from repro.mem.address import AddressSpace
from repro.mem.system import MemorySystem
from repro.runtime.accel_config import AccelConfig
from repro.runtime.driver import IdxdDriver, Portal
from repro.sim.engine import Environment


@dataclass
class Platform:
    """One composed system under test."""

    env: Environment
    memsys: MemorySystem
    driver: IdxdDriver
    kernels: SoftwareKernels
    costs: InstructionCosts
    name: str = "spr"
    _cores: Dict[int, CpuCore] = field(default_factory=dict)

    @property
    def accel_config(self) -> AccelConfig:
        return AccelConfig(self.driver)

    def core(self, core_id: int = 0) -> CpuCore:
        """Get-or-create a CPU core (cores are accounting identities)."""
        if core_id not in self._cores:
            self._cores[core_id] = CpuCore(self.env, core_id=core_id)
        return self._cores[core_id]

    def add_device(
        self,
        name: str,
        config: Optional[DeviceConfig] = None,
        socket: int = 0,
        timing: Optional[DsaTimingParams] = None,
    ) -> DsaDevice:
        device = self.driver.register_device(name, config=config, socket=socket, timing=timing)
        self.driver.enable(name)
        return device

    def open_portal(self, device_name: str, wq_id: int, space: AddressSpace) -> Portal:
        return self.driver.open_portal(device_name, wq_id, space)

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat snapshot of every live metric plus core cycle accounting.

        Components publish counters/gauges continuously (see
        ``docs/OBSERVABILITY.md``); per-core cycle categories are
        accounted on the cores themselves, so they are folded in here
        at snapshot time rather than mirrored on every update.
        """
        registry = self.env.metrics
        for core_id, core in self._cores.items():
            for category, nanoseconds in core.times().items():
                counter = registry.counter(f"core{core_id}.cycles.{category.value}_ns")
                counter.value = nanoseconds
        return registry.snapshot()


def spr_platform(
    n_devices: int = 1,
    device_config: Optional[DeviceConfig] = None,
    with_cxl: bool = False,
    sockets: int = 2,
    timing: Optional[DsaTimingParams] = None,
) -> Platform:
    """Sapphire Rapids (Table 2): DDR5 x8, 105 MB LLC, n DSA instances."""
    env = Environment()
    memsys = MemorySystem.spr(env, with_cxl=with_cxl, sockets=sockets)
    platform = Platform(
        env=env,
        memsys=memsys,
        driver=IdxdDriver(env, memsys),
        kernels=SoftwareKernels(),
        costs=InstructionCosts(),
        name="spr",
    )
    for index in range(n_devices):
        platform.add_device(
            f"dsa{index}",
            config=device_config or DeviceConfig.single(),
            socket=0,
            timing=timing,
        )
    return platform


def icx_platform() -> Platform:
    """Ice Lake (Table 2): DDR4 x6, 57 MB LLC; hosts CBDMA, not DSA."""
    env = Environment()
    memsys = MemorySystem.icx(env)
    return Platform(
        env=env,
        memsys=memsys,
        driver=IdxdDriver(env, memsys),
        kernels=SoftwareKernels(),
        costs=InstructionCosts(),
        name="icx",
    )
