"""Platform presets: composed systems matching the paper's Table 2.

A :class:`Platform` bundles everything one experiment run needs — the
simulation environment, memory system, driver with registered DSA (or
CBDMA) devices, software kernel library, and instruction costs — so
experiments and tests build identical stacks from one line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.cpu.core import CpuCore
from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import SoftwareKernels
from repro.dsa.config import DeviceConfig, DsaTimingParams
from repro.dsa.device import DsaDevice
from repro.mem.address import AddressSpace
from repro.mem.system import MemorySystem
from repro.runtime.accel_config import AccelConfig
from repro.runtime.driver import IdxdDriver, Portal
from repro.sim.engine import Environment


@dataclass
class Platform:
    """One composed system under test."""

    env: Environment
    memsys: MemorySystem
    driver: IdxdDriver
    kernels: SoftwareKernels
    costs: InstructionCosts
    name: str = "spr"
    _cores: Dict[int, CpuCore] = field(default_factory=dict)

    @property
    def accel_config(self) -> AccelConfig:
        return AccelConfig(self.driver)

    def core(self, core_id: int = 0) -> CpuCore:
        """Get-or-create a CPU core (cores are accounting identities)."""
        if core_id not in self._cores:
            self._cores[core_id] = CpuCore(self.env, core_id=core_id)
        return self._cores[core_id]

    def add_device(
        self,
        name: str,
        config: Optional[DeviceConfig] = None,
        socket: int = 0,
        timing: Optional[DsaTimingParams] = None,
    ) -> DsaDevice:
        device = self.driver.register_device(name, config=config, socket=socket, timing=timing)
        self.driver.enable(name)
        return device

    def open_portal(self, device_name: str, wq_id: int, space: AddressSpace) -> Portal:
        return self.driver.open_portal(device_name, wq_id, space)

    def run(self, until: Optional[float] = None) -> None:
        self.env.run(until=until)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat snapshot of every live metric plus core cycle accounting.

        Components publish counters/gauges continuously (see
        ``docs/OBSERVABILITY.md``); per-core cycle categories are
        accounted on the cores themselves, so they are folded in here
        at snapshot time rather than mirrored on every update.
        """
        registry = self.env.metrics
        for core_id, core in self._cores.items():
            for category, nanoseconds in core.times().items():
                counter = registry.counter(f"core{core_id}.cycles.{category.value}_ns")
                counter.value = nanoseconds
        return registry.snapshot()


def spr_platform(
    n_devices: int = 1,
    device_config: Optional[DeviceConfig] = None,
    with_cxl: bool = False,
    sockets: int = 2,
    timing: Optional[DsaTimingParams] = None,
    socket_of: Optional[Callable[[int], int]] = None,
) -> Platform:
    """Sapphire Rapids (Table 2): DDR5 x8, 105 MB LLC, n DSA instances.

    Devices distribute round-robin across the platform's sockets
    (``dsa0`` on socket 0, ``dsa1`` on socket 1, ...), matching how a
    real multi-socket SPR exposes its instances.  ``socket_of`` overrides
    the placement per device index — e.g. ``lambda i: 0`` pins every
    instance to socket 0, the paper's single-socket testbed.
    """
    env = Environment()
    memsys = MemorySystem.spr(env, with_cxl=with_cxl, sockets=sockets)
    platform = Platform(
        env=env,
        memsys=memsys,
        driver=IdxdDriver(env, memsys),
        kernels=SoftwareKernels(),
        costs=InstructionCosts(),
        name="spr",
    )
    place = socket_of or (lambda index: index % sockets)
    for index in range(n_devices):
        socket = place(index)
        if not 0 <= socket < sockets:
            raise ValueError(
                f"socket_of({index}) = {socket} out of range [0, {sockets})"
            )
        platform.add_device(
            f"dsa{index}",
            config=device_config or DeviceConfig.single(),
            socket=socket,
            timing=timing,
        )
    return platform


def fleet_platform(
    sockets: int = 2,
    devices_per_socket: int = 1,
    device_config: Optional[DeviceConfig] = None,
    with_cxl: bool = False,
    timing: Optional[DsaTimingParams] = None,
) -> Platform:
    """A rack-style SPR host: ``sockets × devices_per_socket`` instances.

    Device ``dsa{i}`` lands on socket ``i // devices_per_socket`` so
    indices group by socket (``dsa0..dsa{k-1}`` on socket 0, the next
    ``k`` on socket 1, ...).  Fleet platforms also turn on the shared
    remote-IOMMU translation model: descriptors whose operands live on
    another socket pay the UPI round trip plus queueing at the home
    socket's translation agent (see
    :meth:`repro.mem.system.MemorySystem.ats_acquire`).
    """
    if sockets < 1:
        raise ValueError(f"sockets must be >= 1, got {sockets}")
    if devices_per_socket < 1:
        raise ValueError(
            f"devices_per_socket must be >= 1, got {devices_per_socket}"
        )
    platform = spr_platform(
        n_devices=sockets * devices_per_socket,
        device_config=device_config,
        with_cxl=with_cxl,
        sockets=sockets,
        timing=timing,
        socket_of=lambda index: index // devices_per_socket,
    )
    platform.memsys.model_ats_contention = True
    return platform


def icx_platform() -> Platform:
    """Ice Lake (Table 2): DDR4 x6, 57 MB LLC; hosts CBDMA, not DSA."""
    env = Environment()
    memsys = MemorySystem.icx(env)
    return Platform(
        env=env,
        memsys=memsys,
        driver=IdxdDriver(env, memsys),
        kernels=SoftwareKernels(),
        costs=InstructionCosts(),
        name="icx",
    )
