"""Observability: simulator-wide tracing, metrics, and trace export.

See ``docs/OBSERVABILITY.md`` for the event-category and metric-naming
conventions, the streaming (constant-memory) tier, and the Perfetto
workflow.
"""

from repro.obs.export import (
    chrome_trace_events,
    iter_chrome_events,
    metrics_table,
    snapshot_table,
    write_chrome_trace,
)
from repro.obs.metrics import (
    AUTO_STREAMING_THRESHOLD,
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    default_hist_backend,
    install_metrics,
    installed_metrics,
    set_default_hist_backend,
    uninstall_metrics,
)
from repro.obs.overhead import MemoryWatermark, publish_overhead
from repro.obs.phases import PHASE_CATEGORIES, phase_breakdown, span_durations
from repro.obs.sink import ResultSink, install_sink, installed_sink, uninstall_sink
from repro.obs.streaming import DEFAULT_RELATIVE_ERROR, StreamingHistogram
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RingTracer,
    Tracer,
    install_tracer,
    installed_tracer,
    uninstall_tracer,
)

__all__ = [
    "AUTO_STREAMING_THRESHOLD",
    "Counter",
    "DEFAULT_RELATIVE_ERROR",
    "Gauge",
    "HistogramMetric",
    "MemoryWatermark",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_CATEGORIES",
    "ResultSink",
    "RingTracer",
    "StreamingHistogram",
    "Tracer",
    "chrome_trace_events",
    "default_hist_backend",
    "install_metrics",
    "install_sink",
    "install_tracer",
    "installed_metrics",
    "installed_sink",
    "installed_tracer",
    "iter_chrome_events",
    "metrics_table",
    "phase_breakdown",
    "publish_overhead",
    "set_default_hist_backend",
    "snapshot_table",
    "span_durations",
    "uninstall_metrics",
    "uninstall_sink",
    "uninstall_tracer",
    "write_chrome_trace",
]
