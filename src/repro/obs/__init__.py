"""Observability: simulator-wide tracing, metrics, and trace export.

See ``docs/OBSERVABILITY.md`` for the event-category and metric-naming
conventions and the Perfetto workflow.
"""

from repro.obs.export import (
    chrome_trace_events,
    metrics_table,
    snapshot_table,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    install_metrics,
    installed_metrics,
    uninstall_metrics,
)
from repro.obs.phases import PHASE_CATEGORIES, phase_breakdown, span_durations
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    install_tracer,
    installed_tracer,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_CATEGORIES",
    "Tracer",
    "chrome_trace_events",
    "install_metrics",
    "install_tracer",
    "installed_metrics",
    "installed_tracer",
    "metrics_table",
    "phase_breakdown",
    "snapshot_table",
    "span_durations",
    "uninstall_metrics",
    "uninstall_tracer",
    "write_chrome_trace",
]
