"""Reconstruct descriptor phase timelines from an exported trace.

The instrumentation in :mod:`repro.runtime` and :mod:`repro.dsa` emits
every lifecycle phase of a descriptor — ``alloc``, ``prepare``,
``submit``, ``queue``, ``translate``, ``execute``, ``wait``, and (for
faulted BOF=0 descriptors) ``recovery`` — as begin/end spans on that
descriptor's track.  These helpers invert the
export: given the *trace alone* (the parsed ``trace.json`` array), they
rebuild per-descriptor phase durations and the Fig 5-style average
breakdown.  This is the calibration-debugging workflow described in
``docs/OBSERVABILITY.md``: when an anchor drifts, diff the phase
breakdown of a good run against the drifted one.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

#: The descriptor lifecycle categories, in paper (Fig 5) order.
PHASE_CATEGORIES: Tuple[str, ...] = (
    "alloc",
    "prepare",
    "submit",
    "queue",
    "translate",
    "execute",
    "wait",
    "recovery",
)

def span_durations(events: Iterable[Dict[str, Any]]) -> Dict[int, Dict[str, float]]:
    """Pair begin/end events; sum durations per category per track id.

    ``events`` is the parsed Chrome trace array.  ``E`` closes the
    innermost open ``B`` on the same ``(pid, tid)`` thread (Chrome
    stack semantics); ``X`` events contribute their ``dur`` directly.
    Metadata (``M``) and instant (``i``) events are ignored.  Unclosed
    spans are dropped (the run ended mid-span).

    Track ids (``tid``) are globally unique per logical timeline in
    this tracer (one per descriptor), while one descriptor's phases are
    emitted by several agents (core, WQ, engine — distinct ``pid``
    rows); totals are therefore merged across ``pid`` by ``tid``.
    """
    stacks: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    totals: Dict[int, Dict[str, float]] = {}

    def book(tid: int, cat: str, dur: float) -> None:
        totals.setdefault(tid, {})
        totals[tid][cat] = totals[tid].get(cat, 0.0) + dur

    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E", "X"):
            continue
        tid = event.get("tid", 0)
        thread = (event.get("pid", 0), tid)
        if phase == "B":
            stacks.setdefault(thread, []).append((event.get("cat", ""), event["ts"]))
        elif phase == "E":
            stack = stacks.get(thread)
            if not stack:
                raise ValueError(f"unbalanced 'E' event on thread {thread}: {event}")
            cat, start = stack.pop()
            book(tid, cat, event["ts"] - start)
        else:  # X
            book(tid, event.get("cat", ""), event.get("dur", 0.0))
    return totals


def phase_breakdown(
    events: Iterable[Dict[str, Any]],
    categories: Tuple[str, ...] = PHASE_CATEGORIES,
) -> Dict[str, float]:
    """Average per-descriptor time in each lifecycle phase (Fig 5 shape).

    A *descriptor track* is any track id that carries at least one of
    the lifecycle categories.  Returns ``{category: mean_duration}`` in
    the trace's time unit (microseconds for an exported ``trace.json``)
    over those tracks; categories never observed map to 0.0.
    """
    per_track = span_durations(events)
    descriptor_tracks = [
        cats for cats in per_track.values() if any(c in cats for c in categories)
    ]
    if not descriptor_tracks:
        return {category: 0.0 for category in categories}
    breakdown = {}
    for category in categories:
        breakdown[category] = sum(
            cats.get(category, 0.0) for cats in descriptor_tracks
        ) / len(descriptor_tracks)
    return breakdown
