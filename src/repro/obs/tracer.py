"""Event tracing against the simulated clock.

The tracer records *spans* (begin/end pairs) and *instant* events that
components emit while a simulation runs: descriptor lifecycle phases,
translation stalls, waits.  The design goals, in order:

1. **Near-zero cost when disabled.**  Model code holds the tracer in a
   local and checks one attribute (``tracer.enabled``) before building
   argument dicts; the disabled tracer is the :data:`NULL_TRACER`
   singleton whose record methods are pure no-ops.
2. **Simulated time, not wall time.**  Every record method takes the
   timestamp explicitly (callers pass ``env.now``), so one tracer can
   be shared by several :class:`~repro.sim.engine.Environment`
   instances without owning any clock.
3. **Chrome-trace-shaped.**  Events map 1:1 onto the Chrome/Perfetto
   trace-event format (phases ``B``/``E``/``X``/``i``); the exporter in
   :mod:`repro.obs.export` only reshapes, it never infers.

Tracks
------
Spans that belong to one logical timeline (one descriptor's lifecycle,
one core's host-side work) share a *track* — an integer that becomes
the Chrome ``tid``.  Per-descriptor tracks come from
:meth:`Tracer.next_track`; the runtime stamps the track id onto the
descriptor (``descriptor.trace_track``) so device-side components can
keep emitting on the same timeline.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: One recorded event: (phase, ts_ns, name, category, agent, track, args).
#: ``phase`` follows the Chrome trace-event letters: "B" begin, "E" end,
#: "X" complete (with duration stored in args under "_dur"), "i" instant.
TraceRecord = Tuple[str, float, str, str, str, int, Optional[Dict[str, Any]]]

#: Track used for events that belong to no particular timeline.
DEFAULT_TRACK = 0


class Tracer:
    """Append-only in-memory recorder of trace events."""

    __slots__ = ("enabled", "events", "_tracks")

    def __init__(self) -> None:
        self.enabled = True
        self.events: List[TraceRecord] = []
        self._tracks = 0

    def __len__(self) -> int:
        return len(self.events)

    def next_track(self) -> int:
        """A fresh track id (one logical timeline, e.g. one descriptor)."""
        self._tracks += 1
        return self._tracks

    def absorb(self, events: List[TraceRecord]) -> int:
        """Fold records from another tracer in, remapping its track ids.

        The parallel runner collects each worker's event list and folds
        them into the parent tracer here.  Workers number their tracks
        independently from 1, so non-default tracks are shifted past
        every id this tracer has handed out; :data:`DEFAULT_TRACK` stays
        0.  Returns the number of records absorbed.
        """
        offset = self._tracks
        highest = 0
        append = self.events.append
        for phase, ts, name, cat, agent, track, args in events:
            if track:
                if track > highest:
                    highest = track
                track += offset
            append((phase, ts, name, cat, agent, track, args))
        self._tracks = offset + highest
        return len(events)

    # -- record methods --------------------------------------------------
    def begin(
        self,
        ts: float,
        name: str,
        cat: str,
        agent: str = "sim",
        track: int = DEFAULT_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Open a span.  Close it with :meth:`end` (same agent+track)."""
        self.events.append(("B", ts, name, cat, agent, track, args))

    def end(
        self,
        ts: float,
        name: str,
        cat: str,
        agent: str = "sim",
        track: int = DEFAULT_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Close the innermost open span on ``(agent, track)``."""
        self.events.append(("E", ts, name, cat, agent, track, args))

    def complete(
        self,
        ts: float,
        dur: float,
        name: str,
        cat: str,
        agent: str = "sim",
        track: int = DEFAULT_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a finished span ``[ts, ts+dur]`` in one event."""
        merged = dict(args) if args else {}
        merged["_dur"] = dur
        self.events.append(("X", ts, name, cat, agent, track, merged))

    def instant(
        self,
        ts: float,
        name: str,
        cat: str,
        agent: str = "sim",
        track: int = DEFAULT_TRACK,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a point-in-time occurrence (fault, retry, drop)."""
        self.events.append(("i", ts, name, cat, agent, track, args))

    def clear(self) -> None:
        self.events.clear()

    # -- streaming-reader surface ----------------------------------------
    @property
    def record_count(self) -> int:
        """Total records recorded (including any spilled to disk)."""
        return len(self)

    @property
    def spilled_records(self) -> int:
        """Records no longer held in memory (0 for the in-memory tracer)."""
        return 0

    @property
    def spilled_bytes(self) -> int:
        return 0

    def iter_records(self) -> Iterator[TraceRecord]:
        """All records in recording order, without copying the store.

        Exporters iterate this instead of touching :attr:`events` so the
        same code path serves both the in-memory tracer and
        :class:`RingTracer` (which interleaves disk shards with its
        ring).
        """
        return iter(self.events)


class RingTracer(Tracer):
    """Bounded-memory tracer: a ring of recent records, shards on disk.

    Records accumulate in an in-memory buffer of at most ``capacity``
    entries; each time the buffer fills, the whole segment is spilled as
    one JSONL shard (``shard-00000.jsonl``, ``shard-00001.jsonl``, …)
    under ``spill_dir`` and the buffer restarts empty.  Memory is
    therefore O(capacity) regardless of run length, while
    :meth:`iter_records` still replays the *complete* record stream —
    shards first (parsed one line at a time), then the live tail — so
    the Chrome-trace exporter never materializes the spilled part.

    ``spill_dir`` defaults to a fresh temporary directory; call
    :meth:`cleanup` (or :meth:`clear`) when the trace has been exported.
    Args dicts are serialized with ``default=str``, so a stray non-JSON
    value degrades to its string form instead of losing the record.
    """

    __slots__ = ("capacity", "spill_dir", "_owns_spill_dir", "_shards", "_spilled", "_spilled_bytes")

    #: Default ring capacity (records) for ``--trace-buffer``-less use.
    DEFAULT_CAPACITY = 1 << 18

    def __init__(self, capacity: int = DEFAULT_CAPACITY, spill_dir: Optional[str] = None):
        super().__init__()
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._owns_spill_dir = spill_dir is None
        self.spill_dir = (
            tempfile.mkdtemp(prefix="repro-trace-") if spill_dir is None else str(spill_dir)
        )
        self._shards: List[str] = []
        self._spilled = 0
        self._spilled_bytes = 0

    def __len__(self) -> int:
        return self._spilled + len(self.events)

    @property
    def spilled_records(self) -> int:
        return self._spilled

    @property
    def spilled_bytes(self) -> int:
        return self._spilled_bytes

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def _flush_segment(self) -> None:
        os.makedirs(self.spill_dir, exist_ok=True)
        path = os.path.join(self.spill_dir, f"shard-{len(self._shards):05d}.jsonl")
        dumps = json.dumps
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.events:
                fh.write(dumps(record, default=str))
                fh.write("\n")
            self._spilled_bytes += fh.tell()
        self._shards.append(path)
        self._spilled += len(self.events)
        self.events.clear()

    def _append(self, record: TraceRecord) -> None:
        self.events.append(record)
        if len(self.events) >= self.capacity:
            self._flush_segment()

    # The four record methods are re-implemented (not wrapped) so the
    # traced hot path stays one call deep, same as the base tracer.
    def begin(self, ts, name, cat, agent="sim", track=DEFAULT_TRACK, args=None) -> None:  # noqa: D102
        self._append(("B", ts, name, cat, agent, track, args))

    def end(self, ts, name, cat, agent="sim", track=DEFAULT_TRACK, args=None) -> None:  # noqa: D102
        self._append(("E", ts, name, cat, agent, track, args))

    def complete(self, ts, dur, name, cat, agent="sim", track=DEFAULT_TRACK, args=None) -> None:  # noqa: D102
        merged = dict(args) if args else {}
        merged["_dur"] = dur
        self._append(("X", ts, name, cat, agent, track, merged))

    def instant(self, ts, name, cat, agent="sim", track=DEFAULT_TRACK, args=None) -> None:  # noqa: D102
        self._append(("i", ts, name, cat, agent, track, args))

    def absorb(self, events: List[TraceRecord]) -> int:
        """Same contract as :meth:`Tracer.absorb`, routed through the ring."""
        offset = self._tracks
        highest = 0
        append = self._append
        for phase, ts, name, cat, agent, track, args in events:
            if track:
                if track > highest:
                    highest = track
                track += offset
            append((phase, ts, name, cat, agent, track, args))
        self._tracks = offset + highest
        return len(events)

    def iter_records(self) -> Iterator[TraceRecord]:
        loads = json.loads
        for path in self._shards:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    phase, ts, name, cat, agent, track, args = loads(line)
                    yield (phase, ts, name, cat, agent, track, args)
        yield from self.events

    def clear(self) -> None:
        self.events.clear()
        for path in self._shards:
            try:
                os.unlink(path)
            except OSError:
                pass
        self._shards.clear()
        self._spilled = 0
        self._spilled_bytes = 0

    def cleanup(self) -> None:
        """Delete shards (and the spill dir, when this tracer made it)."""
        self.clear()
        if self._owns_spill_dir:
            try:
                os.rmdir(self.spill_dir)
            except OSError:
                pass


class NullTracer(Tracer):
    """Disabled tracer: every record method is a pure no-op.

    Hot paths pay one attribute check (``tracer.enabled``) and, when
    they skip the check for argument-free calls, one empty method call.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def begin(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def end(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def complete(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass

    def instant(self, *args: Any, **kwargs: Any) -> None:  # noqa: D102
        pass


#: Shared disabled tracer; the default for every new Environment.
NULL_TRACER = NullTracer()

_installed: Tracer = NULL_TRACER


def install_tracer(tracer: Tracer) -> None:
    """Make ``tracer`` the default for Environments created afterwards.

    This is how the CLI turns on tracing without threading a tracer
    through every experiment: experiments build their own platforms and
    environments, and each new Environment picks up the installed
    tracer.  Install :data:`NULL_TRACER` (or call
    :func:`uninstall_tracer`) to turn tracing back off.
    """
    global _installed
    _installed = tracer


def uninstall_tracer() -> None:
    global _installed
    _installed = NULL_TRACER


def installed_tracer() -> Tracer:
    """The tracer new Environments default to (NULL_TRACER when off)."""
    return _installed
