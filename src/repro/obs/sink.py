"""Incremental experiment-result writes: a per-run JSONL sink.

Experiments historically accumulated everything — series, tables,
anchors — in an :class:`~repro.experiments.base.ExperimentResult` and
the CLI dumped it at the end, so a crashed or OOM-killed sweep left
nothing behind and the whole run had to fit in memory.  A
:class:`ResultSink` turns that into a stream: each completed sweep
series, anchor check, and per-experiment outcome is appended to a
JSONL file *as it happens* (one flushed line each, O(1) memory), and a
final :meth:`finalize` pass merges worker shards and writes a compact
``<path>.summary.json`` index.

Line shapes (one JSON object per line, ``kind`` discriminates)::

    {"kind": "series", "exp": "fig2", "label": "sync:MEMMOVE", "points": [[x, y], ...]}
    {"kind": "anchor", "exp": "fig2", "name": "...", "holds": true, ...}
    {"kind": "result", "exp": "fig2", "wall": 1.2, "cached": false, ...}

The sink follows the tracer/metrics pattern: :func:`install_sink` makes
one sink ambient so experiments stream points without threading an
argument through every ``run()``; the parallel runner gives each worker
its own shard file and splices shards into the parent sink in request
order (a line-by-line copy — shards are never materialized).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional


class ResultSink:
    """Append-only JSONL writer for streaming run results."""

    def __init__(self, path: os.PathLike):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.lines = 0

    # -- writes ----------------------------------------------------------
    def write(self, kind: str, **fields: Any) -> None:
        """Append one record and flush it (crash-durable up to the line)."""
        if self._fh is None:
            raise ValueError(f"sink {self.path} is closed")
        record = {"kind": kind}
        record.update(fields)
        self._fh.write(json.dumps(record, default=str))
        self._fh.write("\n")
        self._fh.flush()
        self.lines += 1

    def series(self, exp_id: str, label: str, points) -> None:
        """One completed sweep series (a finished line of a figure)."""
        self.write("series", exp=exp_id, label=label, points=[list(p) for p in points])

    def anchor(self, exp_id: str, name: str, expected: str, measured: str, holds: bool) -> None:
        self.write(
            "anchor", exp=exp_id, name=name, expected=expected, measured=measured,
            holds=bool(holds),
        )

    def result(self, exp_id: str, **fields: Any) -> None:
        """Per-experiment outcome summary (wall, cached, anchor tally…)."""
        self.write("result", exp=exp_id, **fields)

    def absorb_file(self, shard_path: os.PathLike) -> int:
        """Splice a worker shard in, line by line; returns lines copied.

        Raw lines are copied without parsing (they were written by
        another :class:`ResultSink`, so they are already one JSON object
        each); a missing shard — the worker died before writing — is a
        no-op, not an error.
        """
        if self._fh is None:
            raise ValueError(f"sink {self.path} is closed")
        copied = 0
        try:
            fh = open(shard_path, "r", encoding="utf-8")
        except OSError:
            return 0
        with fh:
            for line in fh:
                line = line.rstrip("\n")
                if not line:
                    continue
                self._fh.write(line)
                self._fh.write("\n")
                copied += 1
        self._fh.flush()
        self.lines += copied
        return copied

    # -- final merge -----------------------------------------------------
    def finalize(self) -> Dict[str, Any]:
        """Close the stream and write ``<path>.summary.json``.

        Re-reads the JSONL one line at a time (constant memory) to build
        the index: per-experiment line counts, anchor tallies, and total
        wall time.  Returns the summary dict.
        """
        self.close()
        experiments: Dict[str, Dict[str, Any]] = {}
        totals = {"lines": 0, "series": 0, "anchors": 0, "anchors_held": 0, "wall_s": 0.0}
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                totals["lines"] += 1
                exp = record.get("exp", "?")
                per = experiments.setdefault(
                    exp, {"series": 0, "anchors": 0, "anchors_held": 0, "cached": False}
                )
                kind = record.get("kind")
                if kind == "series":
                    per["series"] += 1
                    totals["series"] += 1
                elif kind == "anchor":
                    per["anchors"] += 1
                    totals["anchors"] += 1
                    if record.get("holds"):
                        per["anchors_held"] += 1
                        totals["anchors_held"] += 1
                elif kind == "result":
                    per["cached"] = bool(record.get("cached"))
                    totals["wall_s"] += float(record.get("wall", 0.0))
        summary = {"path": self.path, "experiments": experiments, **totals}
        with open(self.path + ".summary.json", "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        return summary

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultSink":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None


_installed: Optional[ResultSink] = None


def install_sink(sink: ResultSink) -> None:
    """Make ``sink`` ambient: experiments stream sweep points to it."""
    global _installed
    _installed = sink


def uninstall_sink() -> None:
    global _installed
    _installed = None


def installed_sink() -> Optional[ResultSink]:
    return _installed
