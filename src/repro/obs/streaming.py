"""Constant-memory streaming histogram with bounded relative error.

:class:`StreamingHistogram` is a fixed log-bucket (HDR/DDSketch-style)
online histogram: values land in geometrically spaced buckets indexed
by ``ceil(log_gamma(value))`` with ``gamma = (1 + alpha) / (1 - alpha)``,
so any quantile read back from a bucket's representative value is
within ``alpha`` relative error of the exact sample (default 1%).
Memory is O(number of occupied buckets) — for simulated latencies
spanning twelve decades at ``alpha = 0.01`` that is a few thousand
buckets, independent of how many samples were added — and two
histograms with the same ``alpha`` merge *exactly* by adding bucket
counts, which is what makes worker-side percentiles foldable into a
parent registry without shipping samples.

The API deliberately mirrors :class:`repro.sim.stats.Histogram` (the
exact backend): ``add``/``extend``/``percentile``/``summary``/``mean``/
``minimum``/``maximum``/``__len__``, so
:class:`repro.obs.metrics.HistogramMetric` can swap one for the other
behind its ``samples`` attribute.  Count, sum, min, and max are tracked
exactly; only interior percentiles are approximate.

Error bound
-----------
For a positive sample ``x`` stored in bucket ``i = ceil(log_gamma(x))``
the representative ``r_i = 2 * gamma**i / (gamma + 1)`` satisfies
``|r_i - x| / x <= alpha`` (the classic DDSketch guarantee).  Negative
values use mirrored buckets; zeros get a dedicated slot.  Percentiles
are additionally clamped to the exact observed ``[min, max]``, so the
extreme quantiles (p0/p100) are exact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

#: Default relative-error bound; documented in docs/OBSERVABILITY.md.
DEFAULT_RELATIVE_ERROR = 0.01


class StreamingHistogram:
    """Fixed log-bucket online histogram; O(buckets) memory, mergeable."""

    __slots__ = (
        "alpha",
        "_gamma",
        "_log_gamma",
        "count",
        "_sum",
        "minimum",
        "maximum",
        "_pos",
        "_neg",
        "_zero",
        "_sorted_pos",
        "_sorted_neg",
        "_dirty",
    )

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error out of (0, 1): {relative_error}")
        self.alpha = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self._sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        #: bucket index -> sample count, for positive / negative values.
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._sorted_pos: Optional[List[int]] = None
        self._sorted_neg: Optional[List[int]] = None
        self._dirty = True

    # -- writes ----------------------------------------------------------
    def add(self, value: float) -> None:
        self.count += 1
        self._sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._pos[index] = self._pos.get(index, 0) + 1
        elif value < 0.0:
            index = math.ceil(math.log(-value) / self._log_gamma)
            self._neg[index] = self._neg.get(index, 0) + 1
        else:
            self._zero += 1
        self._dirty = True

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    def add_repeated(self, value: float, count: int) -> None:
        """Add ``count`` copies of ``value`` into one bucket update.

        O(1) regardless of ``count`` — synthesized streams from the
        fidelity batch tier land in the same bucket their value would
        have reached via :meth:`add`, so the alpha envelope holds
        unchanged.
        """
        if count < 0:
            raise ValueError(f"negative repeat count: {count}")
        if count == 0:
            return
        self.count += count
        self._sum += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value > 0.0:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._pos[index] = self._pos.get(index, 0) + count
        elif value < 0.0:
            index = math.ceil(math.log(-value) / self._log_gamma)
            self._neg[index] = self._neg.get(index, 0) + count
        else:
            self._zero += count
        self._dirty = True

    def merge(self, other: "StreamingHistogram") -> None:
        """Exact bucket-wise merge of another histogram with equal alpha."""
        if not isinstance(other, StreamingHistogram):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if abs(other.alpha - self.alpha) > 1e-12:
            raise ValueError(
                f"bucket layouts differ: alpha {self.alpha} vs {other.alpha}"
            )
        for index, n in other._pos.items():
            self._pos[index] = self._pos.get(index, 0) + n
        for index, n in other._neg.items():
            self._neg[index] = self._neg.get(index, 0) + n
        self._zero += other._zero
        self.count += other.count
        self._sum += other._sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        self._dirty = True

    # -- reads -----------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the histogram's memory footprint proxy."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else 0.0

    def _representative(self, index: int) -> float:
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    def _ordered(self):
        if self._dirty:
            self._sorted_neg = sorted(self._neg, reverse=True)  # most negative first
            self._sorted_pos = sorted(self._pos)
            self._dirty = False
        return self._sorted_neg, self._sorted_pos

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile within ``alpha`` relative error.

        Raises :class:`ValueError` when empty, mirroring the exact
        backend — the two are drop-in interchangeable, including in
        what they refuse to answer.
        """
        if not self.count:
            raise ValueError("percentile() of an empty histogram is undefined")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        rank = max(1, math.ceil(pct / 100.0 * self.count))
        sorted_neg, sorted_pos = self._ordered()
        seen = 0
        value = None
        for index in sorted_neg:
            seen += self._neg[index]
            if seen >= rank:
                value = -self._representative(index)
                break
        if value is None:
            seen += self._zero
            if seen >= rank:
                value = 0.0
        if value is None:
            for index in sorted_pos:
                seen += self._pos[index]
                if seen >= rank:
                    value = self._representative(index)
                    break
        if value is None:  # rank == count and rounding dust: take the top
            value = self.maximum
        # Representatives can poke past the observed range; min/max are
        # tracked exactly, so clamping only ever improves the estimate.
        return min(max(value, self.minimum), self.maximum)

    def summary(self) -> Dict[str, float]:
        """Same shape as the exact backend's summary (plus nothing)."""
        if not self.count:  # empty is reportable, all-zero by contract
            return {"count": 0.0, "mean": 0.0, "min": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    # -- serialization ---------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Picklable/JSON-able snapshot, invertible via :meth:`from_state`."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self._sum,
            "min": self.minimum,
            "max": self.maximum,
            "zero": self._zero,
            "pos": dict(self._pos),
            "neg": dict(self._neg),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingHistogram":
        hist = cls(relative_error=state["alpha"])
        hist.count = int(state["count"])
        hist._sum = float(state["sum"])
        hist.minimum = float(state["min"])
        hist.maximum = float(state["max"])
        hist._zero = int(state["zero"])
        # JSON round-trips turn int keys into strings; accept both.
        hist._pos = {int(k): int(v) for k, v in state["pos"].items()}
        hist._neg = {int(k): int(v) for k, v in state["neg"].items()}
        return hist
