"""Self-metering: the overhead of observation, itself observable.

Streaming observability only earns its keep if its own cost is visible:
the ``obs.overhead.*`` metric family reports how many records the
tracer holds vs spilled, how many buckets the streaming histograms
occupy, and — via :class:`MemoryWatermark` — the tracemalloc high-water
mark of the run.  ``python -m repro run … --metrics`` prints the family
as a final "Observability overhead" table; the constant-memory CI gate
(``scripts/check_constant_memory.py``) asserts on the watermark.

Metric names (see docs/OBSERVABILITY.md):

* ``obs.overhead.trace.records`` — total records recorded
* ``obs.overhead.trace.buffered`` — records currently in memory
* ``obs.overhead.trace.spilled_records`` / ``.spill_bytes`` /
  ``.shards`` — what went to disk (0 for the in-memory tracer)
* ``obs.overhead.hist.metrics`` / ``.streaming_metrics`` — histogram
  metrics in the registry / how many run the streaming backend
* ``obs.overhead.hist.buckets`` — occupied streaming buckets (the
  memory footprint proxy); ``.samples`` — exact samples still stored
* ``obs.overhead.mem.peak_kb`` — tracemalloc peak, when a watermark ran
"""

from __future__ import annotations

import tracemalloc
from typing import Optional

from repro.obs.metrics import HistogramMetric, MetricsRegistry, StreamingHistogram
from repro.obs.tracer import Tracer


class MemoryWatermark:
    """Tracemalloc-based high-water gauge with ownership semantics.

    ``start()`` begins tracing only if tracemalloc is not already
    running (so a watermark nested inside another profiler observes
    without disturbing it), ``peak_bytes()`` reads the high-water mark,
    and ``stop()`` stops tracing only if this watermark started it.
    Tracemalloc costs real time and memory — this is an opt-in
    measurement tool, not an always-on monitor.
    """

    def __init__(self) -> None:
        self._started_here = False
        self._peak = 0

    def start(self) -> "MemoryWatermark":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True
        tracemalloc.reset_peak()
        return self

    def sample(self) -> int:
        """Record and return the peak traced bytes since :meth:`start`."""
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if peak > self._peak:
                self._peak = peak
        return self._peak

    def peak_bytes(self) -> int:
        return self.sample()

    @property
    def peak_kb(self) -> float:
        return self.sample() / 1024.0

    def stop(self) -> int:
        """Final peak in bytes; stops tracemalloc if this object started it."""
        peak = self.sample()
        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_here = False
        return peak

    def __enter__(self) -> "MemoryWatermark":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def publish_overhead(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    source_registry: Optional[MetricsRegistry] = None,
    watermark: Optional[MemoryWatermark] = None,
) -> MetricsRegistry:
    """Fill the ``obs.overhead.*`` family from live observability state.

    ``registry`` receives the overhead counters; ``source_registry`` is
    the registry being measured (defaults to ``registry`` itself, but
    the CLI keeps them separate so the overhead table never pollutes an
    experiment snapshot).
    """
    if source_registry is None:
        source_registry = registry
    if tracer is not None:
        registry.counter("obs.overhead.trace.records").value = float(len(tracer))
        registry.counter("obs.overhead.trace.buffered").value = float(len(tracer.events))
        registry.counter("obs.overhead.trace.spilled_records").value = float(
            tracer.spilled_records
        )
        registry.counter("obs.overhead.trace.spill_bytes").value = float(tracer.spilled_bytes)
        registry.counter("obs.overhead.trace.shards").value = float(
            getattr(tracer, "shard_count", 0)
        )
    hist_metrics = streaming_metrics = buckets = exact_samples = 0
    for _name, metric in source_registry:
        if not isinstance(metric, HistogramMetric):
            continue
        hist_metrics += 1
        if isinstance(metric.samples, StreamingHistogram):
            streaming_metrics += 1
            buckets += metric.samples.bucket_count
        else:
            exact_samples += len(metric.samples)
    registry.counter("obs.overhead.hist.metrics").value = float(hist_metrics)
    registry.counter("obs.overhead.hist.streaming_metrics").value = float(streaming_metrics)
    registry.counter("obs.overhead.hist.buckets").value = float(buckets)
    registry.counter("obs.overhead.hist.samples").value = float(exact_samples)
    if watermark is not None:
        registry.counter("obs.overhead.mem.peak_kb").value = round(watermark.peak_kb, 1)
    return registry
