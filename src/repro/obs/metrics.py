"""Registry of named counters, gauges, and histograms.

Components register metrics under hierarchical dotted names
(``dsa0.wq1.occupancy``, ``mem.dram0.rd.bytes``, ``core0.wait.spin_ns``)
and update them as the simulation runs.  A registry is clock-free: the
time-weighted gauges take ``now`` explicitly, so one registry can be
shared across several :class:`~repro.sim.engine.Environment` instances
(the CLI installs a shared registry for ``--metrics``).

Hot-path discipline: components create their metric objects **once**
(at construction) and keep them in attributes, so each update is an
attribute access plus a float add — no per-event name lookup.

Histogram backends
------------------
:class:`HistogramMetric` keeps sample distributions behind one of two
backends:

* ``exact`` — :class:`repro.sim.stats.Histogram`, stores every sample;
  exact percentiles, O(n) memory.
* ``streaming`` — :class:`repro.obs.streaming.StreamingHistogram`,
  fixed log buckets; percentiles within a documented 1% relative error,
  O(1) memory, exact bucket-wise merge.

The default mode is ``auto``: exact until
:data:`AUTO_STREAMING_THRESHOLD` samples (small runs keep exact
percentiles and byte-identical output), then the samples are folded
into a streaming histogram and memory stops growing.  Select globally
with :func:`set_default_hist_backend` (the CLI's ``--hist-backend``) or
per metric via ``registry.histogram(name, backend=...)``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.obs.streaming import StreamingHistogram
from repro.sim.stats import Histogram as _SampleHistogram
from repro.sim.stats import TimeWeightedStat

#: ``auto`` histograms hold exact samples up to this count, then spill
#: into fixed buckets.  High enough that every quick-mode experiment
#: stays exact; low enough that a million-sample run stays O(1).
AUTO_STREAMING_THRESHOLD = 65536

_BACKENDS = ("auto", "exact", "streaming")

_default_backend = "auto"


def set_default_hist_backend(backend: str) -> None:
    """Set the backend new :class:`HistogramMetric` objects default to."""
    if backend not in _BACKENDS:
        raise ValueError(f"unknown histogram backend {backend!r}; choose from {_BACKENDS}")
    global _default_backend
    _default_backend = backend


def default_hist_backend() -> str:
    return _default_backend


class Counter:
    """Monotonic accumulator (counts or totals, e.g. bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Piecewise-constant level, time-weighted over simulated time.

    Backed by :class:`~repro.sim.stats.TimeWeightedStat`.  When a shared
    registry sees updates from a *new* simulation (time goes backwards),
    the gauge restarts its averaging epoch at the new clock rather than
    raising — the level and maximum carry over, the mean restarts.
    """

    __slots__ = ("name", "_stat")

    def __init__(self, name: str):
        self.name = name
        self._stat = TimeWeightedStat()

    def update(self, now: float, level: float) -> None:
        if now < self._stat.last_time:
            self._stat.restart_epoch(now)
        self._stat.update(now, level)

    @property
    def level(self) -> float:
        return self._stat.level

    @property
    def maximum(self) -> float:
        return self._stat.maximum

    def mean(self, now: Optional[float] = None) -> float:
        return self._stat.mean(now)


class HistogramMetric:
    """Named sample distribution behind a selectable backend.

    ``samples`` is the live backend object — an exact
    :class:`~repro.sim.stats.Histogram` or a
    :class:`~repro.obs.streaming.StreamingHistogram`; both expose
    ``add``/``percentile``/``summary``/``mean``/``__len__``, so readers
    don't care which is active.  In ``auto`` mode the metric starts
    exact and promotes itself to streaming when it crosses
    :data:`AUTO_STREAMING_THRESHOLD` samples.
    """

    __slots__ = ("name", "samples", "_auto_left")

    def __init__(self, name: str, backend: Optional[str] = None):
        self.name = name
        backend = _default_backend if backend is None else backend
        if backend not in _BACKENDS:
            raise ValueError(f"unknown histogram backend {backend!r}; choose from {_BACKENDS}")
        if backend == "streaming":
            self.samples: Union[_SampleHistogram, StreamingHistogram] = StreamingHistogram()
            self._auto_left: Optional[int] = None
        else:
            self.samples = _SampleHistogram()
            self._auto_left = AUTO_STREAMING_THRESHOLD if backend == "auto" else None

    @property
    def backend(self) -> str:
        """The *active* backend: ``exact`` or ``streaming``."""
        return "streaming" if isinstance(self.samples, StreamingHistogram) else "exact"

    def add(self, value: float) -> None:
        self.samples.add(value)
        if self._auto_left is not None:
            self._auto_left -= 1
            if self._auto_left <= 0:
                self._promote()

    def _promote(self) -> None:
        """Fold the exact samples into fixed buckets; stop storing them."""
        streaming = StreamingHistogram()
        streaming.extend(self.samples.values)
        self.samples = streaming
        self._auto_left = None

    def percentile(self, pct: float) -> float:
        return self.samples.percentile(pct)

    def summary(self) -> Dict[str, float]:
        return self.samples.summary()

    # -- merge / serialization ------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Backend-tagged state; merged exactly by :meth:`absorb_state`."""
        if isinstance(self.samples, StreamingHistogram):
            return {"backend": "streaming", "state": self.samples.state()}
        return {"backend": "exact", "samples": self.samples.values}

    def absorb_state(self, state: Dict[str, Any]) -> None:
        """Fold a worker histogram's exported state in, exactly.

        exact+exact extends samples; streaming+streaming merges bucket
        counts; a mixed pair promotes the exact side first (streaming
        wins — its error bound then covers the merged result).
        """
        incoming_streaming = state["backend"] == "streaming"
        if incoming_streaming and not isinstance(self.samples, StreamingHistogram):
            self._promote()
        if isinstance(self.samples, StreamingHistogram):
            if incoming_streaming:
                self.samples.merge(StreamingHistogram.from_state(state["state"]))
            else:
                self.samples.extend(state["samples"])
        else:
            self.samples.extend(state["samples"])
            if self._auto_left is not None:
                self._auto_left = AUTO_STREAMING_THRESHOLD - len(self.samples)
                if self._auto_left <= 0:
                    self._promote()


Metric = Union[Counter, Gauge, HistogramMetric]


class MetricsRegistry:
    """Get-or-create store of named metrics, snapshotable to a flat dict."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def _get_or_create(self, name: str, kind: type, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, backend: Optional[str] = None) -> HistogramMetric:
        """Get or create a histogram; ``backend`` only applies on creation."""
        if name in self._metrics:
            return self._get_or_create(name, HistogramMetric)  # type: ignore[return-value]
        return self._get_or_create(name, HistogramMetric, backend=backend)  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into ``{dotted.name: value}``.

        Counters export their value under their own name; gauges export
        ``.level`` / ``.mean`` / ``.max`` leaves; histograms export
        ``.count`` / ``.mean`` / ``.p50`` / ``.p99`` / ``.max`` leaves.
        """
        flat: Dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                flat[name] = metric.value
            elif isinstance(metric, Gauge):
                flat[f"{name}.level"] = metric.level
                flat[f"{name}.mean"] = metric.mean()
                flat[f"{name}.max"] = metric.maximum
            else:
                summary = metric.summary()
                for leaf in ("count", "mean", "p50", "p99", "max"):
                    flat[f"{name}.{leaf}"] = summary[leaf]
        return dict(sorted(flat.items()))

    def export_state(self) -> Dict[str, Tuple[str, Any]]:
        """Serializable live state: ``{name: (kind, payload)}``.

        Unlike :meth:`snapshot`, this is invertible — histograms carry
        their sample lists (exact) or bucket counts (streaming), gauges
        their full time-weighted state — so a worker registry can be
        folded into a parent with :meth:`absorb_state` *without* losing
        distribution shape.  Payloads are plain dicts/lists (picklable
        and JSON-able).
        """
        state: Dict[str, Tuple[str, Any]] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Counter):
                state[name] = ("counter", metric.value)
            elif isinstance(metric, Gauge):
                state[name] = ("gauge", metric._stat.state())
            else:
                state[name] = ("histogram", metric.export_state())
        return state

    def absorb_state(self, state: Dict[str, Tuple[str, Any]]) -> None:
        """Merge an :meth:`export_state` dict into this registry, exactly.

        Counters sum; histograms merge sample-for-sample (exact) or
        bucket-for-bucket (streaming), so a merged ``p99`` is the ``p99``
        of the union, not the last worker's value.  Gauges merge
        conservatively: the maximum is the max of maxima, the level is
        the incoming level, and the mean is the span-weighted average of
        the two epochs (exact when the epochs cover disjoint runs, which
        is how the parallel runner uses it).
        """
        for name, (kind, payload) in state.items():
            if kind == "counter":
                self.counter(name).value += float(payload)
            elif kind == "gauge":
                gauge = self.gauge(name)
                incoming = TimeWeightedStat.from_state(payload)
                mine = gauge._stat
                if mine.elapsed <= 0 and mine.maximum == 0.0 and mine.level == 0.0:
                    gauge._stat = incoming
                    continue
                span = mine.elapsed + incoming.elapsed
                if span > 0:
                    area = mine.mean() * mine.elapsed + incoming.mean() * incoming.elapsed
                    merged = TimeWeightedStat(start_time=0.0, initial=0.0)
                    merged.update(span, incoming.level)
                    merged._area = area  # reuse the stat's own integrator
                    gauge._stat = merged
                gauge._stat.maximum = max(mine.maximum, incoming.maximum)
            elif kind == "histogram":
                self.histogram(name).absorb_state(payload)
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")

    def absorb_flat(self, flat: Dict[str, float]) -> None:
        """Fold a flat :meth:`snapshot` dict in as plain counters.

        Lossy fallback for payloads that only carry a snapshot (old
        cache entries): snapshot leaves (``foo.level``, ``foo.p99``, …)
        cannot be turned back into live gauges or histograms, so each
        leaf lands as a counter holding the final value — which is all
        the CLI's rendering paths need.  A leaf that already exists as a
        counter is overwritten, not summed (snapshots are absolute
        values, not deltas).  Prefer :meth:`absorb_state` wherever the
        producer can export live state.
        """
        for name, value in flat.items():
            self.counter(name).value = float(value)

    def clear(self) -> None:
        self._metrics.clear()


_installed: Optional[MetricsRegistry] = None


def install_metrics(registry: MetricsRegistry) -> None:
    """Share ``registry`` with every Environment created afterwards."""
    global _installed
    _installed = registry


def uninstall_metrics() -> None:
    global _installed
    _installed = None


def installed_metrics() -> Optional[MetricsRegistry]:
    return _installed
