"""Registry of named counters, gauges, and histograms.

Components register metrics under hierarchical dotted names
(``dsa0.wq1.occupancy``, ``mem.dram0.rd.bytes``, ``core0.wait.spin_ns``)
and update them as the simulation runs.  A registry is clock-free: the
time-weighted gauges take ``now`` explicitly, so one registry can be
shared across several :class:`~repro.sim.engine.Environment` instances
(the CLI installs a shared registry for ``--metrics``).

Hot-path discipline: components create their metric objects **once**
(at construction) and keep them in attributes, so each update is an
attribute access plus a float add — no per-event name lookup.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from repro.sim.stats import Histogram as _SampleHistogram
from repro.sim.stats import TimeWeightedStat


class Counter:
    """Monotonic accumulator (counts or totals, e.g. bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Piecewise-constant level, time-weighted over simulated time.

    Backed by :class:`~repro.sim.stats.TimeWeightedStat`.  When a shared
    registry sees updates from a *new* simulation (time goes backwards),
    the gauge restarts its averaging epoch at the new clock rather than
    raising — the level and maximum carry over, the mean restarts.
    """

    __slots__ = ("name", "_stat")

    def __init__(self, name: str):
        self.name = name
        self._stat = TimeWeightedStat()

    def update(self, now: float, level: float) -> None:
        if now < self._stat._last_time:
            fresh = TimeWeightedStat(start_time=now, initial=self._stat.level)
            fresh.maximum = max(self._stat.maximum, self._stat.level)
            self._stat = fresh
        self._stat.update(now, level)

    @property
    def level(self) -> float:
        return self._stat.level

    @property
    def maximum(self) -> float:
        return self._stat.maximum

    def mean(self, now: Optional[float] = None) -> float:
        return self._stat.mean(now)


class HistogramMetric:
    """Named sample distribution with exact percentiles."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str):
        self.name = name
        self.samples = _SampleHistogram()

    def add(self, value: float) -> None:
        self.samples.add(value)


Metric = Union[Counter, Gauge, HistogramMetric]


class MetricsRegistry:
    """Get-or-create store of named metrics, snapshotable to a flat dict."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, Metric]]:
        return iter(sorted(self._metrics.items()))

    def _get_or_create(self, name: str, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> HistogramMetric:
        return self._get_or_create(name, HistogramMetric)  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, float]:
        """Flatten every metric into ``{dotted.name: value}``.

        Counters export their value under their own name; gauges export
        ``.level`` / ``.mean`` / ``.max`` leaves; histograms export
        ``.count`` / ``.mean`` / ``.p50`` / ``.p99`` / ``.max`` leaves.
        """
        flat: Dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                flat[name] = metric.value
            elif isinstance(metric, Gauge):
                flat[f"{name}.level"] = metric.level
                flat[f"{name}.mean"] = metric.mean()
                flat[f"{name}.max"] = metric.maximum
            else:
                summary = metric.samples.summary()
                for leaf in ("count", "mean", "p50", "p99", "max"):
                    flat[f"{name}.{leaf}"] = summary[leaf]
        return dict(sorted(flat.items()))

    def absorb_flat(self, flat: Dict[str, float]) -> None:
        """Fold a flat :meth:`snapshot` dict in as plain counters.

        Used by the parallel runner to merge worker-registry snapshots
        into the parent registry: snapshot leaves (``foo.level``,
        ``foo.p99``, …) cannot be turned back into live gauges or
        histograms, so each leaf lands as a counter holding the final
        value — which is all the CLI's rendering paths need.  A leaf
        that already exists as a counter is overwritten, not summed
        (snapshots are absolute values, not deltas).
        """
        for name, value in flat.items():
            self.counter(name).value = float(value)

    def clear(self) -> None:
        self._metrics.clear()


_installed: Optional[MetricsRegistry] = None


def install_metrics(registry: MetricsRegistry) -> None:
    """Share ``registry`` with every Environment created afterwards."""
    global _installed
    _installed = registry


def uninstall_metrics() -> None:
    global _installed
    _installed = None


def installed_metrics() -> Optional[MetricsRegistry]:
    return _installed
