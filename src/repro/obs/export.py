"""Exporters: Chrome/Perfetto ``trace.json`` and metrics text tables.

The Chrome trace-event format is a JSON array of event objects with
``ph`` (phase), ``ts`` (microseconds), ``pid``/``tid``, ``name``,
``cat``, and optional ``args``/``dur`` fields.  The output of
:func:`write_chrome_trace` loads directly in ``ui.perfetto.dev`` or
``chrome://tracing``.  Each tracer *agent* becomes one process row
(named via ``process_name`` metadata events) and each *track* one
thread row inside it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator, List

from repro.analysis.tables import Table
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, TraceRecord

#: Simulated time is in nanoseconds; Chrome ``ts`` is in microseconds.
_NS_TO_US = 1e-3


def iter_chrome_events(records: Iterable[TraceRecord]) -> Iterator[Dict[str, Any]]:
    """Reshape trace records into Chrome trace-event dicts, lazily.

    One record in, one event dict out (plus a ``process_name`` metadata
    event the first time each agent appears), so a spilled
    :class:`~repro.obs.tracer.RingTracer` trace streams through without
    ever being materialized as a list.
    """
    pids: Dict[str, int] = {}
    for phase, ts, name, cat, agent, track, args in records:
        pid = pids.get(agent)
        if pid is None:
            pid = len(pids) + 1
            pids[agent] = pid
            yield {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": agent},
            }
        event: Dict[str, Any] = {
            "ph": phase,
            "ts": ts * _NS_TO_US,
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": track,
        }
        if phase == "X":
            args = dict(args) if args else {}
            event["dur"] = args.pop("_dur", 0.0) * _NS_TO_US
        if phase == "i":
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        yield event


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Convert a tracer's records into Chrome trace-event dicts."""
    return list(iter_chrome_events(tracer.iter_records()))


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace as a JSON event array; returns the event count.

    Events are streamed to the file one at a time — shard merge for a
    spilling tracer happens inside :meth:`Tracer.iter_records` — so the
    writer's memory use is O(1) in trace length.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("[")
        for event in iter_chrome_events(tracer.iter_records()):
            if count:
                fh.write(", ")
            fh.write(json.dumps(event, default=str))
            count += 1
        fh.write("]")
    return count


def metrics_table(registry: MetricsRegistry, title: str = "Metrics") -> Table:
    """Render a registry snapshot as an aligned text table."""
    return snapshot_table(registry.snapshot(), title=title)


def snapshot_table(flat: Dict[str, float], title: str = "Metrics") -> Table:
    """Render a flat ``{name: value}`` metrics snapshot as a table.

    Same output as :func:`metrics_table`, but takes the snapshot dict
    directly — the form results carry (``ExperimentResult.metrics``), so
    cached and worker-produced results render without a live registry.
    """
    table = Table(title, ["Metric", "Value"])
    for name, value in sorted(flat.items()):
        if value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = f"{value:.2f}"
        table.add_row(name, rendered)
    return table
