"""Exporters: Chrome/Perfetto ``trace.json`` and metrics text tables.

The Chrome trace-event format is a JSON array of event objects with
``ph`` (phase), ``ts`` (microseconds), ``pid``/``tid``, ``name``,
``cat``, and optional ``args``/``dur`` fields.  The output of
:func:`write_chrome_trace` loads directly in ``ui.perfetto.dev`` or
``chrome://tracing``.  Each tracer *agent* becomes one process row
(named via ``process_name`` metadata events) and each *track* one
thread row inside it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.tables import Table
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Simulated time is in nanoseconds; Chrome ``ts`` is in microseconds.
_NS_TO_US = 1e-3


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Convert a tracer's records into Chrome trace-event dicts."""
    pids: Dict[str, int] = {}
    out: List[Dict[str, Any]] = []
    for phase, ts, name, cat, agent, track, args in tracer.events:
        pid = pids.get(agent)
        if pid is None:
            pid = len(pids) + 1
            pids[agent] = pid
            out.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": agent},
                }
            )
        event: Dict[str, Any] = {
            "ph": phase,
            "ts": ts * _NS_TO_US,
            "name": name,
            "cat": cat,
            "pid": pid,
            "tid": track,
        }
        if phase == "X":
            args = dict(args) if args else {}
            event["dur"] = args.pop("_dur", 0.0) * _NS_TO_US
        if phase == "i":
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        out.append(event)
    return out


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace as a JSON event array; returns the event count."""
    events = chrome_trace_events(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh)
    return len(events)


def metrics_table(registry: MetricsRegistry, title: str = "Metrics") -> Table:
    """Render a registry snapshot as an aligned text table."""
    return snapshot_table(registry.snapshot(), title=title)


def snapshot_table(flat: Dict[str, float], title: str = "Metrics") -> Table:
    """Render a flat ``{name: value}`` metrics snapshot as a table.

    Same output as :func:`metrics_table`, but takes the snapshot dict
    directly — the form results carry (``ExperimentResult.metrics``), so
    cached and worker-produced results render without a live registry.
    """
    table = Table(title, ["Metric", "Value"])
    for name, value in sorted(flat.items()):
        if value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = f"{value:.2f}"
        table.add_row(name, rendered)
    return table
