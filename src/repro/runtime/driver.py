"""IDXD-like kernel driver model: control path and portal mapping.

The real driver exposes each WQ's MMIO portal as a char device that
applications ``mmap`` (paper §3.3).  The model mirrors the contract:

* a device must be *enabled* before portals can be opened;
* a dedicated WQ portal can be held by only one client at a time;
* a shared WQ portal can be opened by any number of clients;
* opening a portal attaches the caller's address space (PASID) to the
  device and IOMMU — the SVM path that removes memory pinning (F1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.dsa.config import DeviceConfig, DsaTimingParams, WqMode
from repro.dsa.device import DsaDevice
from repro.mem.address import AddressSpace
from repro.mem.system import MemorySystem
from repro.sim.engine import Environment


class DriverError(RuntimeError):
    """Control-path misuse (double enable, busy DWQ, disabled device)."""


@dataclass
class Portal:
    """A mapped WQ portal handle held by one client."""

    device: DsaDevice
    wq_id: int
    pasid: int

    @property
    def mode(self) -> WqMode:
        return self.device.wq(self.wq_id).mode


class IdxdDriver:
    """Device registry, enable/disable lifecycle, portal arbitration."""

    def __init__(self, env: Environment, memsys: MemorySystem):
        self.env = env
        self.memsys = memsys
        self._devices: Dict[str, DsaDevice] = {}
        self._enabled: Set[str] = set()
        self._dwq_owners: Dict[Tuple[str, int], int] = {}
        self._listeners: List[Callable[[str, bool], None]] = []

    # -- control path -----------------------------------------------------------
    def register_device(
        self,
        name: str,
        config: Optional[DeviceConfig] = None,
        socket: int = 0,
        timing: Optional[DsaTimingParams] = None,
    ) -> DsaDevice:
        """Create a device instance (disabled until :meth:`enable`)."""
        if name in self._devices:
            raise DriverError(f"device {name!r} already registered")
        device = DsaDevice(
            self.env, self.memsys, config=config, timing=timing, name=name, socket=socket
        )
        device.enabled = False
        self._devices[name] = device
        return device

    def device(self, name: str) -> DsaDevice:
        if name not in self._devices:
            raise DriverError(f"unknown device {name!r}")
        return self._devices[name]

    @property
    def devices(self) -> Dict[str, DsaDevice]:
        return dict(self._devices)

    def enable(self, name: str) -> None:
        device = self.device(name)  # existence check
        if name in self._enabled:
            raise DriverError(f"device {name!r} already enabled")
        self._enabled.add(name)
        device.enabled = True
        self._notify(name, True)

    def disable(self, name: str) -> None:
        """Take a device offline: abort queued work, notify schedulers.

        Descriptors still waiting in the device's WQs complete with
        ``DEVICE_DISABLED`` and zero bytes so their waiters wake and can
        re-route (see :mod:`repro.runtime.recovery` / :mod:`repro.fleet`);
        work already dispatched to an engine drains normally.
        """
        if name not in self._enabled:
            raise DriverError(f"device {name!r} not enabled")
        device = self.device(name)
        self._enabled.discard(name)
        device.enabled = False
        stale = [key for key in self._dwq_owners if key[0] == name]
        for key in stale:
            del self._dwq_owners[key]
        device.abort_queued()
        self._notify(name, False)

    def is_enabled(self, name: str) -> bool:
        return name in self._enabled

    def subscribe(self, callback: Callable[[str, bool], None]) -> None:
        """Register for enable/disable notifications.

        Fleet schedulers subscribe so placement reacts to device loss
        without polling; callbacks fire as ``callback(name, enabled)``
        after the lifecycle change (and its queued-work abort) has
        taken effect.
        """
        self._listeners.append(callback)

    def _notify(self, name: str, enabled: bool) -> None:
        for callback in list(self._listeners):
            callback(name, enabled)

    # -- data-path setup -----------------------------------------------------------
    def open_portal(self, name: str, wq_id: int, space: AddressSpace) -> Portal:
        """mmap a WQ portal for a client process."""
        device = self.device(name)
        if name not in self._enabled:
            raise DriverError(f"device {name!r} is not enabled")
        wq = device.wq(wq_id)  # raises KeyError for bad ids
        key = (name, wq_id)
        if wq.mode is WqMode.DEDICATED:
            owner = self._dwq_owners.get(key)
            if owner is not None and owner != space.pasid:
                raise DriverError(
                    f"DWQ {wq_id} on {name!r} is dedicated to PASID {owner}"
                )
            self._dwq_owners[key] = space.pasid
        device.attach_space(space)
        return Portal(device=device, wq_id=wq_id, pasid=space.pasid)

    def close_portal(self, portal: Portal) -> None:
        key = (portal.device.name, portal.wq_id)
        if self._dwq_owners.get(key) == portal.pasid:
            del self._dwq_owners[key]
