"""Software ecosystem: driver, configuration tool, DML, DTO (paper §3.3, §5).

This package is the model equivalent of the DSA software stack:

* :mod:`repro.runtime.driver` — IDXD-like kernel driver (control path,
  portal mapping, PASID attachment).
* :mod:`repro.runtime.accel_config` — libaccel-config-like user API to
  describe and apply device configurations.
* :mod:`repro.runtime.submit` / :mod:`repro.runtime.wait` — data path:
  MOVDIR64B / ENQCMD submission and spin / UMWAIT / interrupt waiting.
* :mod:`repro.runtime.dml` — high-level data-mover API (sync/async
  jobs, batching, device load balancing).
* :mod:`repro.runtime.dto` — transparent offload of ``mem*`` calls with
  a minimum-size threshold and software fallback.
* :mod:`repro.runtime.recovery` — partial-completion recovery for
  BOF=0 descriptors: bounded retries, backoff, software degradation.
"""

from repro.runtime.driver import IdxdDriver, Portal
from repro.runtime.accel_config import AccelConfig
from repro.runtime.dml import Dml, DmlJob, DmlPath
from repro.runtime.dto import Dto
from repro.runtime.recovery import RecoveryResult, RetryPolicy, recover
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for

__all__ = [
    "IdxdDriver",
    "Portal",
    "AccelConfig",
    "Dml",
    "DmlJob",
    "DmlPath",
    "Dto",
    "RecoveryResult",
    "RetryPolicy",
    "recover",
    "submit",
    "prepare_descriptor",
    "WaitMode",
    "wait_for",
]
