"""Completion waiting strategies: spin, UMWAIT, interrupt (paper §3.3, §4.4).

Each strategy books the waiting period into a different cycle category
on the waiting core, which is exactly what Fig 11 (UMWAIT cycle share)
measures.
"""

from __future__ import annotations

import enum
from typing import Generator, Union

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.sim.engine import Environment

Descriptor = Union[WorkDescriptor, BatchDescriptor]

DEFAULT_COSTS = InstructionCosts()


class WaitMode(enum.Enum):
    SPIN = "spin"  # busy-poll the completion record
    UMWAIT = "umwait"  # UMONITOR + UMWAIT optimized wait state
    INTERRUPT = "interrupt"  # sleep until the completion interrupt


def wait_for(
    env: Environment,
    core: CpuCore,
    descriptor: Descriptor,
    mode: WaitMode = WaitMode.UMWAIT,
    costs: InstructionCosts = DEFAULT_COSTS,
) -> Generator:
    """Block until the descriptor completes; returns the wait time (ns)."""
    event = descriptor.completion_event
    if event is None:
        raise RuntimeError("descriptor was never submitted (no completion event)")
    tracer = env.tracer
    agent = f"core{core.core_id}"
    traced = tracer.enabled and descriptor.trace_track >= 0
    if mode is WaitMode.UMWAIT:
        yield core.spend(CycleCategory.BUSY, costs.umonitor_ns)
    start = env.now
    if traced:
        tracer.begin(
            start, "wait", "wait", agent, descriptor.trace_track, {"mode": mode.value}
        )
    if not event.triggered:
        yield event
    waited = env.now - start
    if mode is WaitMode.SPIN:
        core.account(CycleCategory.WAIT_SPIN, waited)
        env.metrics.counter(f"{agent}.wait.spin_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.poll_check_ns)
    elif mode is WaitMode.UMWAIT:
        core.account(CycleCategory.UMWAIT, waited)
        env.metrics.counter(f"{agent}.wait.umwait_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.umwait_wake_ns)
    else:
        core.account(CycleCategory.IDLE, waited)
        env.metrics.counter(f"{agent}.wait.interrupt_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.interrupt_ns)
    if traced:
        tracer.end(
            env.now, "wait", "wait", agent, descriptor.trace_track, {"waited_ns": waited}
        )
    return waited
