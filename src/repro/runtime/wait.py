"""Completion waiting strategies: spin, UMWAIT, interrupt (paper §3.3, §4.4).

Each strategy books the waiting period into a different cycle category
on the waiting core, which is exactly what Fig 11 (UMWAIT cycle share)
measures.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional, Union

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.sim.engine import Environment

Descriptor = Union[WorkDescriptor, BatchDescriptor]

DEFAULT_COSTS = InstructionCosts()


class WaitMode(enum.Enum):
    SPIN = "spin"  # busy-poll the completion record
    UMWAIT = "umwait"  # UMONITOR + UMWAIT optimized wait state
    INTERRUPT = "interrupt"  # sleep until the completion interrupt


def wait_for(
    env: Environment,
    core: CpuCore,
    descriptor: Descriptor,
    mode: WaitMode = WaitMode.UMWAIT,
    costs: InstructionCosts = DEFAULT_COSTS,
    max_wait_ns: Optional[float] = None,
) -> Generator:
    """Block until the descriptor completes; returns the wait time (ns).

    ``max_wait_ns`` models the ``IA32_UMWAIT_CONTROL`` TSC deadline for
    :attr:`WaitMode.UMWAIT`: the core wakes at the deadline even without
    a completion store, re-checks the monitored cacheline, and re-arms.
    Each armed deadline is a real calendar timer; when the completion
    lands first, the pending deadline is **cancelled**
    (:meth:`repro.sim.engine.Event.cancel`) instead of left to fire into
    a stale no-op.  ``None`` (the default) waits in one shot.
    """
    if max_wait_ns is not None and max_wait_ns <= 0:
        raise ValueError(f"max_wait_ns must be positive, got {max_wait_ns}")
    event = descriptor.completion_event
    if event is None:
        raise RuntimeError("descriptor was never submitted (no completion event)")
    tracer = env.tracer
    agent = core.trace_agent
    traced = tracer.enabled and descriptor.trace_track >= 0
    if mode is WaitMode.UMWAIT:
        yield core.spend(CycleCategory.BUSY, costs.umonitor_ns)
    start = env.now
    if traced:
        tracer.begin(
            start, "wait", "wait", agent, descriptor.trace_track, {"mode": mode.value}
        )
    if not event.triggered:
        if mode is WaitMode.UMWAIT and max_wait_ns is not None:
            deadline_wakes = 0
            while not event.triggered:
                deadline = env.timeout(max_wait_ns)
                yield env.any_of([event, deadline])
                if event.triggered:
                    # Completion won the race: the armed deadline is
                    # stale the instant we stop monitoring.
                    deadline.cancel()
                else:
                    deadline_wakes += 1
            if deadline_wakes:
                env.metrics.counter(f"{agent}.wait.umwait_deadline_wakes").add(
                    deadline_wakes
                )
        else:
            yield event
    waited = env.now - start
    if mode is WaitMode.SPIN:
        core.account(CycleCategory.WAIT_SPIN, waited)
        env.metrics.counter(f"{agent}.wait.spin_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.poll_check_ns)
    elif mode is WaitMode.UMWAIT:
        core.account(CycleCategory.UMWAIT, waited)
        env.metrics.counter(f"{agent}.wait.umwait_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.umwait_wake_ns)
    else:
        core.account(CycleCategory.IDLE, waited)
        env.metrics.counter(f"{agent}.wait.interrupt_ns").add(waited)
        yield core.spend(CycleCategory.BUSY, costs.interrupt_ns)
    if traced:
        tracer.end(
            env.now, "wait", "wait", agent, descriptor.trace_track, {"waited_ns": waited}
        )
    return waited
