"""Descriptor submission paths (data path, paper §3.3).

Generator helpers meant for ``yield from`` inside client processes.
The mode is decided by the target WQ: dedicated queues take a posted
MOVDIR64B; shared queues take non-posted ENQCMD with a retry loop.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.dsa.config import WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.runtime.driver import Portal
from repro.sim.engine import Environment

Descriptor = Union[WorkDescriptor, BatchDescriptor]

DEFAULT_COSTS = InstructionCosts()


def prepare_descriptor(
    env: Environment,
    core: CpuCore,
    descriptor: Descriptor,
    costs: InstructionCosts = DEFAULT_COSTS,
    allocate: bool = False,
) -> Generator:
    """Model descriptor allocation (optional) and field preparation.

    The paper ignores allocation time for throughput results because
    real applications pre-allocate descriptor rings (§4.2); pass
    ``allocate=True`` only for the Fig 5 breakdown.
    """
    tracer = env.tracer
    if tracer.enabled and descriptor.trace_track < 0:
        descriptor.trace_track = tracer.next_track()
    agent = core.trace_agent
    track = descriptor.trace_track
    if allocate:
        descriptor.times.allocated = env.now
        tracer.begin(env.now, "alloc", "alloc", agent, track)
        yield core.spend(CycleCategory.ALLOC, costs.descriptor_alloc_ns)
        tracer.end(env.now, "alloc", "alloc", agent, track)
    tracer.begin(env.now, "prepare", "prepare", agent, track)
    yield core.spend(CycleCategory.PREPARE, costs.descriptor_prepare_ns)
    descriptor.times.prepared = env.now
    tracer.end(env.now, "prepare", "prepare", agent, track)


def submit(
    env: Environment,
    core: CpuCore,
    portal: Portal,
    descriptor: Descriptor,
    costs: InstructionCosts = DEFAULT_COSTS,
    max_retries: Optional[int] = None,
    source: Optional[str] = None,
) -> Generator:
    """Issue the descriptor through ``portal``; returns retry count.

    * DWQ: one posted MOVDIR64B.  The device raises if software
      overflows the queue (credit tracking is software's job).
    * SWQ: ENQCMD loop until accepted, each attempt paying the full
      non-posted round trip.  ``max_retries`` bounds the loop for
      tests; ``None`` retries forever like a spinning submitter.

    ``source`` tags the submitter for per-source reject/retry
    attribution on shared queues; retry counters are booked through
    :meth:`repro.dsa.wq.WorkQueue.record_retries` (the canonical metric
    naming) rather than assembled here.
    """
    tracer = env.tracer
    if tracer.enabled and descriptor.trace_track < 0:
        descriptor.trace_track = tracer.next_track()
    agent = core.trace_agent
    track = descriptor.trace_track
    if portal.mode is WqMode.DEDICATED:
        tracer.begin(env.now, "movdir64b", "submit", agent, track)
        yield core.spend(CycleCategory.SUBMIT, costs.movdir64b_ns)
        portal.device.submit(descriptor, portal.wq_id, source=source)
        tracer.end(env.now, "movdir64b", "submit", agent, track)
        return 0
    retries = 0
    wq = portal.device.wq(portal.wq_id)
    tracer.begin(env.now, "enqcmd", "submit", agent, track)
    while True:
        yield core.spend(CycleCategory.SUBMIT, costs.enqcmd_ns)
        if portal.device.submit(descriptor, portal.wq_id, source=source):
            if tracer.enabled:
                tracer.end(
                    env.now, "enqcmd", "submit", agent, track, {"retries": retries}
                )
            wq.record_retries(retries, source=source)
            return retries
        retries += 1
        if max_retries is not None and retries >= max_retries:
            tracer.end(env.now, "enqcmd", "submit", agent, track, {"retries": retries})
            # Failed submissions must still account their retries, or
            # congestion vanishes from the metrics exactly when it bites.
            wq.record_retries(retries, source=source)
            raise RuntimeError(
                f"ENQCMD to {portal.device.name} WQ {portal.wq_id} exceeded "
                f"{max_retries} retries"
            )


class DwqCreditTracker:
    """Software-side credit management for a dedicated WQ.

    MOVDIR64B is posted: hardware gives no feedback when a DWQ is
    full, so software must never submit more descriptors than the WQ
    has entries (the driver crashes the model loudly otherwise).  This
    helper implements the standard pattern: take a credit per submit,
    return it when the completion record is reaped.
    """

    def __init__(self, portal: Portal):
        from repro.dsa.config import WqMode

        if portal.mode is not WqMode.DEDICATED:
            raise ValueError("credit tracking is for dedicated WQs (SWQs retry)")
        self.portal = portal
        self._credits = portal.device.wq(portal.wq_id).size

    @property
    def available(self) -> int:
        return self._credits

    def try_acquire(self) -> bool:
        if self._credits <= 0:
            return False
        self._credits -= 1
        return True

    def release(self) -> None:
        size = self.portal.device.wq(self.portal.wq_id).size
        if self._credits >= size:
            raise RuntimeError("credit released without a matching acquire")
        self._credits += 1

    def submit_with_credit(
        self,
        env: Environment,
        core: CpuCore,
        descriptor: Descriptor,
        costs: InstructionCosts = DEFAULT_COSTS,
        poll_ns: float = 50.0,
    ) -> Generator:
        """Wait for a credit if necessary, then MOVDIR64B."""
        while not self.try_acquire():
            yield core.spend(CycleCategory.WAIT_SPIN, poll_ns)
        yield from submit(env, core, self.portal, descriptor, costs)
