"""Partial-completion recovery: resume BOF=0 descriptors after faults.

Paper §4.3 / Appendix B: with BLOCK_ON_FAULT=0 a faulting descriptor
comes back with ``PAGE_FAULT``, ``bytes_completed`` up to the faulting
page, and the faulting address.  Software is expected to *resolve* the
fault (touch the page so the OS maps it) and resubmit only the
remainder — redoing the whole transfer throws away the hardware's
progress, which is exactly the bug this module replaces in the DTO
layer.

:class:`RetryPolicy` bounds the loop: bounded exponential backoff
between attempts, an optional wall-clock deadline, and graceful
degradation to the calibrated software kernels when retries exhaust.
:func:`recover` is a generator — ``yield from`` it inside a simulation
process, like the rest of ``repro.runtime``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cpu.core import CpuCore, CycleCategory
from repro.dsa.descriptor import DescriptorPool, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import RESUMABLE_OPCODES
from repro.runtime.dml import Dml, DmlPath

#: Completion statuses the recovery loop treats as retryable.
RETRYABLE_STATUSES = (StatusCode.PAGE_FAULT, StatusCode.DEVICE_DISABLED)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on the hardware path."""

    #: Failed hardware attempts allowed after the first one.
    max_retries: int = 3
    #: First backoff sleep (ns); doubles (by default) per retry.
    backoff_base_ns: float = 1_000.0
    backoff_multiplier: float = 2.0
    #: Ceiling on any single backoff sleep (ns).
    backoff_cap_ns: float = 64_000.0
    #: Optional wall-clock budget (ns) for the whole recovery, measured
    #: from the first submission; ``None`` = unbounded.
    deadline_ns: Optional[float] = None
    #: CPU time to touch (demand-map) the faulting page before a retry.
    touch_page_ns: float = 600.0
    #: When retries exhaust: finish the tail on the software kernels
    #: (True) or surface the failure status to the caller (False).
    degrade_to_software: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError(f"deadline_ns must be positive: {self.deadline_ns}")
        if self.touch_page_ns < 0:
            raise ValueError(f"touch_page_ns must be >= 0: {self.touch_page_ns}")

    def backoff_ns(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_cap_ns,
            self.backoff_base_ns * self.backoff_multiplier ** (attempt - 1),
        )


@dataclass
class RecoveryResult:
    """Accounting for one recovered operation."""

    status: StatusCode
    #: Hardware submissions issued (first try + resumes).
    attempts: int = 1
    #: Retryable completions observed (faults + resets).
    faults: int = 0
    #: Bytes the accelerator finished across all attempts.
    bytes_hardware: int = 0
    #: Bytes finished by the software kernels after degradation.
    bytes_software: int = 0
    backoff_ns_total: float = 0.0
    degraded: bool = False
    #: Resubmissions that landed on a *different* device after a
    #: ``DEVICE_DISABLED`` completion (fleet failover path).
    reroutes: int = 0


def recover(
    dml: Dml,
    core: CpuCore,
    descriptor: WorkDescriptor,
    policy: RetryPolicy = RetryPolicy(),
    in_llc: bool = False,
    pool: Optional[DescriptorPool] = None,
    scheduler=None,
    socket: Optional[int] = None,
) -> Generator:
    """Run ``descriptor`` on hardware, resuming across faults.

    Resumable opcodes (:data:`~repro.dsa.opcodes.RESUMABLE_OPCODES`)
    continue from ``bytes_completed``; result-accumulating ones restart
    from offset 0.  The original descriptor's completion record always
    carries the final outcome (total ``bytes_completed`` on success),
    so callers keep polling the object they built.  Returns a
    :class:`RecoveryResult`.

    With ``pool``, the resume clones this loop creates are recycled
    through it: each retry's spent clone (which only this generator
    ever references — the caller polls ``descriptor``) is released
    before the next one is built, so a long fault storm allocates O(1)
    descriptors instead of O(retries).

    With ``scheduler`` (a :class:`repro.fleet.FleetScheduler`), a
    ``DEVICE_DISABLED`` completion *re-routes* instead of resubmitting
    to the same dead portal: the next attempt selects a live portal
    excluding the failed device (``socket`` biases NUMA-aware
    policies), and per-device ``fleet.<dev>.failover.*`` counters book
    where each descriptor landed.  When no live portal remains — with
    or without a scheduler — the tail degrades straight to the software
    kernels rather than stalling.
    """
    env = dml.env
    metrics = env.metrics
    total = descriptor.size
    offset = 0
    start = env.now
    result = RecoveryResult(status=StatusCode.NONE)
    pending = descriptor
    retries = 0
    tracer = env.tracer
    last_failed: Optional[str] = None

    while True:
        portal = None
        no_live = False
        if scheduler is not None:
            try:
                portal = scheduler.select(socket=socket, exclude=(
                    (last_failed,) if last_failed is not None else ()
                ))
            except RuntimeError:
                no_live = True
        if not no_live:
            if scheduler is not None and last_failed is not None:
                scheduler.record_failover(last_failed, portal.device.name)
                result.reroutes += 1
                metrics.counter("recovery.reroutes").add()
                last_failed = None
            try:
                yield from dml.execute(
                    core, pending, path=DmlPath.HARDWARE, in_llc=in_llc, portal=portal
                )
            except RuntimeError:
                # No live hardware portal (all devices disabled).
                no_live = True
        if no_live:
            metrics.counter("recovery.no_live_portal").add()
            result.degraded = True
            metrics.counter("recovery.degraded").add()
            if scheduler is not None and last_failed is not None:
                scheduler.record_failover(last_failed, None)
                last_failed = None
            if not policy.degrade_to_software:
                result.status = pending.completion.status
                _propagate(descriptor, pending, None)
                if pool is not None and pending is not descriptor:
                    pool.release(pending)
                return result
            if pool is not None and pending is not descriptor:
                pool.release(pending)
            tail = (
                descriptor.clone_range(offset, total - offset, pool=pool)
                if offset
                else _fresh_clone(descriptor, pool)
            )
            yield from dml.run_software(core, tail, in_llc=in_llc)
            result.bytes_software += tail.size
            result.status = tail.completion.status
            _propagate(descriptor, tail, total)
            if pool is not None and tail is not descriptor:
                pool.release(tail)
            return result
        completion = pending.completion
        if completion.status.is_success:
            result.bytes_hardware += pending.size
            result.status = completion.status
            _propagate(descriptor, pending, total)
            if pool is not None and pending is not descriptor:
                pool.release(pending)
            return result
        if completion.status not in RETRYABLE_STATUSES:
            result.status = completion.status
            _propagate(descriptor, pending, None)
            if pool is not None and pending is not descriptor:
                pool.release(pending)
            return result

        result.faults += 1
        metrics.counter("recovery.faults").add()
        if (
            scheduler is not None
            and portal is not None
            and completion.status is StatusCode.DEVICE_DISABLED
        ):
            # Don't resubmit into the dead device: the next attempt
            # re-routes to a surviving portal (or software).
            last_failed = portal.device.name
        resumable = (
            completion.status is StatusCode.PAGE_FAULT
            and descriptor.opcode in RESUMABLE_OPCODES
        )
        salvaged = completion.bytes_completed if resumable else 0
        offset += salvaged
        result.bytes_hardware += salvaged

        retries += 1
        exhausted = retries > policy.max_retries
        backoff = 0.0 if exhausted else policy.backoff_ns(retries)
        if not exhausted and policy.deadline_ns is not None:
            if (env.now - start) + backoff > policy.deadline_ns:
                exhausted = True
                metrics.counter("recovery.deadline_exceeded").add()
        if exhausted:
            result.degraded = True
            metrics.counter("recovery.degraded").add()
            if scheduler is not None and last_failed is not None:
                scheduler.record_failover(last_failed, None)
                last_failed = None
            if not policy.degrade_to_software:
                result.status = completion.status
                _propagate(descriptor, pending, None)
                return result
            if pool is not None and pending is not descriptor:
                pool.release(pending)
            tail = (
                descriptor.clone_range(offset, total - offset, pool=pool)
                if offset
                else _fresh_clone(descriptor, pool)
            )
            if tracer.enabled and descriptor.trace_track >= 0:
                tracer.begin(
                    env.now, "degrade", "recovery", core.trace_agent,
                    descriptor.trace_track, {"tail_bytes": tail.size},
                )
            yield from dml.run_software(core, tail, in_llc=in_llc)
            if tracer.enabled and descriptor.trace_track >= 0:
                tracer.end(
                    env.now, "degrade", "recovery", core.trace_agent,
                    descriptor.trace_track,
                )
            result.bytes_software += tail.size
            result.status = tail.completion.status
            _propagate(descriptor, tail, total)
            if pool is not None and tail is not descriptor:
                pool.release(tail)
            return result

        # Resolve the fault like the paper's guideline: touch the page
        # so the OS maps it, back off, then resubmit the remainder.
        if tracer.enabled and descriptor.trace_track >= 0:
            tracer.begin(
                env.now, "resume", "recovery", core.trace_agent,
                descriptor.trace_track,
                {"attempt": retries, "offset": offset},
            )
        fault_va = completion.fault_address
        if fault_va is not None and dml.space is not None:
            if policy.touch_page_ns:
                yield core.spend(CycleCategory.BUSY, policy.touch_page_ns)
            page = dml.space.page_size
            dml.space.page_table.map_range((fault_va // page) * page, 1)
        if backoff > 0:
            core.account(CycleCategory.IDLE, backoff)
            metrics.counter("recovery.backoff_ns").add(backoff)
            result.backoff_ns_total += backoff
            yield env.timeout(backoff)
        if tracer.enabled and descriptor.trace_track >= 0:
            tracer.end(
                env.now, "resume", "recovery", core.trace_agent,
                descriptor.trace_track,
            )
        if pool is not None and pending is not descriptor:
            # The spent clone's completion was consumed above; nobody
            # else ever saw the object, so it can be recycled into the
            # next attempt's clone.
            pool.release(pending)
        pending = (
            descriptor.clone_range(offset, total - offset, pool=pool)
            if offset
            else _fresh_clone(descriptor, pool)
        )
        result.attempts += 1
        metrics.counter("recovery.resumes").add()


def _fresh_clone(
    descriptor: WorkDescriptor, pool: Optional[DescriptorPool] = None
) -> WorkDescriptor:
    """Full-range clone: a resubmission needs an unconsumed completion
    record and event even when no bytes were salvaged."""
    return descriptor.clone_range(0, descriptor.size, pool=pool)


def _propagate(
    original: WorkDescriptor, final: WorkDescriptor, total: Optional[int]
) -> None:
    """Copy the final attempt's outcome onto the caller's descriptor."""
    if final is original:
        if total is not None:
            original.completion.bytes_completed = total
        return
    original.completion.status = final.completion.status
    original.completion.result = final.completion.result
    original.completion.fault_address = final.completion.fault_address
    original.completion.bytes_completed = (
        total if total is not None else final.completion.bytes_completed
    )
    original.times.completed = final.times.completed
