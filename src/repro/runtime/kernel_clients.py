"""In-kernel DSA clients (paper §3.3: "IDXD also enables in-kernel
usage of DSA (e.g. clear page engine CPE and non-transparent bridge)").

:class:`ClearPageEngine` models the kernel's page-zeroing offload: the
page allocator hands batches of soon-to-be-mapped pages to DSA FILL
descriptors instead of spending core cycles in ``clear_page()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.swlib import SoftwareKernels
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.device import DsaDevice
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.mem.pagetable import PAGE_4K
from repro.sim.engine import Environment


@dataclass
class ClearPageStats:
    pages_cleared: int = 0
    batches_submitted: int = 0
    bytes_zeroed: int = 0


class ClearPageEngine:
    """Kernel page-zeroing through DSA FILL batches.

    The kernel runs in physical address space; the model uses a kernel
    AddressSpace attached like any other PASID (how IDXD's in-kernel
    path works through the same descriptor plumbing).
    """

    def __init__(
        self,
        env: Environment,
        device: DsaDevice,
        wq_id: int = 0,
        pages_per_batch: int = 32,
        page_size: int = PAGE_4K,
        kernels: Optional[SoftwareKernels] = None,
    ):
        if pages_per_batch < 1:
            raise ValueError(f"need at least one page per batch: {pages_per_batch}")
        self.env = env
        self.device = device
        self.wq_id = wq_id
        self.pages_per_batch = pages_per_batch
        self.page_size = page_size
        self.kernels = kernels or SoftwareKernels()
        self.space = AddressSpace()
        device.attach_space(self.space)
        self.stats = ClearPageStats()

    def clear_pages(self, core: CpuCore, n_pages: int, backed: bool = False) -> Generator:
        """Zero ``n_pages`` pages; yields until DSA reports completion."""
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1: {n_pages}")
        remaining = n_pages
        while remaining > 0:
            count = min(remaining, self.pages_per_batch)
            members: List[WorkDescriptor] = []
            for _page in range(count):
                page = self.space.allocate(self.page_size, backed=backed)
                if backed:
                    page.data[:] = 0xFF  # dirty contents to be cleared
                members.append(
                    WorkDescriptor(
                        opcode=Opcode.FILL,
                        pasid=self.space.pasid,
                        flags=DescriptorFlags.REQUEST_COMPLETION
                        | DescriptorFlags.BLOCK_ON_FAULT,
                        dst=page.va,
                        size=self.page_size,
                        pattern=0,
                    )
                )
            unit: object
            if count == 1:
                unit = members[0]
            else:
                unit = BatchDescriptor(descriptors=members, pasid=self.space.pasid)
            # Kernel-side submission cost (ring the portal, no mmap).
            yield core.spend(CycleCategory.SUBMIT, 60.0)
            self.device.submit(unit, self.wq_id)
            self.stats.batches_submitted += 1
            if not unit.completion_event.triggered:
                start = self.env.now
                yield unit.completion_event
                core.account(CycleCategory.IDLE, self.env.now - start)
            self.stats.pages_cleared += count
            self.stats.bytes_zeroed += count * self.page_size
            remaining -= count

    def software_clear_time(self, n_pages: int) -> float:
        """What ``clear_page()`` on the core would have cost (ns)."""
        return n_pages * self.kernels.memset_ns(self.page_size)
