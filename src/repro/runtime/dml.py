"""DML-like high-level data-mover API (paper §5, "Software libraries").

Intel DML wraps descriptor management behind job objects: callers ask
for an operation, the library prepares/submits descriptors, balances
load across the available WQs/devices, and falls back to software when
hardware is absent or the job is too small to benefit.  This model
keeps that contract with generator-based calls (``yield from`` them
inside simulation processes).
"""

from __future__ import annotations

import enum
from typing import Collection, Generator, List, Optional

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import SoftwareKernels
from repro.dsa import ops as functional
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.dif import DifContext
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace, Buffer
from repro.runtime.driver import Portal
from repro.runtime.submit import prepare_descriptor, submit
from repro.runtime.wait import WaitMode, wait_for
from repro.sim.engine import Environment


class DmlPath(enum.Enum):
    """Execution-path request, mirroring DML's path selector."""

    HARDWARE = "hardware"
    SOFTWARE = "software"
    AUTO = "auto"


class DmlJob:
    """Handle for one in-flight (or finished) DML operation."""

    def __init__(self, descriptor, portal: Optional[Portal], software: bool):
        self.descriptor = descriptor
        self.portal = portal
        self.software = software

    @property
    def completion(self):
        return self.descriptor.completion

    @property
    def done(self) -> bool:
        return self.descriptor.completion.done


class Dml:
    """The library instance an application links against."""

    def __init__(
        self,
        env: Environment,
        portals: List[Portal],
        kernels: Optional[SoftwareKernels] = None,
        costs: Optional[InstructionCosts] = None,
        space: Optional[AddressSpace] = None,
        auto_threshold: int = 4096,
        wait_mode: WaitMode = WaitMode.UMWAIT,
        scheduler=None,
    ):
        if auto_threshold < 0:
            raise ValueError(f"negative auto threshold: {auto_threshold}")
        self.env = env
        self.portals = list(portals)
        self.kernels = kernels or SoftwareKernels()
        self.costs = costs or InstructionCosts()
        self.space = space
        self.auto_threshold = auto_threshold
        self.wait_mode = wait_mode
        #: Optional cross-device placement hook: anything with a
        #: ``select(socket=..., exclude=...) -> Portal`` method (see
        #: :class:`repro.fleet.FleetScheduler`) replaces the built-in
        #: round robin for portal selection.
        self.scheduler = scheduler
        self._round_robin = 0
        self.jobs_hardware = 0
        self.jobs_software = 0

    # -- descriptor construction -------------------------------------------------
    def make_descriptor(
        self,
        opcode: Opcode,
        size: int,
        src: Optional[Buffer] = None,
        src2: Optional[Buffer] = None,
        dst: Optional[Buffer] = None,
        dst2: Optional[Buffer] = None,
        pattern: int = 0,
        dif: Optional[DifContext] = None,
        dif_new: Optional[DifContext] = None,
        delta_size: int = 0,
        cache_control: bool = False,
        block_on_fault: bool = True,
    ) -> WorkDescriptor:
        """Build a descriptor over library-managed buffers.

        ``block_on_fault=False`` selects the BOF=0 contract: a page
        fault aborts the descriptor with a partial completion that
        software resumes (see :mod:`repro.runtime.recovery`), instead
        of stalling the engine for the fault-service time (§4.3).
        """
        flags = DescriptorFlags.REQUEST_COMPLETION
        if block_on_fault:
            flags |= DescriptorFlags.BLOCK_ON_FAULT
        if cache_control:
            flags |= DescriptorFlags.CACHE_CONTROL
        pasid = 0
        for buffer in (src, src2, dst, dst2):
            if buffer is not None:
                pasid = buffer.pasid
                break
        return WorkDescriptor(
            opcode=opcode,
            pasid=pasid,
            flags=flags,
            src=src.va if src else 0,
            src2=src2.va if src2 else 0,
            dst=dst.va if dst else 0,
            dst2=dst2.va if dst2 else 0,
            size=size,
            pattern=pattern,
            dif=dif,
            dif_new=dif_new,
            delta_size=delta_size,
        )

    @staticmethod
    def make_batch(descriptors: List[WorkDescriptor]) -> BatchDescriptor:
        if not descriptors:
            raise ValueError("batch needs at least one descriptor")
        pasid = descriptors[0].pasid
        for position, descriptor in enumerate(descriptors[1:], start=1):
            if descriptor.pasid != pasid:
                raise ValueError(
                    f"mixed-PASID batch: descriptor 0 carries PASID {pasid} but "
                    f"descriptor {position} carries PASID {descriptor.pasid}; a "
                    "batch translates under a single address space"
                )
        return BatchDescriptor(descriptors=descriptors, pasid=pasid)

    # -- load balancing -------------------------------------------------------------
    def _next_portal(self, exclude: Collection[str] = ()) -> Portal:
        """Pick the next live portal (round robin over enabled devices).

        Portals whose device was taken down via ``IdxdDriver.disable``
        are skipped; ``exclude`` additionally masks named devices (the
        failover path excludes the device that just failed).  Raises
        ``RuntimeError`` only when *no* portal is live.
        """
        if self.scheduler is not None:
            return self.scheduler.select(exclude=exclude)
        if not self.portals:
            raise RuntimeError("DML instance has no hardware portals")
        count = len(self.portals)
        for offset in range(count):
            portal = self.portals[(self._round_robin + offset) % count]
            if portal.device.enabled and portal.device.name not in exclude:
                self._round_robin = (self._round_robin + offset + 1) % count
                return portal
        raise RuntimeError("no live hardware portal (all devices disabled)")

    @property
    def has_hardware(self) -> bool:
        if self.scheduler is not None:
            return bool(self.scheduler.live_portals())
        return any(portal.device.enabled for portal in self.portals)

    def _choose_path(self, path: DmlPath, size: int) -> bool:
        """True → hardware."""
        if path is DmlPath.HARDWARE:
            if not self.has_hardware:
                raise RuntimeError("hardware path requested but no portals available")
            return True
        if path is DmlPath.SOFTWARE:
            return False
        return self.has_hardware and size >= self.auto_threshold

    # -- async API ----------------------------------------------------------------------
    def submit_async(
        self,
        core: CpuCore,
        descriptor,
        portal: Optional[Portal] = None,
        prepare: bool = True,
    ) -> Generator:
        """Prepare + submit; returns a :class:`DmlJob` immediately."""
        portal = portal or self._next_portal()
        if prepare:
            yield from prepare_descriptor(self.env, core, descriptor, self.costs)
        yield from submit(self.env, core, portal, descriptor, self.costs)
        self.jobs_hardware += 1
        return DmlJob(descriptor, portal, software=False)

    def wait(self, core: CpuCore, job: DmlJob) -> Generator:
        """Block until the job finishes; returns its status code."""
        if job.software:
            return job.completion.status
        yield from wait_for(self.env, core, job.descriptor, self.wait_mode, self.costs)
        return job.completion.status

    # -- sync API ------------------------------------------------------------------------
    def execute(
        self,
        core: CpuCore,
        descriptor: WorkDescriptor,
        path: DmlPath = DmlPath.AUTO,
        in_llc: bool = False,
        portal: Optional[Portal] = None,
    ) -> Generator:
        """Synchronous operation; returns the final status code.

        ``portal`` pins the submission to one WQ (the failover path
        re-routes a failed descriptor to a specific surviving device);
        ``None`` keeps the load-balanced selection.
        """
        if self._choose_path(path, descriptor.size):
            job = yield from self.submit_async(core, descriptor, portal=portal)
            status = yield from self.wait(core, job)
            return status
        return (yield from self.run_software(core, descriptor, in_llc=in_llc))

    def run_software(
        self, core: CpuCore, descriptor: WorkDescriptor, in_llc: bool = False
    ) -> Generator:
        """Software fallback: calibrated kernel time + functional op."""
        duration = self.kernels.time(descriptor.opcode, descriptor.size, in_llc=in_llc)
        yield core.spend(CycleCategory.BUSY, duration)
        self.jobs_software += 1
        if self.space is not None and self._buffers_backed(descriptor):
            functional.execute(descriptor, self.space)
        else:
            descriptor.completion.status = StatusCode.SUCCESS
            descriptor.completion.bytes_completed = descriptor.size
        descriptor.times.completed = self.env.now
        return descriptor.completion.status

    def _buffers_backed(self, descriptor: WorkDescriptor) -> bool:
        addresses = (descriptor.src, descriptor.src2, descriptor.dst, descriptor.dst2)
        referenced = [va for va in addresses if va]
        if not referenced:
            return False
        return all(self.space.buffer_at(va).backed for va in referenced)

    # -- high-level operation wrappers (the DML C API surface) ---------------------
    def mem_move(
        self,
        core: CpuCore,
        src: Buffer,
        dst: Buffer,
        size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::mem_move``: copy ``size`` bytes."""
        descriptor = self.make_descriptor(Opcode.MEMMOVE, size, src=src, dst=dst)
        return (yield from self.execute(core, descriptor, path=path))

    def fill(
        self,
        core: CpuCore,
        dst: Buffer,
        size: int,
        pattern: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::fill``: write an 8-byte pattern across the region."""
        descriptor = self.make_descriptor(Opcode.FILL, size, dst=dst, pattern=pattern)
        return (yield from self.execute(core, descriptor, path=path))

    def compare(
        self,
        core: CpuCore,
        a: Buffer,
        b: Buffer,
        size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::compare``: returns 0 when equal, 1 otherwise."""
        descriptor = self.make_descriptor(Opcode.COMPARE, size, src=a, src2=b)
        status = yield from self.execute(core, descriptor, path=path)
        return 0 if status is StatusCode.SUCCESS else 1

    def crc(
        self,
        core: CpuCore,
        src: Buffer,
        size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::crc``: CRC32C of the region (in the completion record)."""
        descriptor = self.make_descriptor(Opcode.CRCGEN, size, src=src)
        yield from self.execute(core, descriptor, path=path)
        return descriptor.completion.result

    def dualcast(
        self,
        core: CpuCore,
        src: Buffer,
        dst1: Buffer,
        dst2: Buffer,
        size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::dualcast``: copy to two destinations at once."""
        descriptor = self.make_descriptor(
            Opcode.DUALCAST, size, src=src, dst=dst1, dst2=dst2
        )
        return (yield from self.execute(core, descriptor, path=path))

    def create_delta(
        self,
        core: CpuCore,
        original: Buffer,
        modified: Buffer,
        delta: Buffer,
        size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::create_delta``: returns the serialized delta size."""
        descriptor = self.make_descriptor(
            Opcode.CREATE_DELTA, size, src=original, src2=modified, dst=delta
        )
        yield from self.execute(core, descriptor, path=path)
        return descriptor.completion.result

    def apply_delta(
        self,
        core: CpuCore,
        delta: Buffer,
        target: Buffer,
        size: int,
        delta_size: int,
        path: DmlPath = DmlPath.AUTO,
    ) -> Generator:
        """``dml::apply_delta``: patch ``target`` with a delta record."""
        descriptor = self.make_descriptor(
            Opcode.APPLY_DELTA, size, src=delta, dst=target, delta_size=delta_size
        )
        return (yield from self.execute(core, descriptor, path=path))
