"""libaccel-config-like user-space configuration API (paper §3.3).

Applications describe the wanted layout as plain dictionaries (the
shape of ``accel-config``'s JSON) and apply them through the driver.
Validation errors mirror what the real utility rejects: over-committed
WQ entries, WQs in two groups, out-of-range priorities, and so on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.dsa.config import (
    DeviceConfig,
    DsaTimingParams,
    EngineConfig,
    GroupConfig,
    WqConfig,
    WqMode,
)
from repro.dsa.device import DsaDevice
from repro.runtime.driver import IdxdDriver


def parse_device_config(spec: Dict[str, Any]) -> DeviceConfig:
    """Build a validated :class:`DeviceConfig` from a dict description.

    Expected shape::

        {
          "wqs":     [{"id": 0, "size": 32, "mode": "dedicated", "priority": 5}, ...],
          "engines": [0, 1],
          "groups":  [{"id": 0, "wqs": [0], "engines": [0, 1]}],
        }
    """
    wqs = tuple(
        WqConfig(
            wq_id=w["id"],
            size=w.get("size", 32),
            mode=WqMode(w.get("mode", "dedicated")),
            priority=w.get("priority", 1),
        )
        for w in spec.get("wqs", [])
    )
    engines = tuple(EngineConfig(e) for e in spec.get("engines", []))
    groups = tuple(
        GroupConfig(
            group_id=g["id"],
            wq_ids=tuple(g.get("wqs", [])),
            engine_ids=tuple(g.get("engines", [])),
            read_buffers_per_engine=g.get("read_buffers"),
        )
        for g in spec.get("groups", [])
    )
    config = DeviceConfig(wqs=wqs, engines=engines, groups=groups)
    config.validate()
    return config


class AccelConfig:
    """User-space facade over the driver's control path."""

    def __init__(self, driver: IdxdDriver):
        self.driver = driver

    def load_config(
        self,
        name: str,
        spec: Dict[str, Any],
        socket: int = 0,
        timing: Optional[DsaTimingParams] = None,
        enable: bool = True,
    ) -> DsaDevice:
        """``accel-config load-config`` + ``enable-device`` in one call."""
        config = parse_device_config(spec)
        device = self.driver.register_device(name, config=config, socket=socket, timing=timing)
        if enable:
            self.driver.enable(name)
        return device

    def save_config(self, name: str) -> Dict[str, Any]:
        """``accel-config save-config``: serialize a device's layout.

        The returned dict round-trips through :func:`parse_device_config`.
        """
        device = self.driver.device(name)
        return {
            "wqs": [
                {
                    "id": wq.wq_id,
                    "size": wq.size,
                    "mode": wq.mode.value,
                    "priority": wq.priority,
                }
                for wq in device.wqs.values()
            ],
            "engines": [e.engine_id for e in device.config.engines],
            "groups": [
                {
                    "id": group.group_id,
                    "wqs": list(group.config.wq_ids),
                    "engines": list(group.config.engine_ids),
                    **(
                        {"read_buffers": group.config.read_buffers_per_engine}
                        if group.config.read_buffers_per_engine is not None
                        else {}
                    ),
                }
                for group in device.groups.values()
            ],
        }

    def list_devices(self) -> Dict[str, Dict[str, Any]]:
        """``accel-config list``-style inventory."""
        inventory = {}
        for name, device in self.driver.devices.items():
            inventory[name] = {
                "enabled": self.driver.is_enabled(name),
                "wqs": [
                    {
                        "id": wq.wq_id,
                        "size": wq.size,
                        "mode": wq.mode.value,
                        "priority": wq.priority,
                        "occupancy": wq.occupancy,
                    }
                    for wq in device.wqs.values()
                ],
                "groups": [
                    {
                        "id": group.group_id,
                        "wqs": list(group.config.wq_ids),
                        "engines": list(group.config.engine_ids),
                    }
                    for group in device.groups.values()
                ],
            }
        return inventory
