"""DTO — DSA Transparent Offload library (paper §5 and Appendix B).

DTO intercepts ``memcpy``/``memmove``/``memset``/``memcmp`` (via
LD_PRELOAD on real systems) and redirects calls at or above a size
threshold to *synchronous* DSA offloads, falling back to the software
implementation below the threshold or when no device is available.

Fault handling goes through :func:`repro.runtime.recovery.recover`:
a faulted offload resumes from ``completion.bytes_completed`` (touch
the page, resubmit the remainder) instead of redoing the whole
transfer on the core — the historical DTO behaviour Appendix B calls
out wasted the hardware's partial progress, and this model's earlier
revisions reproduced that bug faithfully.  Retries are bounded by a
:class:`~repro.runtime.recovery.RetryPolicy`; exhausting them degrades
the unfinished tail (only) to the software kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.cpu.core import CpuCore
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.mem.address import Buffer
from repro.runtime.dml import Dml
from repro.runtime.recovery import RetryPolicy, recover

#: Appendix B: offload copies of 8 KB and larger.
DEFAULT_MIN_SIZE = 8 * 1024


@dataclass
class DtoStats:
    """Interception counters (observability mirrors real DTO logs)."""

    intercepted: int = 0
    offloaded: int = 0
    software: int = 0
    fault_fallbacks: int = 0
    bytes_offloaded: int = 0
    bytes_software: int = 0


class Dto:
    """Transparent mem*-call interceptor over a :class:`Dml` instance.

    ``block_on_fault`` selects the descriptor fault contract for the
    offloaded calls (default True, matching stock DTO); ``policy``
    bounds fault recovery.  Byte accounting is exact: bytes the
    accelerator actually moved land in ``bytes_offloaded`` and only the
    software-redone remainder lands in ``bytes_software``.
    """

    def __init__(
        self,
        dml: Dml,
        min_size: int = DEFAULT_MIN_SIZE,
        policy: Optional[RetryPolicy] = None,
        block_on_fault: bool = True,
    ):
        if min_size < 0:
            raise ValueError(f"negative min size: {min_size}")
        self.dml = dml
        self.min_size = min_size
        self.policy = policy or RetryPolicy()
        self.block_on_fault = block_on_fault
        self.stats = DtoStats()

    def _should_offload(self, size: int) -> bool:
        return self.dml.has_hardware and size >= self.min_size

    def _call(self, core: CpuCore, descriptor, in_llc: bool) -> Generator:
        self.stats.intercepted += 1
        if not self._should_offload(descriptor.size):
            self.stats.software += 1
            self.stats.bytes_software += descriptor.size
            status = yield from self.dml.run_software(core, descriptor, in_llc=in_llc)
            return status
        outcome = yield from recover(
            self.dml, core, descriptor, self.policy, in_llc=in_llc
        )
        if outcome.faults:
            self.stats.fault_fallbacks += 1
        self.stats.bytes_offloaded += outcome.bytes_hardware
        self.stats.bytes_software += outcome.bytes_software
        if outcome.bytes_software:
            self.stats.software += 1
        else:
            self.stats.offloaded += 1
        return outcome.status

    # -- the intercepted libc surface ------------------------------------------------
    def memcpy(
        self, core: CpuCore, dst: Buffer, src: Buffer, size: int, in_llc: bool = False
    ) -> Generator:
        descriptor = self.dml.make_descriptor(
            Opcode.MEMMOVE, size, src=src, dst=dst, block_on_fault=self.block_on_fault
        )
        return (yield from self._call(core, descriptor, in_llc))

    #: memmove has identical modelled behaviour.
    memmove = memcpy

    def memset(
        self, core: CpuCore, dst: Buffer, value: int, size: int, in_llc: bool = False
    ) -> Generator:
        pattern = int(value) & 0xFF
        pattern |= pattern << 8
        pattern |= pattern << 16
        pattern |= pattern << 32
        descriptor = self.dml.make_descriptor(
            Opcode.FILL, size, dst=dst, pattern=pattern,
            block_on_fault=self.block_on_fault,
        )
        return (yield from self._call(core, descriptor, in_llc))

    def memcmp(
        self, core: CpuCore, a: Buffer, b: Buffer, size: int, in_llc: bool = False
    ) -> Generator:
        descriptor = self.dml.make_descriptor(
            Opcode.COMPARE, size, src=a, src2=b, block_on_fault=self.block_on_fault
        )
        status = yield from self._call(core, descriptor, in_llc)
        if status is StatusCode.SUCCESS:
            return 0
        return 1
