"""Host CPU models: cores, offload instructions, software kernels.

The software baselines the paper compares DSA against (glibc memcpy,
ISA-L CRC32, etc.) are modelled as calibrated latency+bandwidth cost
functions in :mod:`repro.cpu.swlib`; the new offload instructions
(MOVDIR64B, ENQCMD, UMONITOR/UMWAIT — paper §3.3) are costed in
:mod:`repro.cpu.instructions`.
"""

from repro.cpu.core import CpuCore, CycleCategory
from repro.cpu.instructions import InstructionCosts
from repro.cpu.swlib import SoftwareKernels, SwKernelParams

__all__ = [
    "CpuCore",
    "CycleCategory",
    "InstructionCosts",
    "SoftwareKernels",
    "SwKernelParams",
]
