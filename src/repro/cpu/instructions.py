"""Cost model of the offload-path x86 instructions (paper §3.3).

* ``MOVDIR64B`` — posted 64-byte store to a DWQ portal: the core
  retires it quickly and can stream descriptors back-to-back.
* ``ENQCMD``/``ENQCMDS`` — *non-posted* submission to an SWQ: the core
  waits for the accept/retry status, a full round trip to the device.
  This asymmetry is why an SWQ batch of n behaves like n streaming
  cores (Fig 3) and why few-thread SWQ throughput trails DWQs (Fig 9).
* ``UMONITOR``/``UMWAIT`` — arm an address monitor and sleep in an
  optimized power state until the completion record changes (Fig 11).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InstructionCosts:
    """Latencies (ns) of the offload instructions on the SPR core."""

    movdir64b_ns: float = 45.0
    enqcmd_ns: float = 350.0
    umonitor_ns: float = 20.0
    #: Wake-up latency from the UMWAIT optimized wait state.
    umwait_wake_ns: float = 60.0
    #: One polling check of a completion record (cached load + branch).
    poll_check_ns: float = 8.0
    #: Interrupt delivery + handler, if interrupts are used instead.
    interrupt_ns: float = 2400.0
    #: Plain descriptor allocation from the heap (Fig 5's "allocation";
    #: real applications pre-allocate and amortize this away).
    descriptor_alloc_ns: float = 380.0
    #: Writing the handful of descriptor fields (Fig 5's "prepare").
    descriptor_prepare_ns: float = 18.0

    def validate(self) -> None:
        values = (
            self.movdir64b_ns,
            self.enqcmd_ns,
            self.umonitor_ns,
            self.umwait_wake_ns,
            self.poll_check_ns,
            self.interrupt_ns,
            self.descriptor_alloc_ns,
            self.descriptor_prepare_ns,
        )
        if any(v <= 0 for v in values):
            raise ValueError("instruction costs must be positive")
        if self.enqcmd_ns <= self.movdir64b_ns:
            raise ValueError(
                "ENQCMD is non-posted and must cost more than MOVDIR64B "
                f"(got {self.enqcmd_ns} <= {self.movdir64b_ns})"
            )
