"""Core power model for the §4.4 energy discussion.

The paper's Fig 11 argument: cycles parked in UMWAIT sit in an
optimized low-power state, so offloading saves *dynamic energy*, not
just cycles.  This model assigns a power draw to each cycle category
and integrates a core's accounted time into energy.

The per-state numbers are representative of one Golden Cove core at a
nominal operating point (order-of-magnitude realistic; only ratios
matter for the conclusions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cpu.core import CpuCore, CycleCategory


@dataclass(frozen=True)
class CorePowerParams:
    """Watts drawn per cycle-accounting category."""

    busy_w: float = 4.5  # executing at full tilt (streaming kernels)
    spin_w: float = 4.2  # polling a completion record
    umwait_w: float = 1.1  # optimized wait state (C0.2-like)
    idle_w: float = 0.8  # halted, waiting for an interrupt

    def validate(self) -> None:
        ordered = (self.idle_w, self.umwait_w, self.spin_w, self.busy_w)
        if any(w <= 0 for w in ordered):
            raise ValueError("power draws must be positive")
        if not self.idle_w <= self.umwait_w <= self.spin_w <= self.busy_w:
            raise ValueError(
                "expected idle <= umwait <= spin <= busy power ordering"
            )

    def draw(self, category: CycleCategory) -> float:
        if category is CycleCategory.UMWAIT:
            return self.umwait_w
        if category is CycleCategory.WAIT_SPIN:
            return self.spin_w
        if category is CycleCategory.IDLE:
            return self.idle_w
        return self.busy_w


class CoreEnergyMeter:
    """Integrates a core's accounted time into energy (joules)."""

    def __init__(self, params: CorePowerParams = CorePowerParams()):
        params.validate()
        self.params = params

    def energy_joules(self, core: CpuCore) -> float:
        """Energy for everything the core has booked so far."""
        total = 0.0
        for category in CycleCategory:
            total += core.time_in(category) * 1e-9 * self.params.draw(category)
        return total

    def breakdown(self, core: CpuCore) -> Dict[str, float]:
        return {
            category.value: core.time_in(category) * 1e-9 * self.params.draw(category)
            for category in CycleCategory
            if core.time_in(category) > 0
        }

    def average_power(self, core: CpuCore) -> float:
        """Mean watts over the core's accounted time."""
        accounted = core.accounted_time
        if accounted <= 0:
            return 0.0
        return self.energy_joules(core) / (accounted * 1e-9)
