"""CPU core with cycle-category accounting.

The paper's Fig 11 reports the *share of cycles spent inside UMWAIT*
while offloading; Fig 5 reports where the time goes in the offload
path.  Both need per-category time accounting on the submitting core,
which is all this class does — the heavy lifting is in the simulator.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.sim.engine import Environment


class CycleCategory(enum.Enum):
    """Where a core's wall-clock time went."""

    BUSY = "busy"  # executing application/software-kernel work
    ALLOC = "alloc"  # descriptor allocation
    PREPARE = "prepare"  # descriptor preparation (field writes)
    SUBMIT = "submit"  # MOVDIR64B / ENQCMD issue
    WAIT_SPIN = "wait_spin"  # spin-polling a completion record
    UMWAIT = "umwait"  # optimized wait state (low power)
    IDLE = "idle"


class CpuCore:
    """One hardware thread; accumulates time per category."""

    def __init__(self, env: Environment, core_id: int = 0, frequency_ghz: float = 2.0):
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz}")
        self.env = env
        self.core_id = core_id
        self.frequency_ghz = frequency_ghz
        #: Cached tracer agent label — the submit/prepare hot paths used
        #: to rebuild this f-string once per descriptor.
        self.trace_agent = f"core{core_id}"
        self._time: Dict[CycleCategory, float] = {cat: 0.0 for cat in CycleCategory}

    def account(self, category: CycleCategory, duration_ns: float) -> None:
        if duration_ns < 0:
            raise ValueError(f"negative duration: {duration_ns}")
        self._time[category] += duration_ns

    def spend(self, category: CycleCategory, duration_ns: float):
        """Timeout event that also books the time (yield from callers)."""
        self.account(category, duration_ns)
        return self.env.timeout(duration_ns)

    def time_in(self, category: CycleCategory) -> float:
        return self._time[category]

    def times(self) -> Dict[CycleCategory, float]:
        """Copy of the per-category time table (snapshot harvesting)."""
        return dict(self._time)

    def cycles_in(self, category: CycleCategory) -> float:
        return self._time[category] * self.frequency_ghz

    @property
    def accounted_time(self) -> float:
        return sum(self._time.values())

    def fraction(self, category: CycleCategory) -> float:
        """Share of accounted time spent in ``category`` (Fig 11 metric)."""
        total = self.accounted_time
        return self._time[category] / total if total else 0.0

    def reset(self) -> None:
        for category in self._time:
            self._time[category] = 0.0
