"""Software baseline kernels (glibc / ISA-L class) — cost + behaviour.

The paper's baselines are "highly optimized software libraries"
(§4.1): glibc ``memcpy``, ISA-L CRC32, AVX-512 compare/fill.  Each
kernel is modelled as::

    time(size) = base + size / bandwidth(location)

with separate streaming bandwidths for DRAM-resident and LLC-resident
data, calibrated per kernel so the paper's crossovers land where
published (sync ~4 KB, async ~256 B; DESIGN.md §3).  Software kernels
also *pollute the LLC* — running one allocates its streams into the
cache, which is the entire mechanism behind Figs 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.dsa.opcodes import Opcode
from repro.mem.cache import SharedLLC


@dataclass(frozen=True)
class SwKernelParams:
    """Cost model of one software kernel on one core."""

    base_ns: float
    dram_bandwidth: float  # GB/s, streams resident in DRAM
    llc_bandwidth: float  # GB/s, streams resident in the LLC
    #: Bytes of LLC the kernel allocates per payload byte (pollution).
    cache_footprint_factor: float = 1.0

    def time(self, size: int, in_llc: bool = False) -> float:
        if size < 0:
            raise ValueError(f"negative size: {size}")
        bandwidth = self.llc_bandwidth if in_llc else self.dram_bandwidth
        return self.base_ns + size / bandwidth


#: Calibrated single-core kernels (cold data unless noted).
DEFAULT_KERNELS: Dict[Opcode, SwKernelParams] = {
    # glibc memcpy: ~12 GB/s single-core DRAM-to-DRAM copy (cold data,
    # caches flushed between iterations as in §4.1); reads and writes
    # both allocate -> 2 bytes of LLC per byte copied.
    Opcode.MEMMOVE: SwKernelParams(60.0, 12.0, 45.0, cache_footprint_factor=2.0),
    # Two separate destination streams.
    Opcode.DUALCAST: SwKernelParams(55.0, 8.0, 30.0, cache_footprint_factor=3.0),
    # Allocating (regular store) fill.
    Opcode.FILL: SwKernelParams(30.0, 11.0, 50.0, cache_footprint_factor=1.0),
    # memcmp streams two sources.
    Opcode.COMPARE: SwKernelParams(40.0, 7.0, 35.0, cache_footprint_factor=2.0),
    Opcode.COMPARE_PATTERN: SwKernelParams(35.0, 13.0, 55.0, cache_footprint_factor=1.0),
    # ISA-L CRC32 (PCLMULQDQ): compute-capable beyond DRAM speed.
    Opcode.CRCGEN: SwKernelParams(50.0, 13.0, 22.0, cache_footprint_factor=1.0),
    Opcode.COPY_CRC: SwKernelParams(60.0, 9.0, 18.0, cache_footprint_factor=2.0),
    # Word-wise diff of two buffers.
    Opcode.CREATE_DELTA: SwKernelParams(60.0, 6.5, 25.0, cache_footprint_factor=2.0),
    Opcode.APPLY_DELTA: SwKernelParams(50.0, 10.0, 40.0, cache_footprint_factor=1.0),
    # Software DIF: CRC16 per block plus copy.
    Opcode.DIF_CHECK: SwKernelParams(55.0, 9.0, 16.0, cache_footprint_factor=1.0),
    Opcode.DIF_INSERT: SwKernelParams(60.0, 8.0, 14.0, cache_footprint_factor=2.0),
    Opcode.DIF_STRIP: SwKernelParams(55.0, 9.0, 16.0, cache_footprint_factor=2.0),
    Opcode.DIF_UPDATE: SwKernelParams(65.0, 7.0, 13.0, cache_footprint_factor=2.0),
    Opcode.CACHE_FLUSH: SwKernelParams(30.0, 28.0, 60.0, cache_footprint_factor=0.0),
}

#: Non-temporal (streaming-store) fill: no allocation, higher bandwidth.
NT_FILL = SwKernelParams(30.0, 20.0, 20.0, cache_footprint_factor=0.0)


class SoftwareKernels:
    """The software counterpart library used by every baseline."""

    def __init__(self, kernels: Optional[Dict[Opcode, SwKernelParams]] = None):
        self.kernels = dict(DEFAULT_KERNELS)
        if kernels:
            self.kernels.update(kernels)

    def params(self, opcode: Opcode) -> SwKernelParams:
        if opcode not in self.kernels:
            raise KeyError(f"no software kernel for {opcode!r}")
        return self.kernels[opcode]

    def time(self, opcode: Opcode, size: int, in_llc: bool = False) -> float:
        """Execution time (ns) of the software kernel on one core."""
        return self.params(opcode).time(size, in_llc=in_llc)

    def memcpy_ns(self, size: int, in_llc: bool = False) -> float:
        return self.time(Opcode.MEMMOVE, size, in_llc=in_llc)

    def crc32_ns(self, size: int, in_llc: bool = False) -> float:
        return self.time(Opcode.CRCGEN, size, in_llc=in_llc)

    def memset_ns(self, size: int, in_llc: bool = False, non_temporal: bool = False) -> float:
        if non_temporal:
            return NT_FILL.time(size, in_llc=in_llc)
        return self.time(Opcode.FILL, size, in_llc=in_llc)

    def memcmp_ns(self, size: int, in_llc: bool = False) -> float:
        return self.time(Opcode.COMPARE, size, in_llc=in_llc)

    def pollute(
        self,
        llc: SharedLLC,
        agent: str,
        opcode: Opcode,
        size: int,
        now: float = 0.0,
        max_occupancy: Optional[float] = None,
    ) -> float:
        """Charge the kernel's LLC allocation (the Fig 12/13 mechanism)."""
        footprint = self.params(opcode).cache_footprint_factor * size
        if footprint <= 0:
            return 0.0
        return llc.touch(agent, footprint, max_occupancy=max_occupancy, now=now)

    def throughput(self, opcode: Opcode, size: int, in_llc: bool = False) -> float:
        """Payload GB/s of back-to-back kernel invocations."""
        return size / self.time(opcode, size, in_llc=in_llc)
