"""Fault plans: declarative descriptions of what to inject, where.

The paper's §4.3 and Appendix B identify page faults as the dominant
failure mode of DSA offload — BLOCK_ON_FAULT stalls the engine for the
full fault-service latency, BOF=0 hands software a partially completed
descriptor — and the guidelines (G5) follow directly: touch or pin
pages before offloading.  Reproducing those corner paths on purpose
requires *deterministic* fault injection, which is what a
:class:`FaultPlan` describes:

* **page faults** — per-page-translation probability and/or scripted
  virtual addresses, each minor (page-cache resident) or major (backing
  store) with its own service latency;
* **ATC shoot-downs** — flush the device translation cache every N
  translations (TLB-shootdown / unmap traffic from the owning process);
* **SWQ congestion bursts** — bounce ENQCMD submissions as if the
  shared queue were full, in configurable bursts;
* **device resets** — transient disable windows during which dispatched
  descriptors abort with ``DEVICE_DISABLED``.

Every stochastic choice draws from streams derived from a single seed
(``None`` resolves to :func:`repro.sim.rng.installed_seed`), so a
``--jobs N`` run injects exactly the same faults as a serial one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class FaultKind(enum.Enum):
    """Service class of an injected page fault."""

    MINOR = "minor"  # page resident, just needs a mapping (no IO)
    MAJOR = "major"  # page must be read from backing store


@dataclass(frozen=True)
class FaultPlan:
    """One experiment's (or test's) injection schedule."""

    #: Seed for every injection stream; ``None`` uses the installed
    #: run seed so serial and parallel runs inject identically.
    seed: Optional[int] = None

    # -- page faults -------------------------------------------------------
    #: Probability that any single page translation is turned into a
    #: fault (drawn once per device translation of that page).
    page_fault_rate: float = 0.0
    #: Of the injected faults, the fraction serviced as *major* faults.
    major_fault_fraction: float = 0.0
    #: When True a given (PASID, page) faults at most once — the model
    #: of "software touched the page after the first fault"; when False
    #: every translation redraws (sustained fault pressure).
    fault_once_per_page: bool = False
    #: Virtual addresses whose containing page faults on its next
    #: translation, once each (scripted offsets for regression tests).
    scripted_vas: Tuple[int, ...] = ()
    #: OS service time of an injected minor fault (ns); matches the
    #: IOMMU's recoverable-fault latency by default.
    minor_fault_ns: float = 15_000.0
    #: OS service time of an injected major fault (ns).
    major_fault_ns: float = 250_000.0

    # -- ATC shoot-downs ---------------------------------------------------
    #: Flush the device ATC every N translations (0 disables).
    atc_shootdown_every: int = 0

    # -- SWQ congestion ----------------------------------------------------
    #: Probability that an ENQCMD to a shared WQ is bounced with a
    #: retry status regardless of actual occupancy.
    swq_reject_rate: float = 0.0
    #: Consecutive rejections per congestion burst (>= 1).
    swq_burst_length: int = 1

    # -- transient device resets -------------------------------------------
    #: Simulation times (ns) at which the device goes down transiently.
    device_reset_at: Tuple[float, ...] = ()
    #: Length of each reset window: descriptors dispatched inside
    #: ``[t, t + window)`` abort with ``DEVICE_DISABLED``.
    device_reset_window_ns: float = 10_000.0

    def validate(self) -> None:
        if not 0.0 <= self.page_fault_rate <= 1.0:
            raise ValueError(f"page_fault_rate must be in [0, 1]: {self.page_fault_rate}")
        if not 0.0 <= self.major_fault_fraction <= 1.0:
            raise ValueError(
                f"major_fault_fraction must be in [0, 1]: {self.major_fault_fraction}"
            )
        if self.minor_fault_ns < 0 or self.major_fault_ns < 0:
            raise ValueError("fault service latencies must be non-negative")
        if self.atc_shootdown_every < 0:
            raise ValueError(f"atc_shootdown_every must be >= 0: {self.atc_shootdown_every}")
        if not 0.0 <= self.swq_reject_rate <= 1.0:
            raise ValueError(f"swq_reject_rate must be in [0, 1]: {self.swq_reject_rate}")
        if self.swq_burst_length < 1:
            raise ValueError(f"swq_burst_length must be >= 1: {self.swq_burst_length}")
        if self.device_reset_window_ns <= 0:
            raise ValueError(
                f"device_reset_window_ns must be positive: {self.device_reset_window_ns}"
            )
        if any(t < 0 for t in self.device_reset_at):
            raise ValueError("device_reset_at times must be non-negative")
        if any(va < 0 for va in self.scripted_vas):
            raise ValueError("scripted_vas must be non-negative addresses")

    @property
    def injects_anything(self) -> bool:
        """False for the all-zero plan (injection fully disabled)."""
        return bool(
            self.page_fault_rate > 0.0
            or self.scripted_vas
            or self.atc_shootdown_every > 0
            or self.swq_reject_rate > 0.0
            or self.device_reset_at
        )

    def service_latency_ns(self, kind: FaultKind) -> float:
        return self.major_fault_ns if kind is FaultKind.MAJOR else self.minor_fault_ns
