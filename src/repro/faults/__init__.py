"""repro.faults — deterministic fault injection (paper §4.3, Appendix B).

Declarative :class:`FaultPlan`s describe page faults, ATC shoot-downs,
SWQ congestion bursts, and transient device resets; a seeded
:class:`FaultInjector` executes them identically across serial and
parallel runs.  Install one with :func:`install_injector` (or the
scoped :func:`injection` context manager) and the IOMMU/ATC, work
queues, and engines pick it up on their hot paths.
"""

from repro.faults.inject import (
    PAGE_SIZE,
    FaultInjector,
    active_injector,
    injection,
    install_injector,
    uninstall_injector,
)
from repro.faults.plan import FaultKind, FaultPlan

__all__ = [
    "PAGE_SIZE",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "active_injector",
    "injection",
    "install_injector",
    "uninstall_injector",
]
