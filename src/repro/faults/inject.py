"""The fault injector and its install-pattern global.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into per-site decisions.  Model components (the device ATC, shared work
queues, the processing engine) consult :func:`active_injector` on their
hot paths; when nothing is installed — or the installed plan injects
nothing — that call returns ``None`` and the component takes its normal
path, so a disabled injector is byte-identical to no injector at all.

Determinism: all stochastic draws come from child streams of
``make_rng(plan.seed)`` (``seed=None`` resolves the installed run seed),
and each site owns its own stream, so interleaving of, say, page
translations and ENQCMD submissions cannot perturb either sequence.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Set, Tuple

from repro.faults.plan import FaultKind, FaultPlan
from repro.sim.rng import derive, make_rng

#: Default 4 KiB page granularity for per-page fault decisions.
PAGE_SIZE = 4096


class FaultInjector:
    """Stateful decision engine for one installed :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        root = make_rng(plan.seed)
        self._page_rng = derive(root, 0)
        self._swq_rng = derive(root, 1)
        self._scripted = list(plan.scripted_vas)
        self._faulted_pages: Set[Tuple[int, int]] = set()
        self._translations = 0
        self._swq_burst_left = 0
        # Plain-int counters: the injector outlives any one Environment,
        # so it cannot own MetricsRegistry counters itself; components
        # that consult it mirror events into their own registries.
        self.injected_page_faults = 0
        self.injected_major_faults = 0
        self.injected_shootdowns = 0
        self.injected_swq_rejects = 0
        self.injected_device_resets = 0

    # -- page faults -------------------------------------------------------

    def page_fault(
        self, pasid: int, va: int, page_size: int = PAGE_SIZE
    ) -> Optional[FaultKind]:
        """Decide whether the translation of ``va`` faults; None = no."""
        plan = self.plan
        page = va // page_size
        if self._scripted:
            for i, scripted in enumerate(self._scripted):
                if scripted // page_size == page:
                    del self._scripted[i]
                    return self._record_fault(pasid, page)
        if plan.page_fault_rate <= 0.0:
            return None
        if plan.fault_once_per_page and (pasid, page) in self._faulted_pages:
            return None
        if float(self._page_rng.random()) >= plan.page_fault_rate:
            return None
        return self._record_fault(pasid, page)

    def _record_fault(self, pasid: int, page: int) -> FaultKind:
        plan = self.plan
        self._faulted_pages.add((pasid, page))
        self.injected_page_faults += 1
        if (
            plan.major_fault_fraction > 0.0
            and float(self._page_rng.random()) < plan.major_fault_fraction
        ):
            self.injected_major_faults += 1
            return FaultKind.MAJOR
        return FaultKind.MINOR

    def service_latency_ns(self, kind: FaultKind) -> float:
        return self.plan.service_latency_ns(kind)

    # -- ATC shoot-downs ---------------------------------------------------

    def shootdown_due(self) -> bool:
        """Called once per device translation; True = flush the ATC now."""
        every = self.plan.atc_shootdown_every
        if every <= 0:
            return False
        self._translations += 1
        if self._translations % every == 0:
            self.injected_shootdowns += 1
            return True
        return False

    # -- SWQ congestion ----------------------------------------------------

    def swq_reject(self) -> bool:
        """Called once per ENQCMD; True = bounce it with a retry status."""
        plan = self.plan
        if self._swq_burst_left > 0:
            self._swq_burst_left -= 1
            self.injected_swq_rejects += 1
            return True
        if plan.swq_reject_rate <= 0.0:
            return False
        if float(self._swq_rng.random()) >= plan.swq_reject_rate:
            return False
        self._swq_burst_left = plan.swq_burst_length - 1
        self.injected_swq_rejects += 1
        return True

    # -- transient device resets -------------------------------------------

    def device_reset(self, now: float) -> bool:
        """True when ``now`` falls inside any configured reset window."""
        plan = self.plan
        for start in plan.device_reset_at:
            if start <= now < start + plan.device_reset_window_ns:
                self.injected_device_resets += 1
                return True
        return False


#: Session-wide injector; see :func:`install_injector`.
_installed: Optional[FaultInjector] = None


def install_injector(plan_or_injector) -> FaultInjector:
    """Make a fault injector active for every subsequent model run.

    Accepts a :class:`FaultPlan` (wrapped in a fresh injector) or an
    existing :class:`FaultInjector`.  Mirrors ``rng.install_seed``: the
    parallel runner re-installs per worker, so serial and ``--jobs N``
    runs inject identically.
    """
    global _installed
    if isinstance(plan_or_injector, FaultInjector):
        injector = plan_or_injector
    elif isinstance(plan_or_injector, FaultPlan):
        injector = FaultInjector(plan_or_injector)
    else:
        raise TypeError(
            "install_injector takes a FaultPlan or FaultInjector, got "
            f"{type(plan_or_injector).__name__}"
        )
    _installed = injector
    return injector


def uninstall_injector() -> None:
    global _installed
    _installed = None


def active_injector() -> Optional[FaultInjector]:
    """The injector hot paths should consult, or None when disabled.

    Returns ``None`` both when nothing is installed and when the
    installed plan injects nothing, so call sites need a single check.
    """
    if _installed is None or not _installed.plan.injects_anything:
        return None
    return _installed


@contextlib.contextmanager
def injection(plan_or_injector) -> Iterator[FaultInjector]:
    """Scoped install: restores whatever was active before on exit."""
    global _installed
    previous = _installed
    injector = install_injector(plan_or_injector)
    try:
        yield injector
    finally:
        _installed = previous
