"""LRU translation lookaside buffer, shared by cores and the DSA ATC.

The device-side address translation cache (ATC) of DSA behaves the same
way as a core TLB for our purposes: a bounded LRU map from virtual page
number to translation, with hit/miss counting.
"""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Bounded LRU cache of virtual-page translations."""

    def __init__(self, entries: int, page_size: int):
        if entries < 1:
            raise ValueError(f"entries must be >= 1, got {entries}")
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self.entries = entries
        self.page_size = page_size
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, va: int) -> bool:
        """True on hit; refreshes LRU position.  Misses are not filled."""
        vpn = va // self.page_size
        if vpn in self._cache:
            self._cache.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, va: int) -> None:
        """Insert a translation, evicting the LRU entry if full."""
        vpn = va // self.page_size
        if vpn in self._cache:
            self._cache.move_to_end(vpn)
            return
        if len(self._cache) >= self.entries:
            self._cache.popitem(last=False)
        self._cache[vpn] = True

    def invalidate_all(self) -> None:
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
