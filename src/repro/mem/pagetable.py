"""Per-process page tables with 4 KiB and 2 MiB (huge) pages.

The table is demand-populated: :meth:`PageTable.translate` reports
whether the page was already mapped (minor-fault modelling for devices
is done by the IOMMU).  Walk latency follows the radix depth: a 4 KiB
page needs a 4-level walk, a 2 MiB page stops one level early.
"""

from __future__ import annotations

from typing import Dict, Tuple

PAGE_4K = 4 * 1024
PAGE_2M = 2 * 1024 * 1024

#: Cost of one page-table level lookup (uncached walk step), ns.
WALK_STEP_NS = 20.0


class PageTable:
    """Virtual→physical mapping for one address space (one PASID)."""

    def __init__(self, page_size: int = PAGE_4K, prepopulate: bool = False):
        if page_size not in (PAGE_4K, PAGE_2M):
            raise ValueError(f"unsupported page size: {page_size}")
        self.page_size = page_size
        self.prepopulate = prepopulate
        self._mapping: Dict[int, int] = {}
        self._next_frame = 0
        self.minor_faults = 0

    @property
    def levels(self) -> int:
        """Radix levels walked: 4 for 4 KiB pages, 3 for 2 MiB pages."""
        return 4 if self.page_size == PAGE_4K else 3

    @property
    def walk_latency(self) -> float:
        """Full uncached table-walk latency in ns."""
        return self.levels * WALK_STEP_NS

    def page_number(self, va: int) -> int:
        return va // self.page_size

    def pages_spanned(self, va: int, size: int) -> int:
        """Number of pages touched by the byte range ``[va, va+size)``."""
        if size <= 0:
            return 0
        first = va // self.page_size
        last = (va + size - 1) // self.page_size
        return last - first + 1

    def map_range(self, va: int, size: int) -> None:
        """Eagerly populate mappings for a range (pre-faulted buffer)."""
        first = va // self.page_size
        for vpn in range(first, first + self.pages_spanned(va, size)):
            if vpn not in self._mapping:
                self._mapping[vpn] = self._allocate_frame()

    def translate(self, va: int) -> Tuple[int, bool]:
        """Return ``(pa, faulted)``; populates the mapping on a fault."""
        if va < 0:
            raise ValueError(f"negative virtual address: {va}")
        vpn = va // self.page_size
        faulted = vpn not in self._mapping
        if faulted:
            self.minor_faults += 1
            self._mapping[vpn] = self._allocate_frame()
        pfn = self._mapping[vpn]
        return pfn * self.page_size + va % self.page_size, faulted

    def is_mapped(self, va: int) -> bool:
        return va // self.page_size in self._mapping

    def mapped_pages(self) -> int:
        return len(self._mapping)

    def _allocate_frame(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        return frame
