"""NUMA topology: sockets, UPI links, and remote-access penalties.

Cross-socket traffic (paper Fig 6a) rides Intel UPI: extra hop latency
in both directions and a per-direction bandwidth ceiling.  The paper
finds DSA hides the extra latency once pipelined, so throughput across
sockets nearly matches local — that emerges here because the UPI
bandwidth ceiling is above a single device's fabric limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class UpiParams:
    """One socket-to-socket interconnect."""

    hop_latency: float = 55.0  # ns added per crossing
    bandwidth: float = 62.0  # GB/s per direction (3 UPI links aggregated)

    def validate(self) -> None:
        if self.hop_latency < 0:
            raise ValueError("hop latency cannot be negative")
        if self.bandwidth <= 0:
            raise ValueError("UPI bandwidth must be positive")


class NumaTopology:
    """Maps node ids to sockets and answers remoteness queries."""

    def __init__(self, sockets: int = 2, upi: UpiParams = UpiParams()):
        if sockets < 1:
            raise ValueError(f"sockets must be >= 1, got {sockets}")
        self.sockets = sockets
        self.upi = upi
        self._node_socket: Dict[int, int] = {}

    def place_node(self, node: int, socket: int) -> None:
        if not 0 <= socket < self.sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.sockets})")
        self._node_socket[node] = socket

    def socket_of(self, node: int) -> int:
        if node not in self._node_socket:
            raise KeyError(f"node {node} not placed on any socket")
        return self._node_socket[node]

    def is_remote(self, from_socket: int, node: int) -> bool:
        return self.socket_of(node) != from_socket

    def crossing_cost(self, from_socket: int, node: int) -> Tuple[float, bool]:
        """UPI latency (ns) to reach ``node`` from ``from_socket``."""
        remote = self.is_remote(from_socket, node)
        return (self.upi.hop_latency if remote else 0.0), remote
