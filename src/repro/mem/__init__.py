"""Memory-system substrate: address spaces, translation, caches, tiers.

Units convention (project-wide):

* time        — nanoseconds
* size        — bytes
* bandwidth   — bytes/ns, which is numerically identical to GB/s

The substrate provides everything Figures 6, 8, 10, 12, 13 and 15 of the
paper depend on: a fair-share bandwidth link model, DRAM node presets
(DDR4/DDR5), NUMA topology with UPI remote penalties, a CXL.mem tier
with asymmetric read/write latency, a shared LLC with a DDIO way
partition, and a paging + IOMMU model for translation costs.
"""

from repro.mem.address import AddressSpace, Buffer
from repro.mem.cache import SharedLLC
from repro.mem.cxl import CxlMemoryParams
from repro.mem.dram import DramParams, DDR4_6CH, DDR5_8CH
from repro.mem.iommu import Iommu, IommuParams
from repro.mem.link import FairShareLink, SerialLink
from repro.mem.numa import NumaTopology, UpiParams
from repro.mem.pagetable import PAGE_4K, PAGE_2M, PageTable
from repro.mem.system import MemoryNode, MemorySystem, TierKind
from repro.mem.tlb import Tlb

__all__ = [
    "AddressSpace",
    "Buffer",
    "SharedLLC",
    "CxlMemoryParams",
    "DramParams",
    "DDR4_6CH",
    "DDR5_8CH",
    "Iommu",
    "IommuParams",
    "FairShareLink",
    "SerialLink",
    "NumaTopology",
    "UpiParams",
    "PageTable",
    "PAGE_4K",
    "PAGE_2M",
    "Tlb",
    "MemoryNode",
    "MemorySystem",
    "TierKind",
]
