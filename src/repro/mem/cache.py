"""Shared last-level cache with a DDIO way partition.

The LLC is modelled at *occupancy* granularity: per-agent byte counts
with proportional eviction, split into a main region (core allocations,
all ways) and an I/O region (DDIO writes, restricted to ``ddio_ways``).
This captures everything the paper's cache experiments need:

* streaming software copies blow up their cores' occupancy and evict
  co-runners (Fig 12b, the +43% X-Mem latency of Fig 13);
* DSA reads never allocate, and DSA writes are confined to the DDIO
  ways, so co-runners keep their footprint (Fig 12c);
* once the aggregate streaming-write pressure exceeds what the DDIO
  partition absorbs, writes leak to DRAM — the *leaky DMA* throughput
  collapse of Fig 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SharedLLC:
    """Occupancy-level model of a way-partitioned shared LLC."""

    def __init__(
        self,
        size: int,
        ways: int = 15,
        ddio_ways: int = 2,
        read_latency: float = 40.0,
        write_latency: float = 35.0,
        ddio_drain_bandwidth: float = 65.0,
    ):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if not 0 < ddio_ways < ways:
            raise ValueError(f"need 0 < ddio_ways < ways, got {ddio_ways}/{ways}")
        self.size = size
        self.ways = ways
        self.ddio_ways = ddio_ways
        self.read_latency = read_latency
        self.write_latency = write_latency
        #: Rate (GB/s) at which dirty DDIO lines drain to DRAM.
        self.ddio_drain_bandwidth = ddio_drain_bandwidth
        self._main: Dict[str, float] = {}
        self._io: Dict[str, float] = {}
        self._io_streams: Dict[str, Tuple[float, float]] = {}
        self._history: Optional[Dict[str, List[Tuple[float, float]]]] = None

    # -- capacities -------------------------------------------------------
    @property
    def io_capacity(self) -> float:
        """Bytes the DDIO partition can hold."""
        return self.size * self.ddio_ways / self.ways

    @property
    def main_capacity(self) -> float:
        return self.size - self.io_capacity

    def occupancy(self, agent: str) -> float:
        return self._main.get(agent, 0.0) + self._io.get(agent, 0.0)

    @property
    def total_occupancy(self) -> float:
        return sum(self._main.values()) + sum(self._io.values())

    def hit_fraction(self, agent: str, working_set: float) -> float:
        """Fraction of an agent's working set currently resident."""
        if working_set <= 0:
            return 1.0
        return min(1.0, self.occupancy(agent) / working_set)

    # -- occupancy dynamics ------------------------------------------------
    def touch(
        self,
        agent: str,
        nbytes: float,
        max_occupancy: Optional[float] = None,
        io: bool = False,
        now: float = 0.0,
    ) -> float:
        """Bring up to ``nbytes`` of new lines in for ``agent``.

        ``max_occupancy`` caps the agent's footprint (its working-set
        size) — touching data already resident does not grow occupancy.
        Returns the number of bytes actually inserted.
        """
        if nbytes < 0:
            raise ValueError(f"negative touch size: {nbytes}")
        region = self._io if io else self._main
        capacity = self.io_capacity if io else self.main_capacity
        current = region.get(agent, 0.0)
        target = current + nbytes
        if max_occupancy is not None:
            target = min(target, max_occupancy)
        target = min(target, capacity)
        inserted = max(0.0, target - current)
        if inserted == 0.0:
            return 0.0
        self._evict_for(region, capacity, inserted, now)
        region[agent] = region.get(agent, 0.0) + inserted
        self._record(agent, now)
        return inserted

    def shrink(self, agent: str, nbytes: float, io: bool = False, now: float = 0.0) -> None:
        """Drop up to ``nbytes`` of the agent's lines (dirty drain, free)."""
        region = self._io if io else self._main
        if agent in region:
            region[agent] = max(0.0, region[agent] - nbytes)
            self._record(agent, now)

    def set_level(self, agent: str, nbytes: float, io: bool = False, now: float = 0.0) -> None:
        """Directly set an agent's occupancy (for analytic callers,
        e.g. the X-Mem equilibrium model).

        If the region lacks room, other agents shrink proportionally —
        inserting into a full cache always displaces someone.
        """
        if nbytes < 0:
            raise ValueError(f"negative occupancy: {nbytes}")
        region = self._io if io else self._main
        capacity = self.io_capacity if io else self.main_capacity
        target = min(nbytes, capacity)
        others = sum(v for k, v in region.items() if k != agent)
        overflow = others + target - capacity
        if overflow > 0 and others > 0:
            scale = (others - overflow) / others
            for victim in list(region):
                if victim != agent:
                    region[victim] *= scale
                    self._record(victim, now)
        region[agent] = target
        self._record(agent, now)

    def clear(self, agent: str, now: float = 0.0) -> None:
        self._main.pop(agent, None)
        self._io.pop(agent, None)
        self._record(agent, now)

    def _evict_for(
        self, region: Dict[str, float], capacity: float, incoming: float, now: float
    ) -> None:
        resident = sum(region.values())
        overflow = resident + incoming - capacity
        if overflow <= 0:
            return
        scale = max(0.0, (resident - overflow) / resident) if resident else 0.0
        for victim in list(region):
            region[victim] *= scale
            self._record(victim, now)

    # -- leaky-DMA pressure tracking ---------------------------------------
    def register_io_stream(self, agent: str, footprint: float, demand_rate: float = 0.0) -> None:
        """Declare a streaming DMA write: in-flight destination bytes and
        the agent's demanded write rate (GB/s)."""
        if footprint < 0:
            raise ValueError(f"negative footprint: {footprint}")
        if demand_rate < 0:
            raise ValueError(f"negative demand rate: {demand_rate}")
        self._io_streams[agent] = (footprint, demand_rate)

    def unregister_io_stream(self, agent: str) -> None:
        self._io_streams.pop(agent, None)

    @property
    def io_pressure(self) -> float:
        """Aggregate in-flight DMA destination footprint (bytes)."""
        return sum(fp for fp, _rate in self._io_streams.values())

    @property
    def io_write_demand(self) -> float:
        """Aggregate demanded DMA write rate (GB/s)."""
        return sum(rate for _fp, rate in self._io_streams.values())

    @property
    def leaky(self) -> bool:
        """True in the *leaky DMA* regime (Fig 10): the write footprint
        overflows the DDIO ways **and** dirty lines are produced faster
        than the LLC drains them, so writes spill to DRAM."""
        return (
            self.io_pressure > self.io_capacity
            and self.io_write_demand > self.ddio_drain_bandwidth
        )

    # -- occupancy timelines (Fig 12) ---------------------------------------
    def enable_history(self) -> None:
        self._history = {}

    def history(self, agent: str) -> List[Tuple[float, float]]:
        if self._history is None:
            raise RuntimeError("history not enabled; call enable_history() first")
        return list(self._history.get(agent, []))

    def _record(self, agent: str, now: float) -> None:
        if self._history is not None:
            self._history.setdefault(agent, []).append((now, self.occupancy(agent)))
