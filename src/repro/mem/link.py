"""Fair-share bandwidth links.

A :class:`FairShareLink` models a bandwidth-limited resource (device
fabric port, DRAM node, UPI link, CXL port) shared by concurrent flows
using generalized processor sharing: at any instant, each of the ``n``
active flows progresses at ``bandwidth / n``.  Callers ask for
``transfer(nbytes)`` and receive an event that triggers when the flow's
bytes have drained.

Propagation latency is *not* part of the link — callers model latency
with explicit timeouts so that pipelined (throughput) and un-pipelined
(latency) experiments can compose the two differently.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import Environment, Event

#: Residual-byte tolerance when deciding a flow has drained.
_EPSILON = 1e-6


class _Flow:
    __slots__ = ("remaining", "event", "weight")

    def __init__(self, nbytes: float, event: Event, weight: float = 1.0):
        self.remaining = float(nbytes)
        self.event = event
        self.weight = weight


class FairShareLink:
    """Bandwidth-limited pipe with equal sharing among active flows."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        name: str = "",
        per_flow_cap: Optional[float] = None,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per-flow cap must be positive, got {per_flow_cap}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        #: Single-stream ceiling (e.g. one sequential DRAM stream cannot
        #: use every channel); None = only the aggregate limit applies.
        self.per_flow_cap = per_flow_cap
        self._flows: List[_Flow] = []
        self._last_update = env.now
        self._timer_version = 0
        self.bytes_completed = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def instantaneous_rate(self) -> float:
        """Per-flow rate right now (the full bandwidth when idle)."""
        n = max(1, len(self._flows))
        rate = self.bandwidth / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start a flow of ``nbytes``; returns the completion event.

        ``weight`` sets the flow's share under contention (weighted
        fair sharing — the QoS/traffic-class knob of §3.4): a flow of
        weight 2 drains twice as fast as a weight-1 flow while both
        are active.  The optional per-flow cap still applies.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        event = Event(self.env)
        if nbytes == 0:
            event.succeed()
            return event
        self._advance()
        self._flows.append(_Flow(nbytes, event, weight=weight))
        self.bytes_completed += nbytes
        self._reschedule()
        return event

    def time_to_transfer(self, nbytes: float) -> float:
        """Uncontended duration for ``nbytes`` (planning helper)."""
        return nbytes / self.bandwidth

    # -- internals -------------------------------------------------------
    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        for flow, rate in self._rates():
            flow.remaining -= rate * elapsed

    def _rates(self):
        """Current (flow, rate) pairs under weighted fair sharing."""
        total_weight = sum(flow.weight for flow in self._flows)
        pairs = []
        for flow in self._flows:
            rate = self.bandwidth * flow.weight / total_weight
            if self.per_flow_cap is not None:
                rate = min(rate, self.per_flow_cap)
            pairs.append((flow, rate))
        return pairs

    def _reschedule(self) -> None:
        # Complete drained flows (oldest first for determinism).
        still_active: List[_Flow] = []
        for flow in self._flows:
            if flow.remaining <= _EPSILON:
                flow.event.succeed()
            else:
                still_active.append(flow)
        self._flows = still_active
        self._timer_version += 1
        if not self._flows:
            return
        version = self._timer_version
        next_done = min(flow.remaining / rate for flow, rate in self._rates())

        def _wake(_event: Event) -> None:
            if version == self._timer_version:
                self._advance()
                self._reschedule()

        timer = self.env.timeout(next_done)
        timer.callbacks.append(_wake)


class SerialLink:
    """Strictly serialized link: one transfer at a time, FIFO order.

    Models narrow interfaces where requests do not interleave, e.g. the
    non-posted ENQCMD path or a single DMA channel's descriptor fetch.
    """

    def __init__(self, env: Environment, bandwidth: float, name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        self._free_at = env.now

    def transfer(self, nbytes: float) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(self.env.now, self._free_at)
        duration = nbytes / self.bandwidth
        self._free_at = start + duration
        event = Event(self.env)
        event.succeed(delay=self._free_at - self.env.now)
        return event
