"""Fair-share bandwidth links (virtual-time implementation).

A :class:`FairShareLink` models a bandwidth-limited resource (device
fabric port, DRAM node, UPI link, CXL port) shared by concurrent flows
using generalized processor sharing: at any instant, each active flow
progresses proportionally to its weight.  Callers ask for
``transfer(nbytes)`` and receive an event that triggers when the flow's
bytes have drained.

Propagation latency is *not* part of the link — callers model latency
with explicit timeouts so that pipelined (throughput) and un-pipelined
(latency) experiments can compose the two differently.

Algorithm
---------
The link keeps a **virtual clock** ``V`` (GPS virtual time): between
membership changes, ``V`` advances at the per-unit-weight service rate,
and every flow carries a fixed *virtual finish tag* ``V_join +
nbytes/weight``.  A flow is done exactly when ``V`` reaches its tag, so
the active flows sit in a heap ordered by tag and a join/leave costs
O(log n) — no per-flow rate recomputation, no per-flow byte updates.
One wake timer is armed for the earliest tag and **cancelled**
(:meth:`repro.sim.engine.Event.cancel`) whenever the earliest finish
moves, so the calendar never accumulates stale link timers.

``per_flow_cap`` (the §3.4 single-stream ceiling) folds into the
virtual-clock rate while all active weights are equal — the common
case, where either every flow is capped or none is.  When flows with
*different* weights contend under a cap, the link switches to an exact
water-filling mode (capped flows drain at the cap, the unused share is
redistributed to the uncapped flows) that recomputes rates per
membership change; it returns to the virtual-time fast path once the
link drains idle.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.sim.engine import Environment, Event, Timeout

#: Residual-byte tolerance when deciding a flow has drained.
_EPSILON = 1e-6


class _Flow:
    __slots__ = ("size", "weight", "event", "seq", "vfinish", "remaining", "rate")

    def __init__(self, nbytes: float, event: Event, weight: float):
        self.size = float(nbytes)
        self.weight = weight
        self.event = event
        self.seq = 0  # link-local join order (deterministic ties)
        self.vfinish = 0.0  # virtual-time mode: finish tag
        self.remaining = 0.0  # water-filling mode: bytes left
        self.rate = 0.0  # water-filling mode: current rate


class FairShareLink:
    """Bandwidth-limited pipe with weighted fair sharing among flows."""

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        name: str = "",
        per_flow_cap: Optional[float] = None,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if per_flow_cap is not None and per_flow_cap <= 0:
            raise ValueError(f"per-flow cap must be positive, got {per_flow_cap}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        #: Single-stream ceiling (e.g. one sequential DRAM stream cannot
        #: use every channel); None = only the aggregate limit applies.
        self.per_flow_cap = per_flow_cap
        #: Bytes of all flows that have fully drained (counted at drain
        #: time — in-flight bytes are in :attr:`bytes_inflight`).
        self.bytes_completed = 0.0
        self._last_update = env.now
        self._seq = 0
        # Virtual-time state (fast path).
        self._vheap: List = []  # (vfinish, seq, flow)
        self._V = 0.0
        self._W = 0.0  # total active weight
        self._n = 0
        self._uniform_weight: Optional[float] = None
        # Water-filling state (engaged only for mixed weights + cap).
        self._wf_flows: Optional[List[_Flow]] = None
        # Single wake timer, cancelled and re-armed on churn.
        self._timer: Optional[Timeout] = None
        self._timer_at = 0.0

    # -- public surface --------------------------------------------------
    @property
    def active_flows(self) -> int:
        if self._wf_flows is not None:
            return len(self._wf_flows)
        return self._n

    @property
    def bytes_inflight(self) -> float:
        """Bytes submitted but not yet drained, as of ``env.now``.

        Pure read: advances nothing and completes nothing, so it is safe
        to sample mid-run (telemetry, tests).
        """
        now = self.env.now
        elapsed = now - self._last_update
        if self._wf_flows is not None:
            if elapsed <= 0:
                return sum(flow.remaining for flow in self._wf_flows)
            return sum(
                max(0.0, flow.remaining - flow.rate * elapsed) for flow in self._wf_flows
            )
        if not self._n:
            return 0.0
        v_now = self._V + (elapsed * self._vrate() if elapsed > 0 else 0.0)
        return sum(
            max(0.0, (flow.vfinish - v_now) * flow.weight)
            for _tag, _seq, flow in self._vheap
        )

    def instantaneous_rate(self) -> float:
        """Equal-share per-flow rate right now (full bandwidth when idle).

        Kept as the historical equal-weight approximation: callers use it
        for planning, not accounting, and weighted flows are the
        exception.
        """
        n = max(1, self.active_flows)
        rate = self.bandwidth / n
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    def rate_of(self, weight: float = 1.0) -> float:
        """Rate a *new* flow of ``weight`` would get right now.

        Pure read for planners (the fidelity tier's rate-bound check):
        no event is dispatched, no flow state changes, and the answer
        accounts for the weights actually in flight — unlike
        :meth:`instantaneous_rate`, which keeps the historical
        equal-share approximation for its existing callers.
        """
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        if self._wf_flows is not None:
            total = sum(flow.weight for flow in self._wf_flows) + weight
        else:
            total = self._W + weight
        rate = self.bandwidth * weight / total
        if self.per_flow_cap is not None:
            rate = min(rate, self.per_flow_cap)
        return rate

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start a flow of ``nbytes``; returns the completion event.

        ``weight`` sets the flow's share under contention (weighted
        fair sharing — the QoS/traffic-class knob of §3.4): a flow of
        weight 2 drains twice as fast as a weight-1 flow while both
        are active.  The optional per-flow cap still applies, and
        bandwidth left unused by capped flows is redistributed to the
        uncapped ones (water-filling).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        event = Event(self.env)
        if nbytes == 0:
            event.succeed()
            return event
        flow = _Flow(nbytes, event, weight)
        self._sync()
        if (
            self._wf_flows is None
            and self.per_flow_cap is not None
            and self._n
            and weight != self._uniform_weight
        ):
            self._enter_waterfill()
        if self._wf_flows is not None:
            self._seq += 1
            flow.seq = self._seq
            flow.remaining = flow.size
            self._wf_flows.append(flow)
            self._wf_rearm()
        else:
            if self._n == 0:
                self._V = 0.0
                self._W = 0.0
                self._uniform_weight = weight
            flow.vfinish = self._V + flow.size / weight
            self._seq += 1
            flow.seq = self._seq
            heapq.heappush(self._vheap, (flow.vfinish, flow.seq, flow))
            self._W += weight
            self._n += 1
            self._rearm()
        return event

    def time_to_transfer(self, nbytes: float) -> float:
        """Uncontended duration for ``nbytes`` (planning helper)."""
        return nbytes / self.bandwidth

    # -- virtual-time fast path ------------------------------------------
    def _vrate(self) -> float:
        """dV/dt: service per unit weight delivered to each active flow."""
        rate = self.bandwidth / self._W
        if self.per_flow_cap is not None:
            # Weights are uniform on this path, so the cap either binds
            # for every flow or for none.
            capped = self.per_flow_cap / self._uniform_weight
            if capped < rate:
                return capped
        return rate

    def _sync(self) -> None:
        """Advance to ``env.now`` and complete drained flows."""
        if self._wf_flows is not None:
            self._wf_sync()
            return
        now = self.env.now
        if self._n:
            elapsed = now - self._last_update
            if elapsed > 0:
                self._V += elapsed * self._vrate()
        self._last_update = now
        heap = self._vheap
        v_now = self._V
        while heap and (heap[0][0] - v_now) * heap[0][2].weight <= _EPSILON:
            _tag, _seq, flow = heapq.heappop(heap)
            self._W -= flow.weight
            self._n -= 1
            self.bytes_completed += flow.size
            flow.event.succeed()
        if self._n == 0:
            self._V = 0.0
            self._W = 0.0
            self._uniform_weight = None

    def _rearm(self) -> None:
        """Point the single wake timer at the earliest finish."""
        if not self._n:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        delay = (self._vheap[0][0] - self._V) / self._vrate()
        when = self.env.now + delay
        if self._timer is not None and not self._timer.processed:
            if self._timer_at == when and not self._timer.cancelled:
                return  # earliest finish unchanged — keep the timer
            self._timer.cancel()
        self._timer = self.env.timeout(delay)
        self._timer_at = when
        self._timer.callbacks.append(self._wake)

    def _wake(self, _event: Event) -> None:
        self._timer = None
        self._sync()
        if self._wf_flows is not None:
            self._wf_rearm()
        else:
            self._rearm()

    # -- water-filling slow path (mixed weights under a cap) -------------
    def _enter_waterfill(self) -> None:
        """Materialize per-flow byte counters and leave virtual time."""
        flows: List[_Flow] = []
        while self._vheap:
            _tag, _seq, flow = heapq.heappop(self._vheap)
            flow.remaining = (flow.vfinish - self._V) * flow.weight
            flows.append(flow)
        flows.sort(key=lambda flow: flow.seq)
        self._wf_flows = flows
        self._V = 0.0
        self._W = 0.0
        self._n = 0
        self._uniform_weight = None

    def _wf_rates(self) -> None:
        """Water-filling under the uniform per-flow cap.

        Flows whose proportional share exceeds the cap drain at exactly
        the cap; the bandwidth they cannot use is re-shared among the
        remaining flows (iterating, since the re-share can push more
        flows over the cap).
        """
        cap = self.per_flow_cap
        active = self._wf_flows
        remaining_bw = self.bandwidth
        while active:
            total_weight = sum(flow.weight for flow in active)
            fair = remaining_bw / total_weight
            uncapped = []
            n_capped = 0
            for flow in active:
                if flow.weight * fair > cap:
                    flow.rate = cap
                    n_capped += 1
                else:
                    uncapped.append(flow)
            if not n_capped:
                for flow in active:
                    flow.rate = flow.weight * fair
                return
            remaining_bw -= cap * n_capped
            active = uncapped

    def _wf_sync(self) -> None:
        now = self.env.now
        flows = self._wf_flows
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0:
            for flow in flows:
                flow.remaining -= flow.rate * elapsed
        survivors: List[_Flow] = []
        for flow in flows:  # join order: oldest completes first
            if flow.remaining <= _EPSILON:
                self.bytes_completed += flow.size
                flow.event.succeed()
            else:
                survivors.append(flow)
        if survivors:
            self._wf_flows = survivors
        else:
            # Drained idle: return to the O(log n) virtual-time path.
            self._wf_flows = None
            self._V = 0.0
            self._W = 0.0
            self._n = 0
            self._uniform_weight = None

    def _wf_rearm(self) -> None:
        flows = self._wf_flows
        if not flows:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        self._wf_rates()
        delay = min(flow.remaining / flow.rate for flow in flows)
        when = self.env.now + delay
        if self._timer is not None and not self._timer.processed:
            if self._timer_at == when and not self._timer.cancelled:
                return
            self._timer.cancel()
        self._timer = self.env.timeout(delay)
        self._timer_at = when
        self._timer.callbacks.append(self._wake)


class SerialLink:
    """Strictly serialized link: one transfer at a time, FIFO order.

    Models narrow interfaces where requests do not interleave, e.g. the
    non-posted ENQCMD path or a single DMA channel's descriptor fetch.

    Completion events are ordinary scheduled events, so a caller that
    loses interest can ``event.cancel()`` them: the callbacks never run,
    but the time reservation stays — a posted request still occupies the
    channel even if nobody is waiting for it.
    """

    def __init__(self, env: Environment, bandwidth: float, name: str = ""):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.name = name
        self._free_at = env.now

    def transfer(self, nbytes: float) -> Event:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        start = max(self.env.now, self._free_at)
        duration = nbytes / self.bandwidth
        self._free_at = start + duration
        event = Event(self.env)
        event.succeed(delay=self._free_at - self.env.now)
        return event
