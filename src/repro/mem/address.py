"""Process address spaces and buffers.

A :class:`Buffer` is the unit every operation descriptor points at: a
contiguous virtual range living on some memory node (DRAM of a socket,
CXL tier) and optionally *backed* by real bytes so the functional layer
(:mod:`repro.dsa.ops`) can actually transform data.  Timing-only
experiments allocate unbacked buffers to keep parameter sweeps fast.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mem.pagetable import PAGE_4K, PageTable


class Buffer:
    """A contiguous virtual memory range owned by one address space."""

    def __init__(
        self,
        va: int,
        size: int,
        node: int,
        pasid: int,
        backed: bool = False,
        in_llc: bool = False,
    ):
        if size <= 0:
            raise ValueError(f"buffer size must be positive, got {size}")
        self.va = va
        self.size = size
        self.node = node
        self.pasid = pasid
        self.in_llc = in_llc
        self._data: Optional[np.ndarray] = np.zeros(size, dtype=np.uint8) if backed else None

    @property
    def backed(self) -> bool:
        return self._data is not None

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise RuntimeError("buffer is not backed by data (timing-only buffer)")
        return self._data

    def view(self, offset: int = 0, length: Optional[int] = None) -> np.ndarray:
        """Writable slice of the backing bytes."""
        length = self.size - offset if length is None else length
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"range [{offset}, {offset + length}) outside buffer of {self.size} bytes"
            )
        return self.data[offset : offset + length]

    def fill_random(self, rng: np.random.Generator) -> None:
        self.data[:] = rng.integers(0, 256, size=self.size, dtype=np.uint8)

    def __repr__(self) -> str:
        kind = "backed" if self.backed else "timing"
        return f"Buffer(va={self.va:#x}, size={self.size}, node={self.node}, {kind})"


class AddressSpace:
    """One process's virtual address space (one PASID, one page table)."""

    _next_pasid = 1

    def __init__(self, page_size: int = PAGE_4K, pasid: Optional[int] = None):
        if pasid is None:
            pasid = AddressSpace._next_pasid
            AddressSpace._next_pasid += 1
        self.pasid = pasid
        self.page_table = PageTable(page_size=page_size)
        self._brk = page_size  # never hand out address 0
        self._buffers: Dict[int, Buffer] = {}

    @property
    def page_size(self) -> int:
        return self.page_table.page_size

    def allocate(
        self,
        size: int,
        node: int = 0,
        backed: bool = False,
        prefault: bool = True,
        in_llc: bool = False,
        align: Optional[int] = None,
    ) -> Buffer:
        """Allocate a buffer; ``prefault`` populates page mappings eagerly.

        Non-prefaulted buffers make the device take IOMMU page faults on
        first touch, which is how the paper's page-fault discussions
        (§4.3) are exercised.
        """
        align = align or self.page_size
        if align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        va = (self._brk + align - 1) & ~(align - 1)
        self._brk = va + size
        buffer = Buffer(va, size, node=node, pasid=self.pasid, backed=backed, in_llc=in_llc)
        if prefault:
            self.page_table.map_range(va, size)
        self._buffers[va] = buffer
        return buffer

    def buffer_at(self, va: int) -> Buffer:
        """Find the buffer containing ``va`` (exact base or interior)."""
        if va in self._buffers:
            return self._buffers[va]
        for buffer in self._buffers.values():
            if buffer.va <= va < buffer.va + buffer.size:
                return buffer
        raise KeyError(f"no buffer contains address {va:#x}")

    def free(self, buffer: Buffer) -> None:
        self._buffers.pop(buffer.va, None)
