"""DRAM node parameters with the paper's two platform presets (Table 2).

Bandwidths are *effective streaming* numbers (not pin-rate peaks), which
is what the token-bucket link model needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramParams:
    """One memory node's channel configuration and timing."""

    channels: int
    channel_bandwidth: float  # GB/s per channel, effective
    idle_read_latency: float  # ns, unloaded
    idle_write_latency: float  # ns, posted-write acceptance
    #: Ceiling for a single sequential stream (bank/row-buffer limits);
    #: several concurrent streams are needed to use every channel.
    stream_bandwidth: float = 24.0
    technology: str = "DDR"

    @property
    def bandwidth(self) -> float:
        """Aggregate effective node bandwidth (GB/s == bytes/ns)."""
        return self.channels * self.channel_bandwidth

    def validate(self) -> None:
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")
        if self.channel_bandwidth <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.idle_read_latency <= 0 or self.idle_write_latency <= 0:
            raise ValueError("latencies must be positive")


#: Ice Lake socket: six DDR4-3200 channels (Table 2).
DDR4_6CH = DramParams(
    channels=6,
    channel_bandwidth=21.0,
    idle_read_latency=85.0,
    idle_write_latency=60.0,
    stream_bandwidth=19.0,
    technology="DDR4-3200",
)

#: Sapphire Rapids socket: eight DDR5-4800 channels (Table 2).
DDR5_8CH = DramParams(
    channels=8,
    channel_bandwidth=29.0,
    idle_read_latency=95.0,
    idle_write_latency=65.0,
    technology="DDR5-4800",
)
