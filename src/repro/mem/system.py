"""The composed memory system: nodes, links, LLC, IOMMU, topology.

:class:`MemorySystem` is the single object device models and CPU models
talk to.  It answers latency queries (with NUMA/UPI and CXL asymmetry
folded in), hands out fair-share bandwidth flows per node, and hosts
the shared LLC whose DDIO partition decides whether DMA writes are
absorbed on-chip or leak to DRAM.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.mem.cache import SharedLLC
from repro.mem.cxl import CxlMemoryParams
from repro.mem.dram import DramParams, DDR4_6CH, DDR5_8CH
from repro.mem.iommu import Iommu
from repro.mem.link import FairShareLink
from repro.mem.numa import NumaTopology, UpiParams
from repro.sim.engine import Environment, Event


class TierKind(enum.Enum):
    DRAM = "dram"
    CXL = "cxl"
    PMEM = "pmem"


#: Fraction of a DRAM node's streaming bandwidth available to writes.
_WRITE_BW_FRACTION = 0.45

#: Extra write latency when a copy's source and destination share one
#: node — read/write turnaround on the same channels.  This is what
#: makes split-location buffers "slightly better" in Fig 6a (sync BS 1).
SAME_NODE_TURNAROUND_NS = 18.0

#: Serialization at one socket's translation agent per *other* remote
#: translation already in flight there.  Every device targeting a
#: socket shares that socket's IOMMU (paper §3.2: the DSA sits behind
#: the host IOMMU), so concurrent remote-socket descriptors queue.
ATS_SERIALIZE_NS = 12.0


@dataclass
class MemoryNode:
    """One NUMA node: a memory tier on some socket."""

    node_id: int
    kind: TierKind
    socket: int
    read_latency: float
    write_latency: float
    read_link: FairShareLink
    write_link: FairShareLink
    #: Shared internal bus (CXL devices); None for DRAM nodes.
    internal_link: Optional[FairShareLink] = None
    #: Live byte counters (``mem.<tier><id>.rd/wr.bytes``), set on register.
    rd_bytes: Optional[object] = None
    wr_bytes: Optional[object] = None


class MemorySystem:
    """Sockets' memory tiers plus the shared LLC and IOMMU."""

    def __init__(
        self,
        env: Environment,
        llc: Optional[SharedLLC] = None,
        topology: Optional[NumaTopology] = None,
        iommu: Optional[Iommu] = None,
    ):
        self.env = env
        self.llc = llc or SharedLLC(size=105 * 1024 * 1024)
        self.topology = topology or NumaTopology()
        self.iommu = iommu or Iommu()
        self.iommu.attach_metrics(env.metrics, prefix="mem.iommu")
        self._nodes: Dict[int, MemoryNode] = {}
        self._upi_links: Dict[int, FairShareLink] = {}
        #: Fleet platforms opt into the remote-translation cost model
        #: (see :meth:`ats_acquire`); off by default so single-socket
        #: and legacy multi-device setups keep their exact timings.
        self.model_ats_contention = False
        self._ats_inflight: Dict[int, int] = {}

    # -- construction -------------------------------------------------------
    def add_dram_node(self, node_id: int, socket: int, params: DramParams) -> MemoryNode:
        params.validate()
        node = MemoryNode(
            node_id=node_id,
            kind=TierKind.DRAM,
            socket=socket,
            read_latency=params.idle_read_latency,
            write_latency=params.idle_write_latency,
            read_link=FairShareLink(
                self.env,
                params.bandwidth,
                f"dram{node_id}.rd",
                per_flow_cap=params.stream_bandwidth,
            ),
            write_link=FairShareLink(
                self.env,
                params.bandwidth * _WRITE_BW_FRACTION,
                f"dram{node_id}.wr",
                per_flow_cap=params.stream_bandwidth,
            ),
        )
        self._register(node)
        return node

    def add_cxl_node(self, node_id: int, socket: int, params: CxlMemoryParams) -> MemoryNode:
        params.validate()
        node = MemoryNode(
            node_id=node_id,
            kind=TierKind.CXL,
            socket=socket,
            read_latency=params.read_latency,
            write_latency=params.write_latency,
            read_link=FairShareLink(self.env, params.read_bandwidth, f"cxl{node_id}.rd"),
            write_link=FairShareLink(self.env, params.write_bandwidth, f"cxl{node_id}.wr"),
            internal_link=FairShareLink(
                self.env, params.internal_bandwidth, f"cxl{node_id}.bus"
            ),
        )
        self._register(node)
        return node

    def add_pmem_node(self, node_id: int, socket: int, params) -> MemoryNode:
        """Persistent-memory bank (G4's third tier kind)."""
        from repro.mem.pmem import PmemParams

        if not isinstance(params, PmemParams):
            raise TypeError(f"expected PmemParams, got {type(params).__name__}")
        params.validate()
        node = MemoryNode(
            node_id=node_id,
            kind=TierKind.PMEM,
            socket=socket,
            read_latency=params.read_latency,
            write_latency=params.write_latency,
            read_link=FairShareLink(
                self.env,
                params.read_bandwidth,
                f"pmem{node_id}.rd",
                per_flow_cap=params.stream_bandwidth,
            ),
            write_link=FairShareLink(
                self.env,
                params.write_bandwidth,
                f"pmem{node_id}.wr",
                per_flow_cap=params.stream_bandwidth,
            ),
        )
        self._register(node)
        return node

    def _register(self, node: MemoryNode) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already exists")
        prefix = f"mem.{node.kind.value}{node.node_id}"
        node.rd_bytes = self.env.metrics.counter(f"{prefix}.rd.bytes")
        node.wr_bytes = self.env.metrics.counter(f"{prefix}.wr.bytes")
        self._nodes[node.node_id] = node
        self.topology.place_node(node.node_id, node.socket)
        if node.socket not in self._upi_links:
            self._upi_links[node.socket] = FairShareLink(
                self.env, self.topology.upi.bandwidth, f"upi.socket{node.socket}"
            )

    def node(self, node_id: int) -> MemoryNode:
        if node_id not in self._nodes:
            raise KeyError(f"unknown memory node {node_id}")
        return self._nodes[node_id]

    @property
    def nodes(self) -> Dict[int, MemoryNode]:
        return dict(self._nodes)

    # -- latency queries -----------------------------------------------------
    def read_latency(self, node_id: int, from_socket: int, in_llc: bool = False) -> float:
        """Unloaded read latency as seen from ``from_socket``."""
        if in_llc:
            return self.llc.read_latency
        node = self.node(node_id)
        hop, _remote = self.topology.crossing_cost(from_socket, node_id)
        return node.read_latency + hop

    def write_latency(
        self,
        node_id: int,
        from_socket: int,
        to_llc: bool = False,
        same_node_as_read: bool = False,
    ) -> float:
        """Unloaded write latency; ``to_llc`` models a DDIO-hinted write."""
        if to_llc:
            return self.llc.write_latency
        node = self.node(node_id)
        hop, _remote = self.topology.crossing_cost(from_socket, node_id)
        penalty = SAME_NODE_TURNAROUND_NS if same_node_as_read else 0.0
        return node.write_latency + hop + penalty

    # -- remote translation (shared per-socket IOMMU) --------------------------
    def ats_acquire(self, from_socket: int, home_sockets) -> float:
        """Begin remote translations; returns the extra latency (ns).

        A descriptor whose operand lives on another socket sends its
        address-translation request across UPI to the *home* socket's
        IOMMU: one round trip of hop latency plus queueing behind every
        remote translation already in flight at that agent
        (:data:`ATS_SERIALIZE_NS` each).  Callers must pair with
        :meth:`ats_release` once the translation window closes.  Only
        active when :attr:`model_ats_contention` is set (fleet
        platforms); returns 0.0 otherwise.
        """
        if not self.model_ats_contention:
            return 0.0
        extra = 0.0
        metrics = self.env.metrics
        for home in home_sockets:
            pending = self._ats_inflight.get(home, 0)
            cost = 2.0 * self.topology.upi.hop_latency + ATS_SERIALIZE_NS * pending
            extra = max(extra, cost)
            self._ats_inflight[home] = pending + 1
            metrics.counter(f"mem.iommu.socket{home}.remote_translations").add()
        return extra

    def ats_release(self, home_sockets) -> None:
        """End remote translations begun by :meth:`ats_acquire`."""
        if not self.model_ats_contention:
            return
        for home in home_sockets:
            self._ats_inflight[home] = max(0, self._ats_inflight.get(home, 0) - 1)

    # -- bandwidth flows -------------------------------------------------------
    def read_flow(self, node_id: int, nbytes: float, from_socket: int) -> Event:
        """Stream ``nbytes`` out of a node (adds UPI flow when remote)."""
        return self._flow(self.node(node_id), nbytes, from_socket, write=False)

    def write_flow(self, node_id: int, nbytes: float, from_socket: int) -> Event:
        return self._flow(self.node(node_id), nbytes, from_socket, write=True)

    def _flow(self, node: MemoryNode, nbytes: float, from_socket: int, write: bool) -> Event:
        (node.wr_bytes if write else node.rd_bytes).add(nbytes)
        link = node.write_link if write else node.read_link
        flows = [link.transfer(nbytes)]
        if node.internal_link is not None:
            flows.append(node.internal_link.transfer(nbytes))
        if self.topology.is_remote(from_socket, node.node_id):
            flows.append(self._upi_links[node.socket].transfer(nbytes))
        if len(flows) == 1:
            return flows[0]
        return self.env.all_of(flows)

    # -- presets ---------------------------------------------------------------
    @classmethod
    def spr(cls, env: Environment, with_cxl: bool = False, sockets: int = 2) -> "MemorySystem":
        """Sapphire Rapids: DDR5 x8 per socket, 105 MB LLC, optional CXL."""
        system = cls(
            env,
            llc=SharedLLC(size=105 * 1024 * 1024, ways=15, ddio_ways=2),
            topology=NumaTopology(sockets=sockets, upi=UpiParams()),
        )
        for socket in range(sockets):
            system.add_dram_node(socket, socket=socket, params=DDR5_8CH)
        if with_cxl:
            system.add_cxl_node(sockets, socket=0, params=CxlMemoryParams())
        return system

    @classmethod
    def icx(cls, env: Environment, sockets: int = 2) -> "MemorySystem":
        """Ice Lake: DDR4 x6 per socket, 57 MB LLC (Table 2 baseline)."""
        system = cls(
            env,
            llc=SharedLLC(size=57 * 1024 * 1024, ways=12, ddio_ways=2),
            topology=NumaTopology(sockets=sockets, upi=UpiParams(hop_latency=62.0)),
        )
        for socket in range(sockets):
            system.add_dram_node(socket, socket=socket, params=DDR4_6CH)
        return system
