"""CXL.mem expansion tier (paper §4.2, Fig 6b).

Modelled after the paper's Agilex-I FPGA development kit: a CXL 1.1
type-3 device with 16 GB of DDR4 behind the link, exposed as a
CPU-less NUMA node.  Two properties drive the figure's shape:

* both read and write bandwidth are far below local DRAM, and
* **write latency exceeds read latency**, which is why `CXL→DRAM`
  outperforms `DRAM→CXL` (guideline G4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CxlMemoryParams:
    """Latency/bandwidth of a CXL-attached memory device."""

    capacity: int = 16 * 1024**3
    read_bandwidth: float = 20.0  # GB/s
    write_bandwidth: float = 13.0  # GB/s
    #: The device's internal DDR4 bus, shared by reads and writes —
    #: this is what makes CXL→CXL copies the slowest configuration.
    internal_bandwidth: float = 16.0  # GB/s
    read_latency: float = 210.0  # ns, unloaded
    write_latency: float = 330.0  # ns — higher than read (G4 anchor)
    link: str = "CXL 1.1 x16"

    def validate(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("CXL bandwidths must be positive")
        if self.write_latency <= self.read_latency:
            raise ValueError(
                "CXL model requires write latency above read latency "
                f"(got read={self.read_latency}, write={self.write_latency})"
            )


#: The paper's Agilex-I development kit (16 GB DDR4 behind CXL 1.1).
AGILEX_I = CxlMemoryParams()
