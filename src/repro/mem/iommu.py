"""IOMMU model: device-side address translation and page-fault service.

DSA's shared-virtual-memory support (paper §3.2, F1) rests on the
IOMMU: the device's ATC sends translation requests tagged with a PASID;
on an IOTLB miss the IOMMU walks the process page table, and on an
unmapped page it raises a recoverable page fault serviced by the OS.
The three cost tiers (IOTLB hit, table walk, page fault) are what this
model provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.mem.pagetable import PageTable
from repro.mem.tlb import Tlb


@dataclass(frozen=True)
class IommuParams:
    """Latency parameters of the translation path (ns)."""

    iotlb_entries: int = 256
    iotlb_hit_latency: float = 10.0
    #: Added on top of the page-table's own walk latency.
    walk_overhead: float = 30.0
    #: OS service time for a recoverable (ATS) page fault.
    page_fault_latency: float = 15_000.0


class Iommu:
    """Translation agent shared by all devices on a socket."""

    def __init__(self, params: IommuParams = IommuParams()):
        self.params = params
        self._tables: Dict[int, PageTable] = {}
        self._iotlbs: Dict[int, Tlb] = {}
        self.translations = 0
        self.page_faults = 0
        self._m_translations = None
        self._m_iotlb_misses = None
        self._m_page_faults = None

    def attach_metrics(self, registry, prefix: str = "iommu") -> None:
        """Publish live counters into ``registry`` under ``prefix``.

        The IOMMU is constructed clock-free, so the owning
        :class:`~repro.mem.system.MemorySystem` wires metrics in after
        the fact (see ``docs/OBSERVABILITY.md`` for the names).
        """
        self._m_translations = registry.counter(f"{prefix}.translations")
        self._m_iotlb_misses = registry.counter(f"{prefix}.iotlb_misses")
        self._m_page_faults = registry.counter(f"{prefix}.page_faults")

    def attach(self, pasid: int, table: PageTable) -> None:
        """Register a process address space (PASID) with the IOMMU."""
        if pasid in self._tables:
            raise ValueError(f"PASID {pasid} already attached")
        self._tables[pasid] = table
        self._iotlbs[pasid] = Tlb(self.params.iotlb_entries, table.page_size)

    def detach(self, pasid: int) -> None:
        self._tables.pop(pasid, None)
        self._iotlbs.pop(pasid, None)

    def is_attached(self, pasid: int) -> bool:
        return pasid in self._tables

    def translate(
        self, pasid: int, va: int, service_fault: bool = True
    ) -> Tuple[float, bool]:
        """Translate one address; returns ``(latency_ns, faulted)``.

        ``faulted`` is True when the page was not yet mapped (e.g. a
        non-prefaulted buffer).  With ``service_fault`` (the default,
        matching BLOCK_ON_FAULT=1 behaviour) the OS services the fault
        inline: the page is mapped, the full fault latency is charged,
        and the IOTLB is filled.  With ``service_fault=False`` (the
        BOF=0 path) the fault is only *discovered*: the walk latency is
        charged, the page stays unmapped, and nothing is cached — so a
        later retry after software touches the page faults no more.
        """
        table = self._tables.get(pasid)
        if table is None:
            raise KeyError(f"PASID {pasid} not attached to IOMMU")
        self.translations += 1
        if self._m_translations is not None:
            self._m_translations.add()
        iotlb = self._iotlbs[pasid]
        if iotlb.lookup(va):
            return self.params.iotlb_hit_latency, False
        if self._m_iotlb_misses is not None:
            self._m_iotlb_misses.add()
        latency = self.params.iotlb_hit_latency + self.params.walk_overhead
        mapped_before = table.is_mapped(va)
        faulted = not mapped_before
        if faulted:
            self.page_faults += 1
            if self._m_page_faults is not None:
                self._m_page_faults.add()
            if not service_fault:
                # The walk discovered the miss; stop without mapping.
                return latency + table.walk_latency, True
        _pa, _minor = table.translate(va)
        latency += table.walk_latency
        if faulted:
            latency += self.params.page_fault_latency
        iotlb.fill(va)
        return latency, faulted

    def range_translation_cost(self, pasid: int, va: int, size: int) -> Tuple[float, float, int]:
        """Translate every page under ``[va, va+size)``.

        Returns ``(first_page_latency, pipelined_latency, faults)``.
        The first page's translation is on the critical path of a
        transfer; the remaining pages overlap with data streaming
        (paper Fig 8: page size barely affects throughput), so callers
        usually charge only ``first_page_latency`` plus any fault cost.
        """
        table = self._tables.get(pasid)
        if table is None:
            raise KeyError(f"PASID {pasid} not attached to IOMMU")
        pages = table.pages_spanned(va, size)
        if pages == 0:
            return 0.0, 0.0, 0
        first_latency, first_fault = self.translate(pasid, va)
        faults = int(first_fault)
        pipelined = 0.0
        for index in range(1, pages):
            latency, faulted = self.translate(pasid, va + index * table.page_size)
            pipelined += latency
            faults += int(faulted)
        return first_latency, pipelined, faults
