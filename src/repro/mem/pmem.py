"""Persistent-memory tier (guideline G4's third heterogeneous medium).

The paper's G4 names NUMA-remote, persistent, and CXL memory as the
tiers DSA should move data across.  This models an Optane-class DIMM
bank: read latency moderately above DRAM, write bandwidth far below
read bandwidth (the medium's defining asymmetry), both far below DRAM
streaming rates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PmemParams:
    """App-Direct persistent-memory bank on one socket."""

    capacity: int = 512 * 1024**3
    read_bandwidth: float = 30.0  # GB/s, bank aggregate
    write_bandwidth: float = 8.0  # GB/s — the famous write cliff
    read_latency: float = 170.0  # ns
    write_latency: float = 95.0  # ns to the WPQ (writes buffer quickly)
    #: Single sequential stream ceiling.
    stream_bandwidth: float = 7.0

    def validate(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("PMEM bandwidths must be positive")
        if self.write_bandwidth >= self.read_bandwidth:
            raise ValueError(
                "PMEM model requires the write-bandwidth cliff "
                f"(got read={self.read_bandwidth}, write={self.write_bandwidth})"
            )
        if self.read_latency <= 0 or self.write_latency <= 0:
            raise ValueError("latencies must be positive")


#: A 512 GB Optane-class bank.
OPTANE_BANK = PmemParams()
