"""Benchmark — Fig 11: cycles spent in UMWAIT."""


def test_fig11_umwait(experiment):
    experiment("fig11")
