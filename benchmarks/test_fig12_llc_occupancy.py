"""Benchmark — Fig 12: LLC occupancy under co-running copies."""


def test_fig12_llc_occupancy(experiment):
    experiment("fig12")
