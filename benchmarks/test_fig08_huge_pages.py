"""Benchmark — Fig 8: huge-page impact."""


def test_fig08_huge_pages(experiment):
    experiment("fig8")
