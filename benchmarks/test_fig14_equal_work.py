"""Benchmark — Fig 14: equal-total transfer/batch trade-off."""


def test_fig14_equal_work(experiment):
    experiment("fig14")
