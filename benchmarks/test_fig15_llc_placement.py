"""Benchmark — Fig 15: LLC vs DRAM buffer placement."""


def test_fig15_llc_placement(experiment):
    experiment("fig15")
