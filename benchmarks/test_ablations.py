"""Benchmark — ablations: the mechanisms behind the paper's shapes."""


def test_ablations(experiment):
    experiment("ablations")
