"""Benchmark — Fig 2: speedup over software vs transfer size (sync/async)."""


def test_fig02_transfer_size(experiment):
    experiment("fig2")
