"""Benchmark — Fig 4: async copy throughput vs WQ size."""


def test_fig04_wq_size(experiment):
    experiment("fig4")
