"""Benchmark — Fig 5: offload latency breakdown vs batch size."""


def test_fig05_latency_breakdown(experiment):
    experiment("fig5")
