"""Benchmark — Fig 3: copy throughput vs transfer and batch size."""


def test_fig03_batch(experiment):
    experiment("fig3")
