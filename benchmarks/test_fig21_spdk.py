"""Benchmark — Fig 21: SPDK NVMe/TCP CRC32 offload."""


def test_fig21_spdk(experiment):
    experiment("fig21")
