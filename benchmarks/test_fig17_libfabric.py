"""Benchmark — Fig 17: libfabric/MPI/BERT speedups."""


def test_fig17_libfabric(experiment):
    experiment("fig17")
