"""Benchmark — Fig 13: X-Mem latency vs working-set size."""


def test_fig13_xmem_latency(experiment):
    experiment("fig13")
