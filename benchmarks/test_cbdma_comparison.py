"""Benchmark — Sec 4.2: DSA vs CBDMA average throughput ratio."""


def test_cbdma_comparison(experiment):
    experiment("cbdma")
