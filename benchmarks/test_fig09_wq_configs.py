"""Benchmark — Fig 9: DWQ batching vs multiple DWQs vs SWQ threads."""


def test_fig09_wq_configs(experiment):
    experiment("fig9")
