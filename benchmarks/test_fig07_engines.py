"""Benchmark — Fig 7: throughput vs engines per group."""


def test_fig07_engines(experiment):
    experiment("fig7")
