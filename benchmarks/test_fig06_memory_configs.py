"""Benchmark — Fig 6: NUMA and CXL memory configurations."""


def test_fig06_memory_configs(experiment):
    experiment("fig6")
