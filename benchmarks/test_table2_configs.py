"""Benchmark — Table 2: ICX and SPR platform configurations."""


def test_table2_configs(experiment):
    experiment("table2")
