"""Benchmark — Table 1: every DSA operation, functional + timed."""


def test_table1_operations(experiment):
    experiment("table1")
