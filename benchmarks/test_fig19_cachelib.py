"""Benchmark — Fig 19: CacheBench with transparent offload."""


def test_fig19_cachelib(experiment):
    experiment("fig19")
