"""Benchmark — Fig 10: multi-instance scaling and leaky DMA."""


def test_fig10_multi_device(experiment):
    experiment("fig10")
