"""Shared harness for the per-figure benchmark suite.

Each ``benchmarks/test_*.py`` regenerates one paper table/figure via
``repro.experiments`` and:

* times the run with pytest-benchmark,
* prints the reproduced rows plus the paper-vs-measured anchor checks,
* saves the rendered output under ``benchmarks/results/``,
* fails if any anchor check misses.

Set ``REPRO_QUICK=1`` to run reduced sweeps (CI smoke mode).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def quick_mode() -> bool:
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


@pytest.fixture
def experiment(benchmark):
    """Run an experiment under the benchmark timer and record output."""

    def _run(exp_id: str):
        quick = quick_mode()
        result = benchmark.pedantic(
            run_experiment, args=(exp_id,), kwargs={"quick": quick}, rounds=1, iterations=1
        )
        rendered = result.render()
        print()
        print(rendered)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{exp_id}.txt").write_text(rendered + "\n")
        missing = [anchor.name for anchor in result.anchors if not anchor.holds]
        assert not missing, f"{exp_id}: paper anchors missed: {missing}"
        return result

    return _run
