"""Benchmark — Sec 6: guidelines G1-G6 validated against the model."""


def test_guidelines_validation(experiment):
    experiment("guidelines")
