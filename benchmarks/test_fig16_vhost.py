"""Benchmark — Fig 16: DPDK Vhost forwarding with DSA."""


def test_fig16_vhost(experiment):
    experiment("fig16")
