"""Property-based tests on the functional operation layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.dsa.ops import execute
from repro.mem import AddressSpace
from repro.sim import make_rng


def backed_space(sizes, seed=0):
    space = AddressSpace()
    rng = make_rng(seed)
    buffers = []
    for size in sizes:
        buf = space.allocate(size, backed=True)
        buf.fill_random(rng)
        buffers.append(buf)
    return space, buffers


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4096), st.integers(0, 1000))
def test_memmove_preserves_payload(size, seed):
    space, (src, dst) = backed_space([4096, 4096], seed=seed)
    record = execute(
        WorkDescriptor(Opcode.MEMMOVE, src=src.va, dst=dst.va, size=size), space
    )
    assert record.status == StatusCode.SUCCESS
    assert np.array_equal(dst.data[:size], src.data[:size])


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 2048), st.integers(0, 2**64 - 1))
def test_fill_then_compare_pattern_succeeds(size, pattern):
    space, (dst,) = backed_space([2048])
    execute(WorkDescriptor(Opcode.FILL, dst=dst.va, size=size, pattern=pattern), space)
    record = execute(
        WorkDescriptor(Opcode.COMPARE_PATTERN, src=dst.va, size=size, pattern=pattern),
        space,
    )
    assert record.status == StatusCode.SUCCESS


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 2048), st.integers(0, 500))
def test_copy_then_compare_succeeds(size, seed):
    space, (src, dst) = backed_space([2048, 2048], seed=seed)
    execute(WorkDescriptor(Opcode.MEMMOVE, src=src.va, dst=dst.va, size=size), space)
    record = execute(
        WorkDescriptor(Opcode.COMPARE, src=src.va, src2=dst.va, size=size), space
    )
    assert record.status == StatusCode.SUCCESS
    assert record.result == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2047), st.integers(1, 255), st.integers(0, 400))
def test_compare_detects_any_single_byte_change(offset, flip, seed):
    size = 2048
    space, (src, dst) = backed_space([size, size], seed=seed)
    dst.data[:] = src.data
    dst.data[offset] = (int(dst.data[offset]) + flip) % 256
    record = execute(
        WorkDescriptor(Opcode.COMPARE, src=src.va, src2=dst.va, size=size), space
    )
    assert record.status == StatusCode.SUCCESS_WITH_FALSE_PREDICATE
    assert record.bytes_completed == offset


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.integers(0, 300))
def test_dualcast_destinations_identical(kb, seed):
    size = kb * 512
    space, (src, d1, d2) = backed_space([4096, 4096, 4096], seed=seed)
    record = execute(
        WorkDescriptor(Opcode.DUALCAST, src=src.va, dst=d1.va, dst2=d2.va, size=size),
        space,
    )
    assert record.status == StatusCode.SUCCESS
    assert np.array_equal(d1.data[:size], d2.data[:size])


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 16), st.integers(0, 300))
def test_delta_roundtrip_through_descriptors(chunks, seed):
    size = chunks * 128  # multiple of 8
    space, (original, modified, blob, target) = backed_space(
        [2048, 2048, 4096, 2048], seed=seed
    )
    modified.data[:] = original.data
    modified.data[0] ^= 0xFF
    create = WorkDescriptor(
        Opcode.CREATE_DELTA,
        src=original.va,
        src2=modified.va,
        dst=blob.va,
        size=size,
    )
    record = execute(create, space)
    assert record.status == StatusCode.SUCCESS
    target.data[:] = original.data
    apply_desc = WorkDescriptor(
        Opcode.APPLY_DELTA,
        src=blob.va,
        dst=target.va,
        size=size,
        delta_size=record.result,
    )
    assert execute(apply_desc, space).status == StatusCode.SUCCESS
    assert np.array_equal(target.data[:size], modified.data[:size])
