"""Tests for the PCM-style device telemetry (§5)."""

from repro.platform import spr_platform
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


class TestTelemetry:
    def test_fresh_device_counters_zero(self):
        platform = spr_platform()
        telemetry = platform.driver.device("dsa0").telemetry()
        assert telemetry["descriptors_completed"] == 0
        assert telemetry["bytes_processed"] == 0
        assert telemetry["port_bytes"] == 0.0

    def test_counters_track_traffic(self):
        platform = spr_platform()
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=8, iterations=25)
        run_dsa_microbench(cfg, platform=platform)
        telemetry = platform.driver.device("dsa0").telemetry()
        assert telemetry["descriptors_completed"] == 25
        assert telemetry["bytes_processed"] == 25 * 4 * KB
        assert telemetry["port_bytes"] >= 25 * 4 * KB
        assert telemetry["wq_enqueued"][0] == 25
        assert 0.0 < telemetry["atc_hit_rate"] <= 1.0

    def test_inflight_drains_to_zero(self):
        platform = spr_platform()
        cfg = MicrobenchConfig(transfer_size=16 * KB, queue_depth=8, iterations=20)
        run_dsa_microbench(cfg, platform=platform)
        telemetry = platform.driver.device("dsa0").telemetry()
        assert telemetry["inflight_write_bytes"] == 0.0
        assert telemetry["wq_occupancy"][0] == 0


class TestVhostSpinlock:
    def test_shared_dwq_contention_costs_throughput(self):
        """§6.4: binding each DWQ to one queue avoids the spinlock."""
        from repro.dsa.config import DeviceConfig
        from repro.workloads.vhost import VhostConfig, run_vhost
        from repro.platform import spr_platform as make_platform

        # Four queues on four DWQs: no sharing.
        bound = run_vhost(
            VhostConfig(packet_size=512, bursts=40, n_queues=4),
            platform=make_platform(device_config=DeviceConfig.multi_wq(4, wq_size=16)),
        )
        # Four queues forced onto one DWQ: spinlock contention.
        contended = run_vhost(
            VhostConfig(packet_size=512, bursts=40, n_queues=4),
            platform=make_platform(device_config=DeviceConfig.single(wq_size=32)),
        )
        assert contended.forwarding_rate_mpps < bound.forwarding_rate_mpps
