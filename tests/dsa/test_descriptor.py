"""WorkDescriptor.clone_range boundary semantics.

``clone_range`` is how partial-completion recovery resubmits the
unfinished tail of a BOF=0 descriptor: every non-zero address operand
advances by the completed byte count, and the clone gets fresh
lifecycle state (completion record, timestamps, completion event).
These tests pin the page-boundary arithmetic and the inherit/renew
split the recovery path depends on.
"""

import pytest

from repro.dsa.descriptor import DescriptorFlags, DescriptorPool, WorkDescriptor
from repro.dsa.opcodes import Opcode

PAGE = 4096


def _memmove(size=2 * PAGE):
    return WorkDescriptor(
        opcode=Opcode.MEMMOVE,
        src=0x10_000,
        dst=0x80_000,
        size=size,
        dispatch_weight=2.5,
    )


class TestCloneRangeBoundaries:
    def test_full_range_is_plain_resubmission(self):
        desc = _memmove()
        clone = desc.clone_range(0, desc.size)
        assert (clone.src, clone.dst, clone.size) == (desc.src, desc.dst, desc.size)

    def test_first_page(self):
        clone = _memmove().clone_range(0, PAGE)
        assert clone.src == 0x10_000
        assert clone.dst == 0x80_000
        assert clone.size == PAGE

    def test_last_page(self):
        clone = _memmove().clone_range(PAGE, PAGE)
        assert clone.src == 0x10_000 + PAGE
        assert clone.dst == 0x80_000 + PAGE
        assert clone.size == PAGE

    def test_single_final_byte(self):
        desc = _memmove()
        clone = desc.clone_range(desc.size - 1, 1)
        assert clone.src == desc.src + desc.size - 1
        assert clone.size == 1

    def test_zero_operands_stay_zero(self):
        # FILL has no source; offsetting a null operand would fabricate
        # an address out of nothing.
        desc = WorkDescriptor(opcode=Opcode.FILL, dst=0x80_000, size=2 * PAGE, pattern=0xAB)
        clone = desc.clone_range(PAGE, PAGE)
        assert clone.src == 0
        assert clone.src2 == 0
        assert clone.dst == 0x80_000 + PAGE

    def test_out_of_range_rejected(self):
        desc = _memmove()
        with pytest.raises(ValueError):
            desc.clone_range(-1, PAGE)
        with pytest.raises(ValueError):
            desc.clone_range(0, 0)
        with pytest.raises(ValueError):
            desc.clone_range(PAGE, PAGE + 1)  # one byte past the end
        with pytest.raises(ValueError):
            desc.clone_range(desc.size, 1)


class TestCloneRangeState:
    def test_lifecycle_state_is_fresh(self):
        desc = _memmove()
        desc.times.submitted = 100.0
        desc.completion.bytes_completed = PAGE
        desc.completion_event = object()
        clone = desc.clone_range(PAGE, PAGE)
        assert clone.completion is not desc.completion
        assert clone.completion.bytes_completed == 0
        assert clone.times is not desc.times
        assert clone.times.submitted is None
        assert clone.completion_event is None

    def test_flags_pattern_and_weight_inherited(self):
        desc = WorkDescriptor(
            opcode=Opcode.FILL,
            flags=DescriptorFlags.REQUEST_COMPLETION,  # BOF=0
            dst=0x80_000,
            size=2 * PAGE,
            pattern=0x1234,
            pattern2=0x5678,
            pattern_bytes=16,
            dispatch_weight=2.5,
        )
        clone = desc.clone_range(PAGE, PAGE)
        assert clone.flags == desc.flags
        assert not clone.block_on_fault
        assert (clone.pattern, clone.pattern2, clone.pattern_bytes) == (0x1234, 0x5678, 16)
        assert clone.dispatch_weight == 2.5
        assert clone.validate() is None


class TestDescriptorPool:
    def test_release_then_pooled_clone_reuses_identity(self):
        pool = DescriptorPool(limit=4)
        desc = _memmove()
        spent = desc.clone_range(0, PAGE)
        spent.completion.bytes_completed = PAGE
        spent.times.completed = 50.0
        spent.completion_event = object()
        assert pool.release(spent) is True
        assert len(pool) == 1
        clone = desc.clone_range(PAGE, PAGE, pool=pool)
        assert clone is spent  # recycled, not reallocated
        assert len(pool) == 0
        assert pool.reuses == 1
        # Scrubbed: no state from the previous life survives.
        assert clone.completion.bytes_completed == 0
        assert clone.completion.status is not None
        assert clone.times.completed is None
        assert clone.completion_event is None
        assert clone.trace_track == -1
        # Rewritten as the requested range clone.
        assert clone.size == PAGE
        assert clone.src == desc.src + PAGE
        assert clone.dst == desc.dst + PAGE

    def test_pooled_clone_matches_fresh_clone_field_for_field(self):
        pool = DescriptorPool()
        desc = WorkDescriptor(
            opcode=Opcode.FILL,
            flags=DescriptorFlags.REQUEST_COMPLETION,
            dst=0x80_000,
            size=2 * PAGE,
            pattern=0x1234,
            pattern2=0x5678,
            pattern_bytes=16,
            dispatch_weight=2.5,
        )
        pool.release(_memmove().clone_range(0, PAGE))
        pooled = desc.clone_range(PAGE, PAGE, pool=pool)
        fresh = desc.clone_range(PAGE, PAGE)
        for name in (
            "opcode", "pasid", "flags", "src", "src2", "dst", "dst2", "size",
            "pattern", "pattern2", "pattern_bytes", "dif", "dif_new",
            "delta_max_size", "delta_size", "dispatch_weight", "trace_track",
        ):
            assert getattr(pooled, name) == getattr(fresh, name), name

    def test_empty_pool_falls_back_to_allocation(self):
        pool = DescriptorPool()
        clone = _memmove().clone_range(0, PAGE, pool=pool)
        assert clone.size == PAGE
        assert pool.reuses == 0

    def test_release_respects_limit(self):
        pool = DescriptorPool(limit=1)
        assert pool.release(_memmove().clone_range(0, PAGE)) is True
        assert pool.release(_memmove().clone_range(0, PAGE)) is False
        assert len(pool) == 1
        assert pool.released == 1

    def test_pool_rejects_negative_limit(self):
        with pytest.raises(ValueError):
            DescriptorPool(limit=-1)

    def test_pooled_clone_still_validates_range(self):
        pool = DescriptorPool()
        pool.release(_memmove().clone_range(0, PAGE))
        with pytest.raises(ValueError):
            _memmove().clone_range(0, 100 * PAGE, pool=pool)
        assert len(pool) == 1  # nothing consumed on the error path


class TestSlotsAudit:
    def test_descriptor_objects_are_slotted(self):
        # A million-descriptor run must not pay a __dict__ per object.
        desc = _memmove()
        assert not hasattr(desc, "__dict__")
        assert not hasattr(desc.completion, "__dict__")
        assert not hasattr(desc.times, "__dict__")
        with pytest.raises(AttributeError):
            desc.not_a_field = 1
