"""Unit tests for the CRC implementations (known vectors + properties)."""

import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsa.crc import crc16_t10, crc32_ieee, crc32c


class TestCrc32c:
    def test_known_vector_123456789(self):
        # Canonical CRC-32C check value.
        assert crc32c(b"123456789") == 0xE3069283

    def test_known_vector_empty(self):
        assert crc32c(b"") == 0x00000000

    def test_known_vector_all_zeros_32(self):
        # RFC 3720 (iSCSI) test vector: 32 bytes of zeros.
        assert crc32c(bytes(32)) == 0x8A9136AA

    def test_known_vector_all_ones_32(self):
        # RFC 3720 test vector: 32 bytes of 0xFF.
        assert crc32c(bytes([0xFF] * 32)) == 0x62A8AB43

    def test_accepts_numpy_array(self):
        arr = np.frombuffer(b"123456789", dtype=np.uint8)
        assert crc32c(arr) == 0xE3069283

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            crc32c(np.zeros(4, dtype=np.uint32))

    def test_seed_chaining(self):
        whole = crc32c(b"hello world")
        part = crc32c(b" world", seed=crc32c(b"hello"))
        assert part == whole

    @given(st.binary(min_size=0, max_size=200))
    def test_deterministic(self, data):
        assert crc32c(data) == crc32c(data)

    @given(st.binary(min_size=1, max_size=100))
    def test_single_bit_flip_changes_crc(self, data):
        mutated = bytearray(data)
        mutated[0] ^= 0x01
        assert crc32c(bytes(mutated)) != crc32c(data)


class TestCrc32Ieee:
    @given(st.binary(min_size=0, max_size=300))
    def test_matches_zlib(self, data):
        assert crc32_ieee(data) == zlib.crc32(data)

    def test_seed_chaining_matches_zlib(self):
        seed = zlib.crc32(b"abc")
        assert crc32_ieee(b"def", seed=seed) == zlib.crc32(b"def", seed)


class TestCrc16T10:
    def test_known_vector_123456789(self):
        # CRC-16/T10-DIF check value.
        assert crc16_t10(b"123456789") == 0xD0DB

    def test_empty_is_zero(self):
        assert crc16_t10(b"") == 0

    def test_result_fits_16_bits(self):
        assert 0 <= crc16_t10(bytes(range(256))) <= 0xFFFF

    @given(st.binary(min_size=1, max_size=64))
    def test_flip_detected(self, data):
        mutated = bytearray(data)
        mutated[-1] ^= 0x80
        assert crc16_t10(bytes(mutated)) != crc16_t10(data)
