"""Failure injection through the full device pipeline."""

import numpy as np

from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.dif import DifContext, dif_insert
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.platform import spr_platform
from repro.sim import make_rng

KB = 1024

NO_BLOCK = DescriptorFlags.REQUEST_COMPLETION  # page faults not blocked


def setup():
    platform = spr_platform()
    device = platform.driver.device("dsa0")
    space = AddressSpace()
    device.attach_space(space)
    return platform, device, space


class TestBatchPartialFailure:
    def test_one_faulting_member_fails_the_batch(self):
        platform, device, space = setup()
        good_src = space.allocate(4 * KB)
        good_dst = space.allocate(4 * KB)
        bad_src = space.allocate(4 * KB, prefault=False)  # will fault
        bad_dst = space.allocate(4 * KB)
        members = [
            WorkDescriptor(
                Opcode.MEMMOVE, pasid=space.pasid,
                src=good_src.va, dst=good_dst.va, size=4 * KB,
            ),
            WorkDescriptor(
                Opcode.MEMMOVE, pasid=space.pasid, flags=NO_BLOCK,
                src=bad_src.va, dst=bad_dst.va, size=4 * KB,
            ),
        ]
        batch = BatchDescriptor(descriptors=members, pasid=space.pasid)
        device.submit(batch)
        platform.env.run()
        assert members[0].completion.status == StatusCode.SUCCESS
        assert members[1].completion.status == StatusCode.PAGE_FAULT
        assert batch.completion.status == StatusCode.BATCH_FAILED
        assert batch.completion.bytes_completed == 1  # one member succeeded

    def test_invalid_member_does_not_poison_others(self):
        platform, device, space = setup()
        src = space.allocate(4 * KB)
        dst = space.allocate(4 * KB)
        members = [
            WorkDescriptor(Opcode.MEMMOVE, pasid=space.pasid, size=0),  # invalid
            WorkDescriptor(
                Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=4 * KB
            ),
        ]
        batch = BatchDescriptor(descriptors=members, pasid=space.pasid)
        device.submit(batch)
        platform.env.run()
        assert members[0].completion.status == StatusCode.INVALID_SIZE
        assert members[1].completion.status == StatusCode.SUCCESS
        assert batch.completion.status == StatusCode.BATCH_FAILED


class TestDataIntegrityFailures:
    def test_corrupted_dif_through_device(self):
        platform, device, space = setup()
        ctx = DifContext(block_size=512)
        raw = make_rng(1).integers(0, 256, 1024, dtype=np.uint8)
        protected = space.allocate(1040, backed=True)
        protected.data[:] = dif_insert(raw, ctx)
        protected.data[50] ^= 0x01  # corrupt one data byte
        descriptor = WorkDescriptor(
            Opcode.DIF_CHECK, pasid=space.pasid, src=protected.va, size=1040, dif=ctx
        )
        device.submit(descriptor)
        platform.env.run()
        assert descriptor.completion.status == StatusCode.DIF_ERROR

    def test_delta_overflow_through_device(self):
        platform, device, space = setup()
        original = space.allocate(1 * KB, backed=True)
        modified = space.allocate(1 * KB, backed=True)
        modified.data[:] = 0xFF  # everything differs
        blob = space.allocate(4 * KB, backed=True)
        descriptor = WorkDescriptor(
            Opcode.CREATE_DELTA,
            pasid=space.pasid,
            src=original.va,
            src2=modified.va,
            dst=blob.va,
            size=1 * KB,
            delta_max_size=20,
        )
        device.submit(descriptor)
        platform.env.run()
        assert descriptor.completion.status == StatusCode.DELTA_OVERFLOW

    def test_compare_mismatch_is_not_an_error(self):
        """SUCCESS_WITH_FALSE_PREDICATE is a success status (§ Table 1)."""
        platform, device, space = setup()
        a = space.allocate(1 * KB, backed=True)
        b = space.allocate(1 * KB, backed=True)
        b.data[7] = 1
        descriptor = WorkDescriptor(
            Opcode.COMPARE, pasid=space.pasid, src=a.va, src2=b.va, size=1 * KB
        )
        device.submit(descriptor)
        platform.env.run()
        assert descriptor.completion.status == StatusCode.SUCCESS_WITH_FALSE_PREDICATE
        assert descriptor.completion.status.is_success


class TestFaultStorm:
    def test_many_faulting_descriptors_all_complete(self):
        """A stream of faulting descriptors completes (with errors)
        without wedging the engine for the good traffic behind it."""
        platform, device, space = setup()
        faulty = []
        for _ in range(8):
            src = space.allocate(4 * KB, prefault=False)
            dst = space.allocate(4 * KB)
            descriptor = WorkDescriptor(
                Opcode.MEMMOVE, pasid=space.pasid, flags=NO_BLOCK,
                src=src.va, dst=dst.va, size=4 * KB,
            )
            faulty.append(descriptor)
            device.submit(descriptor)
        good_src = space.allocate(4 * KB)
        good_dst = space.allocate(4 * KB)
        good = WorkDescriptor(
            Opcode.MEMMOVE, pasid=space.pasid,
            src=good_src.va, dst=good_dst.va, size=4 * KB,
        )
        device.submit(good)
        platform.env.run()
        assert all(d.completion.status == StatusCode.PAGE_FAULT for d in faulty)
        assert good.completion.status == StatusCode.SUCCESS

    def test_blocking_faults_stall_but_recover(self):
        platform, device, space = setup()
        src = space.allocate(16 * KB, prefault=False)
        dst = space.allocate(16 * KB, prefault=False)
        descriptor = WorkDescriptor(
            Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=16 * KB
        )
        device.submit(descriptor)
        platform.env.run()
        assert descriptor.completion.status == StatusCode.SUCCESS
        # Both buffers faulted: at least two fault services elapsed.
        elapsed = descriptor.times.completed - descriptor.times.submitted
        assert elapsed >= 2 * platform.memsys.iommu.params.page_fault_latency
