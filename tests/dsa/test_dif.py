"""Unit tests for T10 DIF insert/check/strip/update."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsa.dif import (
    DATA_BLOCK_SIZES,
    PI_BYTES,
    DifContext,
    DifError,
    dif_check,
    dif_insert,
    dif_strip,
    dif_update,
)
from repro.sim import make_rng


def random_blocks(n_blocks, block_size, seed=1):
    rng = make_rng(seed)
    return rng.integers(0, 256, size=n_blocks * block_size, dtype=np.uint8)


class TestContext:
    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            DifContext(block_size=1000).validate()

    def test_protected_size(self):
        assert DifContext(block_size=512).protected_block_size == 520
        assert DifContext(block_size=4096).protected_block_size == 4104

    def test_tag_ranges(self):
        with pytest.raises(ValueError):
            DifContext(app_tag=0x10000).validate()
        with pytest.raises(ValueError):
            DifContext(ref_tag_seed=2**32).validate()


class TestInsertCheckStrip:
    @pytest.mark.parametrize("block_size", DATA_BLOCK_SIZES)
    def test_insert_expands_by_pi(self, block_size):
        ctx = DifContext(block_size=block_size)
        data = random_blocks(3, block_size)
        protected = dif_insert(data, ctx)
        assert len(protected) == 3 * (block_size + PI_BYTES)

    def test_insert_then_check_passes(self):
        ctx = DifContext(block_size=512, app_tag=0xBEEF, ref_tag_seed=100)
        protected = dif_insert(random_blocks(4, 512), ctx)
        assert dif_check(protected, ctx) == 4

    def test_strip_roundtrip(self):
        ctx = DifContext(block_size=512)
        data = random_blocks(5, 512)
        assert np.array_equal(dif_strip(dif_insert(data, ctx), ctx), data)

    def test_corrupted_data_fails_guard(self):
        ctx = DifContext(block_size=512)
        protected = dif_insert(random_blocks(2, 512), ctx)
        protected[10] ^= 0xFF
        with pytest.raises(DifError, match="guard"):
            dif_check(protected, ctx)

    def test_wrong_app_tag_detected(self):
        protected = dif_insert(random_blocks(1, 512), DifContext(app_tag=1))
        with pytest.raises(DifError, match="app tag"):
            dif_check(protected, DifContext(app_tag=2))

    def test_wrong_ref_tag_detected(self):
        protected = dif_insert(random_blocks(2, 512), DifContext(ref_tag_seed=0))
        with pytest.raises(DifError, match="ref tag"):
            dif_check(protected, DifContext(ref_tag_seed=7))

    def test_ref_tag_check_can_be_disabled(self):
        protected = dif_insert(random_blocks(2, 512), DifContext(ref_tag_seed=0))
        relaxed = DifContext(ref_tag_seed=7, check_ref_tag=False)
        assert dif_check(protected, relaxed) == 2

    def test_partial_block_rejected(self):
        ctx = DifContext(block_size=512)
        with pytest.raises(ValueError, match="multiple"):
            dif_insert(random_blocks(1, 512)[:100], ctx)

    def test_strip_verifies_by_default(self):
        ctx = DifContext(block_size=512)
        protected = dif_insert(random_blocks(1, 512), ctx)
        protected[0] ^= 1
        with pytest.raises(DifError):
            dif_strip(protected, ctx)
        # And verification can be skipped.
        out = dif_strip(protected, ctx, verify=False)
        assert len(out) == 512

    @settings(max_examples=20)
    @given(st.integers(1, 4), st.integers(0, 0xFFFF), st.integers(0, 1000))
    def test_roundtrip_property(self, n_blocks, app_tag, ref_seed):
        ctx = DifContext(block_size=512, app_tag=app_tag, ref_tag_seed=ref_seed)
        data = random_blocks(n_blocks, 512, seed=n_blocks)
        assert np.array_equal(dif_strip(dif_insert(data, ctx), ctx), data)


class TestUpdate:
    def test_update_changes_tags(self):
        old = DifContext(block_size=512, app_tag=1, ref_tag_seed=0)
        new = DifContext(block_size=512, app_tag=2, ref_tag_seed=50)
        data = random_blocks(3, 512)
        updated = dif_update(dif_insert(data, old), old, new)
        assert dif_check(updated, new) == 3
        with pytest.raises(DifError):
            dif_check(updated, old)

    def test_update_preserves_data(self):
        old = DifContext(app_tag=1)
        new = DifContext(app_tag=9)
        data = random_blocks(2, 512)
        updated = dif_update(dif_insert(data, old), old, new)
        assert np.array_equal(dif_strip(updated, new), data)
