"""Tests for the per-group read-buffer allocation (§3.4 QoS knob)."""

import pytest

from repro.dsa.config import (
    DeviceConfig,
    EngineConfig,
    GroupConfig,
    TOTAL_READ_BUFFERS,
    WqConfig,
)
from repro.dsa.errors import ConfigurationError
from repro.platform import spr_platform
from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

KB = 1024


def config_with_buffers(buffers):
    return DeviceConfig(
        wqs=(WqConfig(0, size=32),),
        engines=(EngineConfig(0),),
        groups=(
            GroupConfig(0, wq_ids=(0,), engine_ids=(0,), read_buffers_per_engine=buffers),
        ),
    )


class TestConfiguration:
    def test_valid_override(self):
        config_with_buffers(8).validate()

    def test_zero_buffers_rejected(self):
        with pytest.raises(ConfigurationError, match="read buffer"):
            config_with_buffers(0).validate()

    def test_overcommit_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0, size=16), WqConfig(1, size=16)),
            engines=(EngineConfig(0), EngineConfig(1)),
            groups=(
                GroupConfig(0, (0,), (0,), read_buffers_per_engine=100),
                GroupConfig(1, (1,), (1,), read_buffers_per_engine=100),
            ),
        )
        with pytest.raises(ConfigurationError, match="over-committed"):
            config.validate()

    def test_total_matches_device_spec(self):
        assert TOTAL_READ_BUFFERS == 128

    def test_accel_config_parses_read_buffers(self):
        from repro.runtime.accel_config import parse_device_config

        spec = {
            "wqs": [{"id": 0, "size": 32}],
            "engines": [0],
            "groups": [{"id": 0, "wqs": [0], "engines": [0], "read_buffers": 4}],
        }
        config = parse_device_config(spec)
        assert config.groups[0].read_buffers_per_engine == 4

    def test_save_config_round_trips(self):
        from repro.runtime.accel_config import parse_device_config

        platform = spr_platform(device_config=config_with_buffers(4))
        saved = platform.accel_config.save_config("dsa0")
        assert saved["groups"][0]["read_buffers"] == 4
        parse_device_config(saved).validate()


class TestQosEffect:
    def _throughput(self, buffers):
        cfg = MicrobenchConfig(transfer_size=4 * KB, queue_depth=32, iterations=150)
        platform = spr_platform(device_config=config_with_buffers(buffers))
        return run_dsa_microbench(cfg, platform=platform).throughput

    def test_starved_group_loses_bandwidth(self):
        """Decreasing a PE's read buffers lowers achievable bandwidth."""
        starved = self._throughput(1)
        generous = self._throughput(32)
        assert starved < 0.5 * generous

    def test_engine_pipeline_capacity_follows_group(self):
        platform = spr_platform(device_config=config_with_buffers(3))
        engine = platform.driver.device("dsa0").groups[0].engines[0]
        assert engine.read_buffers.capacity == 3

    def test_default_when_not_overridden(self):
        platform = spr_platform()
        engine = platform.driver.device("dsa0").groups[0].engines[0]
        timing = platform.driver.device("dsa0").timing
        assert engine.read_buffers.capacity == timing.read_buffers_per_engine
