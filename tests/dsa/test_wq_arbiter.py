"""Unit tests for work queues, the group arbiter, and the device ATC."""

import pytest

from repro.dsa.arbiter import GroupArbiter
from repro.dsa.atc import DeviceAtc
from repro.dsa.config import WqConfig, WqMode
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.errors import SubmissionError
from repro.dsa.opcodes import Opcode
from repro.dsa.wq import WorkQueue
from repro.mem.iommu import Iommu
from repro.mem.pagetable import PAGE_4K, PageTable
from repro.sim import Environment


def make_desc(size=64):
    return WorkDescriptor(Opcode.MEMMOVE, size=size)


class TestWorkQueue:
    def test_submit_and_occupancy(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=4))
        assert wq.submit(make_desc())
        assert wq.occupancy == 1

    def test_dwq_overflow_raises(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=1, mode=WqMode.DEDICATED))
        wq.submit(make_desc())
        with pytest.raises(SubmissionError, match="full DWQ"):
            wq.submit(make_desc())

    def test_swq_overflow_returns_false(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=1, mode=WqMode.SHARED))
        assert wq.submit(make_desc())
        assert not wq.submit(make_desc())
        assert wq.rejected == 1

    def test_submit_stamps_time(self):
        env = Environment(initial_time=42.0)
        wq = WorkQueue(env, WqConfig(0, size=4))
        desc = make_desc()
        wq.submit(desc)
        assert desc.times.submitted == 42.0

    def test_pop_fifo(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=4))
        a, b = make_desc(), make_desc()
        wq.submit(a)
        wq.submit(b)
        assert wq.pop() is a
        assert wq.pop() is b

    def test_pop_empty_raises(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=4))
        with pytest.raises(RuntimeError):
            wq.pop()

    def test_enqueue_hook_fires(self):
        env = Environment()
        wq = WorkQueue(env, WqConfig(0, size=4))
        fired = []
        wq.on_enqueue = fired.append
        wq.submit(make_desc())
        assert fired == [wq]


class TestGroupArbiter:
    def _wqs(self, env, priorities):
        return [
            WorkQueue(env, WqConfig(i, size=64, priority=p))
            for i, p in enumerate(priorities)
        ]

    def test_immediate_delivery_when_work_pending(self):
        env = Environment()
        wqs = self._wqs(env, [1])
        arbiter = GroupArbiter(env, wqs)
        desc = make_desc()
        wqs[0].submit(desc)
        event = arbiter.get()
        assert event.triggered and event.value is desc

    def test_pe_blocks_until_submission(self):
        env = Environment()
        wqs = self._wqs(env, [1])
        arbiter = GroupArbiter(env, wqs)
        got = []

        def pe(env):
            descriptor = yield arbiter.get()
            got.append((env.now, descriptor))

        def producer(env):
            yield env.timeout(9.0)
            wqs[0].submit(make_desc())

        env.process(pe(env))
        env.process(producer(env))
        env.run()
        assert got and got[0][0] == 9.0

    def test_priority_weighting(self):
        """A priority-3 WQ should be served ~3x as often as priority-1."""
        env = Environment()
        wqs = self._wqs(env, [3, 1])
        arbiter = GroupArbiter(env, wqs)
        for _ in range(40):
            wqs[0].submit(make_desc())
            wqs[1].submit(make_desc())
        for _ in range(40):
            arbiter.get()
        drained_0 = 40 - wqs[0].occupancy
        drained_1 = 40 - wqs[1].occupancy
        assert drained_0 + drained_1 == 40
        assert drained_0 == pytest.approx(30, abs=2)

    def test_no_starvation(self):
        env = Environment()
        wqs = self._wqs(env, [15, 1])
        arbiter = GroupArbiter(env, wqs)
        for _ in range(32):
            wqs[0].submit(make_desc())
            wqs[1].submit(make_desc())
        for _ in range(32):
            arbiter.get()
        assert 32 - wqs[1].occupancy >= 2  # low-priority WQ still served

    def test_empty_wq_list_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            GroupArbiter(env, [])


class TestDeviceAtc:
    def _atc(self, entries=4):
        iommu = Iommu()
        table = PageTable(PAGE_4K)
        table.map_range(0, 64 * PAGE_4K)
        iommu.attach(1, table)
        return DeviceAtc(iommu, entries=entries, hit_latency=5.0)

    def test_miss_then_hit(self):
        atc = self._atc()
        first, _ = atc.translate(1, 0x1000)
        second, _ = atc.translate(1, 0x1000)
        assert second == 5.0
        assert first > second
        assert atc.hits == 1 and atc.misses == 1

    def test_lru_capacity(self):
        atc = self._atc(entries=2)
        for page in range(4):
            atc.translate(1, page * PAGE_4K)
        assert len(atc) == 2

    def test_range_translation_critical_path_only_first_page(self):
        atc = self._atc(entries=64)
        critical, faults = atc.translate_range(1, 0, 8 * PAGE_4K)
        assert faults == 0
        # Critical path = first page only; the other 7 overlap with data.
        single, _ = self._atc().translate(1, 0)
        assert critical == pytest.approx(single)

    def test_fault_stalls_critical_path(self):
        iommu = Iommu()
        iommu.attach(1, PageTable(PAGE_4K))  # nothing pre-mapped
        atc = DeviceAtc(iommu, entries=16, hit_latency=5.0)
        critical, faults = atc.translate_range(1, 0, 2 * PAGE_4K)
        assert faults == 2
        assert critical >= 2 * iommu.params.page_fault_latency

    def test_invalidate_pasid(self):
        atc = self._atc()
        atc.translate(1, 0)
        atc.invalidate_pasid(1)
        assert len(atc) == 0

    def test_zero_size_range(self):
        atc = self._atc()
        assert atc.translate_range(1, 0, 0) == (0.0, 0)
