"""Tests for the 64-byte descriptor wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dsa.descriptor import DESCRIPTOR_BYTES, WorkDescriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.dsa.wire import WireFormatError, pack_descriptor, unpack_descriptor


def test_image_is_exactly_64_bytes():
    descriptor = WorkDescriptor(Opcode.MEMMOVE, size=4096)
    assert len(pack_descriptor(descriptor)) == DESCRIPTOR_BYTES


def test_opcode_at_documented_offset():
    descriptor = WorkDescriptor(Opcode.CRCGEN, size=64)
    image = pack_descriptor(descriptor)
    assert image[6] == int(Opcode.CRCGEN)


def test_roundtrip_simple_copy():
    descriptor = WorkDescriptor(
        Opcode.MEMMOVE, pasid=7, src=0x1000, dst=0x2000, size=4096
    )
    restored = unpack_descriptor(pack_descriptor(descriptor))
    assert restored.opcode == descriptor.opcode
    assert restored.pasid == 7
    assert restored.src == 0x1000
    assert restored.dst == 0x2000
    assert restored.size == 4096
    assert restored.flags == descriptor.flags


def test_bad_length_rejected():
    with pytest.raises(WireFormatError, match="64 bytes"):
        unpack_descriptor(b"\x00" * 63)


def test_unknown_opcode_rejected():
    descriptor = WorkDescriptor(Opcode.MEMMOVE, size=64)
    image = bytearray(pack_descriptor(descriptor))
    image[6] = 0xEE
    with pytest.raises(WireFormatError, match="opcode"):
        unpack_descriptor(bytes(image))


def test_pasid_range_enforced():
    descriptor = WorkDescriptor(Opcode.MEMMOVE, pasid=1 << 20, size=64)
    with pytest.raises(WireFormatError, match="PASID"):
        pack_descriptor(descriptor)


def test_size_range_enforced():
    descriptor = WorkDescriptor(Opcode.NOOP)
    descriptor.size = 1 << 32
    with pytest.raises(WireFormatError, match="32-bit"):
        pack_descriptor(descriptor)


_flags = st.sampled_from(
    [
        DescriptorFlags.REQUEST_COMPLETION,
        DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.BLOCK_ON_FAULT,
        DescriptorFlags.REQUEST_COMPLETION | DescriptorFlags.CACHE_CONTROL,
        DescriptorFlags.REQUEST_COMPLETION
        | DescriptorFlags.FENCE
        | DescriptorFlags.COMPLETION_INTERRUPT,
    ]
)


@settings(max_examples=80, deadline=None)
@given(
    opcode=st.sampled_from(list(Opcode)),
    pasid=st.integers(0, (1 << 20) - 1),
    flags=_flags,
    src=st.integers(0, 2**64 - 1),
    src2=st.integers(0, 2**64 - 1),
    dst=st.integers(0, 2**64 - 1),
    dst2=st.integers(0, 2**64 - 1),
    size=st.integers(0, 2**32 - 1),
    pattern=st.integers(0, 2**64 - 1),
    delta_size=st.integers(0, 2**32 - 1),
)
def test_roundtrip_property(
    opcode, pasid, flags, src, src2, dst, dst2, size, pattern, delta_size
):
    descriptor = WorkDescriptor(
        opcode=opcode,
        pasid=pasid,
        flags=flags,
        src=src,
        src2=src2,
        dst=dst,
        dst2=dst2,
        size=size,
        pattern=pattern,
        delta_size=delta_size,
    )
    restored = unpack_descriptor(pack_descriptor(descriptor))
    for field in (
        "opcode",
        "pasid",
        "flags",
        "src",
        "src2",
        "dst",
        "dst2",
        "size",
        "pattern",
        "delta_size",
    ):
        assert getattr(restored, field) == getattr(descriptor, field), field
