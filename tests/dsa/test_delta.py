"""Unit tests for delta-record creation and application."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsa.delta import (
    CHUNK,
    ENTRY_BYTES,
    DeltaOverflowError,
    DeltaRecord,
    apply_delta,
    create_delta,
)
from repro.sim import make_rng


def buffers(size=256, n_changes=4, seed=3):
    rng = make_rng(seed)
    original = rng.integers(0, 256, size=size, dtype=np.uint8)
    modified = original.copy()
    for chunk in rng.choice(size // CHUNK, size=n_changes, replace=False):
        modified[chunk * CHUNK] ^= 0x5A
    return original, modified


class TestCreate:
    def test_identical_buffers_empty_delta(self):
        a = np.zeros(64, dtype=np.uint8)
        record = create_delta(a, a.copy())
        assert record.entries == []
        assert record.size_bytes == 0

    def test_entry_count_matches_changed_chunks(self):
        original, modified = buffers(size=256, n_changes=4)
        record = create_delta(original, modified)
        assert len(record.entries) == 4
        assert record.size_bytes == 4 * ENTRY_BYTES

    def test_change_spanning_one_chunk_is_one_entry(self):
        original = np.zeros(64, dtype=np.uint8)
        modified = original.copy()
        modified[8:16] = 0xFF  # exactly chunk 1
        record = create_delta(original, modified)
        assert [index for index, _ in record.entries] == [1]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in size"):
            create_delta(np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8))

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            create_delta(np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=np.uint8))

    def test_overflow_raises(self):
        original = np.zeros(64, dtype=np.uint8)
        modified = np.ones(64, dtype=np.uint8)  # every chunk differs
        with pytest.raises(DeltaOverflowError):
            create_delta(original, modified, max_delta_size=ENTRY_BYTES * 2)


class TestApply:
    def test_roundtrip(self):
        original, modified = buffers()
        record = create_delta(original, modified)
        assert np.array_equal(apply_delta(original, record), modified)

    def test_apply_does_not_mutate_original(self):
        original, modified = buffers()
        record = create_delta(original, modified)
        snapshot = original.copy()
        apply_delta(original, record)
        assert np.array_equal(original, snapshot)

    def test_wrong_size_rejected(self):
        original, modified = buffers(size=128)
        record = create_delta(original, modified)
        with pytest.raises(ValueError, match="record built for"):
            apply_delta(np.zeros(64, dtype=np.uint8), record)

    def test_out_of_range_entry_rejected(self):
        record = DeltaRecord(source_size=16, entries=[(100, bytes(8))])
        with pytest.raises(ValueError, match="beyond"):
            apply_delta(np.zeros(16, dtype=np.uint8), record)


class TestSerialization:
    def test_roundtrip_through_bytes(self):
        original, modified = buffers()
        record = create_delta(original, modified)
        blob = record.serialize()
        restored = DeltaRecord.deserialize(blob, source_size=record.source_size)
        assert restored.entries == record.entries

    def test_bad_blob_length_rejected(self):
        with pytest.raises(ValueError):
            DeltaRecord.deserialize(np.zeros(7, dtype=np.uint8), source_size=64)

    @settings(max_examples=25)
    @given(st.integers(1, 16), st.integers(0, 15))
    def test_roundtrip_property(self, n_chunks, flip_chunk):
        size = n_chunks * CHUNK
        rng = make_rng(n_chunks)
        original = rng.integers(0, 256, size=size, dtype=np.uint8)
        modified = original.copy()
        target = flip_chunk % n_chunks
        modified[target * CHUNK] ^= 0xFF
        record = create_delta(original, modified)
        blob = record.serialize()
        restored = DeltaRecord.deserialize(blob, source_size=size)
        assert np.array_equal(apply_delta(original, restored), modified)
