"""Unit tests for device configuration validation."""

import pytest

from repro.dsa.config import (
    DeviceConfig,
    DsaTimingParams,
    EngineConfig,
    GroupConfig,
    TOTAL_WQ_ENTRIES,
    WqConfig,
)
from repro.dsa.errors import ConfigurationError


class TestWqConfig:
    def test_valid(self):
        WqConfig(wq_id=0, size=32).validate()

    def test_bad_id(self):
        with pytest.raises(ConfigurationError):
            WqConfig(wq_id=8).validate()

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            WqConfig(wq_id=0, size=0).validate()
        with pytest.raises(ConfigurationError):
            WqConfig(wq_id=0, size=TOTAL_WQ_ENTRIES + 1).validate()

    def test_bad_priority(self):
        with pytest.raises(ConfigurationError):
            WqConfig(wq_id=0, priority=0).validate()
        with pytest.raises(ConfigurationError):
            WqConfig(wq_id=0, priority=16).validate()


class TestDeviceConfig:
    def test_single_layout_valid(self):
        DeviceConfig.single().validate()

    def test_paper_default_valid(self):
        config = DeviceConfig.paper_default()
        config.validate()
        assert len(config.wqs) == 8
        assert len(config.engines) == 4

    def test_multi_wq_layout(self):
        config = DeviceConfig.multi_wq(4)
        config.validate()
        assert len(config.groups) == 4

    def test_wq_entry_overcommit_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0, size=100), WqConfig(1, size=100)),
            engines=(EngineConfig(0),),
            groups=(GroupConfig(0, wq_ids=(0, 1), engine_ids=(0,)),),
        )
        with pytest.raises(ConfigurationError, match="entries"):
            config.validate()

    def test_wq_in_two_groups_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0),),
            engines=(EngineConfig(0), EngineConfig(1)),
            groups=(
                GroupConfig(0, wq_ids=(0,), engine_ids=(0,)),
                GroupConfig(1, wq_ids=(0,), engine_ids=(1,)),
            ),
        )
        with pytest.raises(ConfigurationError, match="multiple groups"):
            config.validate()

    def test_engine_in_two_groups_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0, size=16), WqConfig(1, size=16)),
            engines=(EngineConfig(0),),
            groups=(
                GroupConfig(0, wq_ids=(0,), engine_ids=(0,)),
                GroupConfig(1, wq_ids=(1,), engine_ids=(0,)),
            ),
        )
        with pytest.raises(ConfigurationError, match="multiple groups"):
            config.validate()

    def test_unknown_wq_in_group_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0),),
            engines=(EngineConfig(0),),
            groups=(GroupConfig(0, wq_ids=(5,), engine_ids=(0,)),),
        )
        with pytest.raises(ConfigurationError, match="unknown WQ"):
            config.validate()

    def test_duplicate_wq_ids_rejected(self):
        config = DeviceConfig(
            wqs=(WqConfig(0, size=16), WqConfig(0, size=16)),
            engines=(EngineConfig(0),),
            groups=(GroupConfig(0, wq_ids=(0,), engine_ids=(0,)),),
        )
        with pytest.raises(ConfigurationError, match="duplicate"):
            config.validate()

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            GroupConfig(0, wq_ids=(), engine_ids=(0,)).validate()
        with pytest.raises(ConfigurationError):
            GroupConfig(0, wq_ids=(0,), engine_ids=()).validate()


class TestTimingParams:
    def test_defaults_valid(self):
        DsaTimingParams().validate()

    def test_enqcmd_slower_than_movdir(self):
        params = DsaTimingParams()
        assert params.enqcmd_ns > params.portal_write_ns

    def test_invalid_amplification(self):
        import dataclasses

        params = dataclasses.replace(DsaTimingParams(), leaky_write_amplification=0.5)
        with pytest.raises(ConfigurationError):
            params.validate()

    def test_invalid_read_buffers(self):
        import dataclasses

        params = dataclasses.replace(DsaTimingParams(), read_buffers_per_engine=0)
        with pytest.raises(ConfigurationError):
            params.validate()
