"""Engine-level semantics: drain, fence, cache control, SVM sharing."""

import numpy as np

from repro.dsa.config import DeviceConfig, WqMode
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.mem.address import AddressSpace
from repro.platform import spr_platform
from repro.sim import make_rng

KB = 1024
MB = 1024 * KB


def make_copy(space, size=4 * KB, flags=None, backed=False):
    src = space.allocate(size, backed=backed)
    dst = space.allocate(size, backed=backed)
    descriptor = WorkDescriptor(
        Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=size
    )
    if flags is not None:
        descriptor.flags = flags
    return descriptor, src, dst


class TestDrain:
    def test_drain_completes_after_inflight_work(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        big, _s, _d = make_copy(space, size=4 * MB)
        drain = WorkDescriptor(Opcode.DRAIN, pasid=space.pasid)
        device.submit(big)
        device.submit(drain)
        platform.env.run()
        assert drain.completion.status == StatusCode.SUCCESS
        assert drain.times.completed >= big.times.completed

    def test_drain_on_idle_engine_is_fast(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        drain = WorkDescriptor(Opcode.DRAIN, pasid=space.pasid)
        device.submit(drain)
        platform.env.run()
        assert drain.completion.status == StatusCode.SUCCESS
        assert platform.env.now < 1000.0


class TestFence:
    def test_fence_orders_batch_members(self):
        """A fenced member starts only after earlier members finish."""
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        first, _s1, _d1 = make_copy(space, size=1 * MB)
        fenced, _s2, _d2 = make_copy(
            space,
            size=4 * KB,
            flags=DescriptorFlags.REQUEST_COMPLETION
            | DescriptorFlags.BLOCK_ON_FAULT
            | DescriptorFlags.FENCE,
        )
        batch = BatchDescriptor(descriptors=[first, fenced], pasid=space.pasid)
        device.submit(batch)
        platform.env.run()
        assert fenced.times.dispatched is None or True  # members aren't re-dispatched
        assert fenced.times.completed > first.times.completed

    def test_unfenced_members_overlap(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        first, _s1, _d1 = make_copy(space, size=1 * MB)
        second, _s2, _d2 = make_copy(space, size=4 * KB)
        batch = BatchDescriptor(descriptors=[first, second], pasid=space.pasid)
        device.submit(batch)
        platform.env.run()
        # The small member finishes long before the 1 MB one.
        assert second.times.completed < first.times.completed


class TestCacheControl:
    def test_cache_control_allocates_into_main_llc(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        descriptor, _s, _d = make_copy(
            space,
            size=256 * KB,
            flags=DescriptorFlags.REQUEST_COMPLETION
            | DescriptorFlags.BLOCK_ON_FAULT
            | DescriptorFlags.CACHE_CONTROL,
        )
        device.submit(descriptor)
        platform.env.run()
        llc = platform.memsys.llc
        assert llc.occupancy(device.agent) >= 256 * KB

    def test_default_writes_go_to_io_ways(self):
        platform = spr_platform()
        device = platform.driver.device("dsa0")
        space = AddressSpace()
        device.attach_space(space)
        descriptor, _s, _d = make_copy(space, size=256 * KB)
        device.submit(descriptor)
        platform.env.run()
        llc = platform.memsys.llc
        # All of the device's footprint sits in the DDIO partition.
        assert llc._io.get(device.agent, 0.0) > 0
        assert llc._main.get(device.agent, 0.0) == 0.0


class TestSvmSharing:
    def test_two_processes_share_one_swq(self):
        """F1: PASID-tagged descriptors from different processes."""
        platform = spr_platform(
            device_config=DeviceConfig.single(wq_size=32, mode=WqMode.SHARED)
        )
        device = platform.driver.device("dsa0")
        rng = make_rng(3)
        descriptors = []
        for _process in range(3):
            space = AddressSpace()
            platform.open_portal("dsa0", 0, space)
            descriptor, src, dst = make_copy(space, size=8 * KB, backed=True)
            src.fill_random(rng)
            descriptors.append((descriptor, src, dst))
            device.submit(descriptor)
        platform.env.run()
        for descriptor, src, dst in descriptors:
            assert descriptor.completion.status == StatusCode.SUCCESS
            assert np.array_equal(dst.data, src.data)

    def test_pasids_isolated(self):
        """A descriptor cannot reach another process's buffers: the
        translation fails in its own PASID's space (translation fault)."""
        platform = spr_platform(
            device_config=DeviceConfig.single(wq_size=32, mode=WqMode.SHARED)
        )
        device = platform.driver.device("dsa0")
        space_a = AddressSpace()
        space_b = AddressSpace()
        platform.open_portal("dsa0", 0, space_a)
        platform.open_portal("dsa0", 0, space_b)
        buffer_b = space_b.allocate(4 * KB)
        space_b.allocate(1)  # keep B's layout ahead of A's
        rogue = WorkDescriptor(
            Opcode.MEMMOVE,
            pasid=space_a.pasid,
            src=buffer_b.va,
            dst=buffer_b.va,
            size=4 * KB,
        )
        device.submit(rogue)
        platform.env.run()
        assert rogue.completion.status == StatusCode.PAGE_FAULT
        assert rogue.completion.fault_address == buffer_b.va


class TestInterruptCompletion:
    def test_interrupt_mode_microbench(self):
        from repro.runtime.wait import WaitMode
        from repro.workloads.microbench import MicrobenchConfig, run_dsa_microbench

        cfg = MicrobenchConfig(
            transfer_size=16 * KB,
            queue_depth=1,
            iterations=20,
            wait_mode=WaitMode.INTERRUPT,
        )
        result = run_dsa_microbench(cfg)
        assert result.operations == 20
        # Interrupt delivery adds over 2us per offload vs polling.
        spin = run_dsa_microbench(
            MicrobenchConfig(transfer_size=16 * KB, queue_depth=1, iterations=20)
        )
        assert result.elapsed_ns > spin.elapsed_ns
