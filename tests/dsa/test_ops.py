"""Unit tests for functional descriptor execution (every Table 1 op)."""

import numpy as np
import pytest

from repro.dsa.crc import crc32c
from repro.dsa.descriptor import WorkDescriptor
from repro.dsa.dif import DifContext, dif_insert
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import Opcode
from repro.dsa.ops import execute
from repro.mem import AddressSpace
from repro.sim import make_rng


@pytest.fixture
def space():
    return AddressSpace()


def backed(space, size, fill=None, seed=0):
    buf = space.allocate(size, backed=True)
    if fill is not None:
        buf.data[:] = fill
    elif seed is not None:
        buf.fill_random(make_rng(seed))
    return buf


class TestMemmove:
    def test_copies_bytes(self, space):
        src = backed(space, 256, seed=1)
        dst = backed(space, 256, fill=0)
        desc = WorkDescriptor(Opcode.MEMMOVE, src=src.va, dst=dst.va, size=256)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS
        assert record.bytes_completed == 256
        assert np.array_equal(dst.data, src.data)

    def test_partial_range_copy(self, space):
        src = backed(space, 256, seed=2)
        dst = backed(space, 256, fill=0)
        desc = WorkDescriptor(Opcode.MEMMOVE, src=src.va + 64, dst=dst.va, size=64)
        execute(desc, space)
        assert np.array_equal(dst.data[:64], src.data[64:128])
        assert not dst.data[64:].any()

    def test_overlapping_forward_move(self, space):
        buf = backed(space, 128, seed=3)
        snapshot = buf.data.copy()
        desc = WorkDescriptor(Opcode.MEMMOVE, src=buf.va, dst=buf.va + 8, size=64)
        execute(desc, space)
        assert np.array_equal(buf.data[8:72], snapshot[0:64])

    def test_zero_size_invalid(self, space):
        desc = WorkDescriptor(Opcode.MEMMOVE, size=0)
        assert execute(desc, space).status == StatusCode.INVALID_SIZE


class TestDualcast:
    def test_writes_both_destinations(self, space):
        src = backed(space, 128, seed=4)
        d1 = backed(space, 128, fill=0)
        d2 = backed(space, 128, fill=0)
        desc = WorkDescriptor(Opcode.DUALCAST, src=src.va, dst=d1.va, dst2=d2.va, size=128)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS
        assert np.array_equal(d1.data, src.data)
        assert np.array_equal(d2.data, src.data)


class TestFill:
    def test_fills_with_pattern(self, space):
        dst = backed(space, 32, fill=0)
        desc = WorkDescriptor(Opcode.FILL, dst=dst.va, size=32, pattern=0x1122334455667788)
        execute(desc, space)
        expected = np.tile(
            np.frombuffer((0x1122334455667788).to_bytes(8, "little"), dtype=np.uint8), 4
        )
        assert np.array_equal(dst.data, expected)

    def test_non_multiple_of_pattern_size(self, space):
        dst = backed(space, 12, fill=0)
        desc = WorkDescriptor(Opcode.FILL, dst=dst.va, size=12, pattern=0xAB)
        execute(desc, space)
        assert dst.data[0] == 0xAB and dst.data[8] == 0xAB
        assert dst.data[1] == 0 and dst.data[9] == 0


class TestCompare:
    def test_equal_buffers(self, space):
        a = backed(space, 64, seed=5)
        b = backed(space, 64)
        b.data[:] = a.data
        desc = WorkDescriptor(Opcode.COMPARE, src=a.va, src2=b.va, size=64)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS
        assert record.result == 0

    def test_mismatch_reports_first_offset(self, space):
        a = backed(space, 64, fill=0)
        b = backed(space, 64, fill=0)
        b.data[17] = 1
        desc = WorkDescriptor(Opcode.COMPARE, src=a.va, src2=b.va, size=64)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS_WITH_FALSE_PREDICATE
        assert record.result == 1
        assert record.bytes_completed == 17


class TestComparePattern:
    def test_matching_pattern(self, space):
        buf = backed(space, 32, fill=0)
        buf.data[::8] = 0xCD
        desc = WorkDescriptor(Opcode.COMPARE_PATTERN, src=buf.va, size=32, pattern=0xCD)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS

    def test_mismatching_pattern(self, space):
        buf = backed(space, 32, fill=0)
        desc = WorkDescriptor(Opcode.COMPARE_PATTERN, src=buf.va, size=32, pattern=0xFF)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS_WITH_FALSE_PREDICATE


class TestCrc:
    def test_crcgen_matches_reference(self, space):
        src = backed(space, 512, seed=6)
        desc = WorkDescriptor(Opcode.CRCGEN, src=src.va, size=512)
        record = execute(desc, space)
        assert record.result == crc32c(src.data)

    def test_copy_crc_copies_and_checksums(self, space):
        src = backed(space, 256, seed=7)
        dst = backed(space, 256, fill=0)
        desc = WorkDescriptor(Opcode.COPY_CRC, src=src.va, dst=dst.va, size=256)
        record = execute(desc, space)
        assert np.array_equal(dst.data, src.data)
        assert record.result == crc32c(src.data)


class TestDelta:
    def test_create_then_apply_roundtrip(self, space):
        original = backed(space, 256, seed=8)
        modified = backed(space, 256)
        modified.data[:] = original.data
        modified.data[8:16] = 0xEE
        delta_buf = backed(space, 1024, fill=0)
        create = WorkDescriptor(
            Opcode.CREATE_DELTA,
            src=original.va,
            src2=modified.va,
            dst=delta_buf.va,
            size=256,
        )
        record = execute(create, space)
        assert record.status == StatusCode.SUCCESS
        assert record.result == 10  # one differing chunk -> one entry

        target = backed(space, 256)
        target.data[:] = original.data
        apply = WorkDescriptor(
            Opcode.APPLY_DELTA,
            src=delta_buf.va,
            dst=target.va,
            size=256,
            delta_size=record.result,
        )
        record2 = execute(apply, space)
        assert record2.status == StatusCode.SUCCESS
        assert np.array_equal(target.data, modified.data)

    def test_delta_overflow_status(self, space):
        original = backed(space, 64, fill=0)
        modified = backed(space, 64, fill=1)
        delta_buf = backed(space, 1024, fill=0)
        desc = WorkDescriptor(
            Opcode.CREATE_DELTA,
            src=original.va,
            src2=modified.va,
            dst=delta_buf.va,
            size=64,
            delta_max_size=10,
        )
        assert execute(desc, space).status == StatusCode.DELTA_OVERFLOW


class TestDif:
    def test_insert_check_strip_pipeline(self, space):
        ctx = DifContext(block_size=512, app_tag=3)
        raw = backed(space, 1024, seed=9)
        protected = backed(space, 1040, fill=0)
        insert = WorkDescriptor(
            Opcode.DIF_INSERT, src=raw.va, dst=protected.va, size=1024, dif=ctx
        )
        record = execute(insert, space)
        assert record.status == StatusCode.SUCCESS
        assert record.bytes_completed == 1040

        check = WorkDescriptor(Opcode.DIF_CHECK, src=protected.va, size=1040, dif=ctx)
        record = execute(check, space)
        assert record.status == StatusCode.SUCCESS
        assert record.result == 2  # blocks verified

        stripped = backed(space, 1024, fill=0)
        strip = WorkDescriptor(
            Opcode.DIF_STRIP, src=protected.va, dst=stripped.va, size=1040, dif=ctx
        )
        record = execute(strip, space)
        assert record.status == StatusCode.SUCCESS
        assert np.array_equal(stripped.data, raw.data)

    def test_check_detects_corruption(self, space):
        ctx = DifContext(block_size=512)
        raw = make_rng(10).integers(0, 256, 512, dtype=np.uint8)
        protected_data = dif_insert(raw, ctx)
        protected = backed(space, len(protected_data))
        protected.data[:] = protected_data
        protected.data[5] ^= 0xFF
        desc = WorkDescriptor(Opcode.DIF_CHECK, src=protected.va, size=520, dif=ctx)
        record = execute(desc, space)
        assert record.status == StatusCode.DIF_ERROR

    def test_dif_update_retags(self, space):
        old = DifContext(block_size=512, app_tag=1)
        new = DifContext(block_size=512, app_tag=2)
        raw = make_rng(11).integers(0, 256, 512, dtype=np.uint8)
        protected = backed(space, 520)
        protected.data[:] = dif_insert(raw, old)
        out = backed(space, 520, fill=0)
        desc = WorkDescriptor(
            Opcode.DIF_UPDATE, src=protected.va, dst=out.va, size=520, dif=old, dif_new=new
        )
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS
        check = WorkDescriptor(Opcode.DIF_CHECK, src=out.va, size=520, dif=new)
        assert execute(check, space).status == StatusCode.SUCCESS

    def test_missing_dif_context_invalid(self, space):
        desc = WorkDescriptor(Opcode.DIF_CHECK, size=520)
        assert execute(desc, space).status == StatusCode.INVALID_FLAGS


class TestMisc:
    def test_noop_succeeds(self, space):
        assert execute(WorkDescriptor(Opcode.NOOP), space).status == StatusCode.SUCCESS

    def test_cache_flush_reports_range(self, space):
        buf = backed(space, 4096)
        desc = WorkDescriptor(Opcode.CACHE_FLUSH, src=buf.va, size=4096)
        record = execute(desc, space)
        assert record.status == StatusCode.SUCCESS
        assert record.bytes_completed == 4096

    def test_completion_attached_to_descriptor(self, space):
        src = backed(space, 64, seed=12)
        dst = backed(space, 64)
        desc = WorkDescriptor(Opcode.MEMMOVE, src=src.va, dst=dst.va, size=64)
        record = execute(desc, space)
        assert record is desc.completion
        assert desc.completion.done
