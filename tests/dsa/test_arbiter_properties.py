"""Property-based tests: arbiter fairness and batch limits."""

from hypothesis import example, given, settings, strategies as st

from repro.dsa.arbiter import GroupArbiter
from repro.dsa.config import WqConfig
from repro.dsa.descriptor import BatchDescriptor, WorkDescriptor
from repro.dsa.errors import StatusCode
from repro.dsa.opcodes import MAX_BATCH_SIZE, Opcode
from repro.dsa.wq import WorkQueue
from repro.sim import Environment


def drain(arbiter, count):
    for _ in range(count):
        event = arbiter.get()
        assert event.triggered, "arbiter starved with work pending"


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(1, 15), min_size=2, max_size=4))
@example(priorities=[1, 14, 15])
def test_dispatch_shares_track_priorities(priorities):
    """Smooth WRR: each WQ's share is proportional to its priority."""
    env = Environment()
    wqs = [
        WorkQueue(env, WqConfig(i, size=128 // len(priorities), priority=p))
        for i, p in enumerate(priorities)
    ]
    arbiter = GroupArbiter(env, wqs)
    per_wq = 128 // len(priorities)
    for wq in wqs:
        for _ in range(per_wq):
            wq.submit(WorkDescriptor(Opcode.NOOP))
    total_priority = sum(priorities)
    # Cap rounds so no WQ's proportional share exceeds its queue depth:
    # once a high-priority WQ runs dry, its surplus rounds redistribute
    # to the others and the proportional bounds below stop applying.
    rounds = min(
        per_wq * len(priorities),
        total_priority * 4,
        per_wq * total_priority // max(priorities),
    )
    drain(arbiter, rounds)
    for wq, priority in zip(wqs, priorities):
        served = per_wq - wq.occupancy
        expected = rounds * priority / total_priority
        # Within one full WRR cycle of the proportional share, unless
        # the WQ simply ran out of queued descriptors.
        assert served >= min(per_wq, expected - total_priority)
        assert served <= expected + total_priority


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 4), st.integers(10, 40))
def test_no_wq_starves(n_wqs, rounds):
    env = Environment()
    priorities = [15] + [1] * (n_wqs - 1)
    wqs = [
        WorkQueue(env, WqConfig(i, size=16, priority=p))
        for i, p in enumerate(priorities)
    ]
    arbiter = GroupArbiter(env, wqs)
    for wq in wqs:
        for _ in range(16):
            wq.submit(WorkDescriptor(Opcode.NOOP))
    rounds = min(rounds, 16 * n_wqs)
    drain(arbiter, rounds)
    if rounds >= sum(priorities):
        for wq in wqs:
            assert wq.occupancy < 16, f"WQ {wq.wq_id} starved"


class TestBatchLimits:
    def test_empty_batch_invalid(self):
        batch = BatchDescriptor(descriptors=[])
        assert batch.validate() == StatusCode.INVALID_SIZE

    def test_oversized_batch_invalid(self):
        members = [WorkDescriptor(Opcode.NOOP) for _ in range(MAX_BATCH_SIZE + 1)]
        assert BatchDescriptor(descriptors=members).validate() == StatusCode.INVALID_SIZE

    def test_nested_batch_invalid(self):
        inner = BatchDescriptor(descriptors=[WorkDescriptor(Opcode.NOOP)])
        outer = BatchDescriptor(descriptors=[inner])
        assert outer.validate() == StatusCode.INVALID_OPCODE

    def test_max_batch_accepted(self):
        members = [
            WorkDescriptor(Opcode.MEMMOVE, size=64) for _ in range(MAX_BATCH_SIZE)
        ]
        assert BatchDescriptor(descriptors=members).validate() is None

    def test_batch_aggregate_size(self):
        members = [WorkDescriptor(Opcode.MEMMOVE, size=100) for _ in range(5)]
        assert BatchDescriptor(descriptors=members).size == 500

    @given(st.integers(-(2**33), 2**33))
    @settings(max_examples=40, deadline=None)
    def test_transfer_size_bounds(self, size):
        from repro.dsa.opcodes import MAX_TRANSFER_SIZE

        descriptor = WorkDescriptor(Opcode.MEMMOVE, size=size)
        verdict = descriptor.validate()
        if 0 < size <= MAX_TRANSFER_SIZE:
            assert verdict is None
        else:
            assert verdict == StatusCode.INVALID_SIZE
