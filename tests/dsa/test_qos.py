"""QoS tests: WQ priority shapes both dispatch order and fabric share."""

import pytest

from repro.dsa.config import DeviceConfig, EngineConfig, GroupConfig, WqConfig
from repro.mem.link import FairShareLink
from repro.platform import spr_platform
from repro.sim import Environment
from repro.workloads.microbench import MicrobenchConfig

KB = 1024


class TestWeightedLink:
    def test_weights_split_bandwidth_proportionally(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=12.0)
        done = {}

        def proc(env, label, nbytes, weight):
            yield link.transfer(nbytes, weight=weight)
            done[label] = env.now

        # Weight 2 gets 8 B/ns, weight 1 gets 4 B/ns while both run.
        env.process(proc(env, "heavy", 800.0, 2.0))
        env.process(proc(env, "light", 800.0, 1.0))
        env.run()
        assert done["heavy"] == pytest.approx(100.0)
        # Light: 400 B at 4 B/ns, then 400 B at full 12 B/ns.
        assert done["light"] == pytest.approx(100.0 + 400.0 / 12.0)

    def test_equal_weights_match_plain_sharing(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=10.0)
        done = []

        def proc(env):
            yield link.transfer(500.0, weight=3.0)
            done.append(env.now)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert all(t == pytest.approx(100.0) for t in done)

    def test_invalid_weight_rejected(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=1.0)
        with pytest.raises(ValueError, match="weight"):
            link.transfer(10.0, weight=0.0)

    def test_cap_still_binds_weighted_flows(self):
        env = Environment()
        link = FairShareLink(env, bandwidth=100.0, per_flow_cap=5.0)
        link.transfer(500.0, weight=10.0)
        env.run()
        assert env.now == pytest.approx(100.0)


class TestDevicePriorityQos:
    def _two_priority_platform(self):
        config = DeviceConfig(
            wqs=(
                WqConfig(0, size=32, priority=8),
                WqConfig(1, size=32, priority=1),
            ),
            engines=(EngineConfig(0), EngineConfig(1)),
            groups=(GroupConfig(0, wq_ids=(0, 1), engine_ids=(0, 1)),),
        )
        return spr_platform(device_config=config)

    def test_high_priority_wq_gets_more_throughput(self):
        """Two saturating clients on one device: the priority-8 WQ's
        descriptors drain ~faster than the priority-1 WQ's."""
        platform = self._two_priority_platform()
        results = {}
        from repro.mem.address import AddressSpace
        from repro.workloads.microbench import _dsa_worker, MicrobenchResult
        from repro.sim.stats import Histogram

        cfg = MicrobenchConfig(transfer_size=64 * KB, queue_depth=16, iterations=60)
        for wq_id in (0, 1):
            space = AddressSpace()
            portal = platform.open_portal("dsa0", wq_id, space)
            result = MicrobenchResult(
                config=cfg, operations=0, payload_bytes=0, elapsed_ns=0.0,
                latency=Histogram(),
            )
            results[wq_id] = result
            platform.env.process(
                _dsa_worker(platform, portal, space, cfg, platform.core(wq_id), result)
            )
        platform.env.run()
        # Both moved the same bytes; the high-priority client finished
        # its work earlier, i.e. its mean latency is lower.
        high = results[0].latency.mean
        low = results[1].latency.mean
        assert high < low

    def test_dispatch_weight_tagged_from_wq_priority(self):
        platform = self._two_priority_platform()
        from repro.dsa.descriptor import WorkDescriptor
        from repro.dsa.opcodes import Opcode
        from repro.mem.address import AddressSpace

        space = AddressSpace()
        device = platform.driver.device("dsa0")
        device.attach_space(space)
        src = space.allocate(4 * KB)
        dst = space.allocate(4 * KB)
        descriptor = WorkDescriptor(
            Opcode.MEMMOVE, pasid=space.pasid, src=src.va, dst=dst.va, size=4 * KB
        )
        device.submit(descriptor, wq_id=0)
        platform.env.run()
        assert descriptor.dispatch_weight == 8.0
